"""Protocol shared by every spatial index in :mod:`repro.spatial`."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Sequence

from repro.core.rectangle import Rect

__all__ = ["SpatialIndex"]


class SpatialIndex(ABC):
    """Minimal interface required by the indexed SGB algorithms.

    Entries are opaque payloads associated with an axis-aligned rectangle
    (a degenerate rectangle for point data).  Two operations are needed:
    incremental insert and window (range) query.  Deletion is supported where
    the SGB algorithms need it (group rectangles shrink when members join, so
    the SGB-All index re-inserts updated rectangles).
    """

    @abstractmethod
    def insert(self, rect: Rect, item: Any) -> None:
        """Insert ``item`` under bounding rectangle ``rect``."""

    @abstractmethod
    def search(self, window: Rect) -> List[Any]:
        """Return the payloads of every entry whose rectangle intersects ``window``."""

    @abstractmethod
    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove the entry ``(rect, item)``; return True if it was found."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of entries currently stored."""

    # Convenience wrappers ------------------------------------------------

    def load(self, rects: "Sequence[Rect]", items: "Sequence[Any]") -> None:
        """Load a batch of ``(rect, item)`` entries into this index.

        The default inserts entries one at a time; indexes with a cheaper
        packing algorithm override it (the R-tree STR bulk load).
        """
        for rect, item in zip(rects, items):
            self.insert(rect, item)

    def search_many(self, windows: "Sequence[Rect]") -> "List[List[Any]]":
        """Answer a batch of window queries; one result list per window.

        The default runs the queries one by one; concrete indexes override
        this where a shared traversal is cheaper (grid cells, kd-tree).
        Result order within a window is unspecified.  An empty index (or an
        empty window batch) short-circuits to empty result lists — every
        override honours the same contract.
        """
        if len(self) == 0:
            return [[] for _ in windows]
        return [self.search(window) for window in windows]

    def insert_point(self, point: Sequence[float], item: Any) -> None:
        """Insert a point entry (degenerate rectangle)."""
        self.insert(Rect.from_point(point), item)

    def window_query(self, center: Sequence[float], radius: float) -> List[Any]:
        """Return payloads intersecting the box of half-side ``radius`` at ``center``."""
        return self.search(Rect.from_point(center, radius))
