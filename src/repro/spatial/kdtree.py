"""A point kd-tree (ablation alternative to the R-tree for SGB-Any).

SGB-Any only indexes *points* (not rectangles), so a kd-tree is a natural
alternative access method.  This implementation supports incremental insert
(no rebalancing; random-ish insertion order keeps it shallow enough for the
benchmark workloads) and rectangular window queries.  Deletion marks entries
as dead, which is sufficient for the ablation benchmarks (SGB-Any never
deletes points).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.spatial.base import SpatialIndex

__all__ = ["KDTree"]


class _KDNode:
    __slots__ = ("point", "item", "axis", "left", "right", "dead")

    def __init__(self, point: tuple[float, ...], item: Any, axis: int) -> None:
        self.point = point
        self.item = item
        self.axis = axis
        self.left: Optional[_KDNode] = None
        self.right: Optional[_KDNode] = None
        self.dead = False


class KDTree(SpatialIndex):
    """A simple incremental kd-tree over point entries."""

    def __init__(self, dims: int = 2) -> None:
        if dims < 1:
            raise InvalidParameterError("dims must be at least 1")
        self.dims = dims
        self._root: Optional[_KDNode] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # The SpatialIndex protocol passes rectangles; a kd-tree stores the
    # rectangle's centre (exact for the degenerate point rectangles the SGB
    # algorithms use).

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert an entry at the centre point of ``rect``."""
        self._insert_point(rect.center, item)

    def insert_point(self, point: Sequence[float], item: Any) -> None:
        """Insert a point entry directly."""
        self._insert_point(tuple(float(c) for c in point), item)

    def _insert_point(self, point: tuple[float, ...], item: Any) -> None:
        if len(point) != self.dims:
            raise InvalidParameterError(
                f"point has {len(point)} dims, tree expects {self.dims}"
            )
        if self._root is None:
            self._root = _KDNode(point, item, axis=0)
            self._count += 1
            return
        node = self._root
        while True:
            axis = node.axis
            next_axis = (axis + 1) % self.dims
            if point[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _KDNode(point, item, next_axis)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _KDNode(point, item, next_axis)
                    break
                node = node.right
        self._count += 1

    def search(self, window: Rect) -> List[Any]:
        """Return payloads of live points inside ``window``."""
        results: List[Any] = []
        if self._root is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            axis = node.axis
            if not node.dead and window.contains_point(node.point):
                results.append(node.item)
            if node.left is not None and window.low[axis] <= node.point[axis]:
                stack.append(node.left)
            if node.right is not None and window.high[axis] >= node.point[axis]:
                stack.append(node.right)
        return results

    def search_many(self, windows: "List[Rect]") -> List[List[Any]]:
        """Batched window queries with a single pruned traversal.

        The tree is walked once against the union of the windows; each live
        point found is then routed to the windows containing it.  This beats
        per-window traversals when a handful of windows cluster; large
        batches fall back to individually pruned searches, since routing
        every in-union point through every window would cost
        O(hits x windows).
        """
        if not windows:
            return []
        if self._root is None or self._count == 0:
            return [[] for _ in windows]
        if len(windows) > 16:
            return [self.search(window) for window in windows]
        results: List[List[Any]] = [[] for _ in windows]
        union = windows[0]
        for w in windows[1:]:
            union = union.union(w)
        stack = [self._root]
        while stack:
            node = stack.pop()
            axis = node.axis
            if not node.dead and union.contains_point(node.point):
                for wi, window in enumerate(windows):
                    if window.contains_point(node.point):
                        results[wi].append(node.item)
            if node.left is not None and union.low[axis] <= node.point[axis]:
                stack.append(node.left)
            if node.right is not None and union.high[axis] >= node.point[axis]:
                stack.append(node.right)
        return results

    def delete(self, rect: Rect, item: Any) -> bool:
        """Tombstone the entry matching ``item`` inside ``rect``; return True if found."""
        if self._root is None:
            return False
        stack = [self._root]
        while stack:
            node = stack.pop()
            axis = node.axis
            if not node.dead and node.item == item and rect.contains_point(node.point):
                node.dead = True
                self._count -= 1
                return True
            if node.left is not None and rect.low[axis] <= node.point[axis]:
                stack.append(node.left)
            if node.right is not None and rect.high[axis] >= node.point[axis]:
                stack.append(node.right)
        return False
