"""A uniform grid spatial index (ablation alternative to the R-tree).

The grid hashes each entry's bounding rectangle into the fixed-size cells it
overlaps.  Window queries visit only the cells the window touches.  A grid
works well when the cell size is tuned to the similarity threshold (cells of
side ``eps`` mean a window query touches at most 3^d cells) and degrades when
entry rectangles span many cells — exactly the trade-off the ablation
benchmark measures against the R-tree.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.spatial.base import SpatialIndex

__all__ = ["GridIndex"]

_CellKey = Tuple[int, ...]


class GridIndex(SpatialIndex):
    """A uniform grid over d-dimensional space with square cells of side ``cell_size``."""

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise InvalidParameterError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: Dict[_CellKey, List[Tuple[Rect, Any]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _cell_range(self, rect: Rect) -> Iterator[_CellKey]:
        lows = [math.floor(lo / self.cell_size) for lo in rect.low]
        highs = [math.floor(hi / self.cell_size) for hi in rect.high]

        def recurse(dim: int, prefix: Tuple[int, ...]) -> Iterator[_CellKey]:
            if dim == len(lows):
                yield prefix
                return
            for c in range(lows[dim], highs[dim] + 1):
                yield from recurse(dim + 1, prefix + (c,))

        yield from recurse(0, ())

    def insert(self, rect: Rect, item: Any) -> None:
        """Register ``item`` in every cell its rectangle overlaps."""
        for key in self._cell_range(rect):
            self._cells[key].append((rect, item))
        self._count += 1

    def search(self, window: Rect) -> List[Any]:
        """Return payloads of entries whose rectangle intersects ``window``."""
        seen: Set[int] = set()
        results: List[Any] = []
        for key in self._cell_range(window):
            for rect, item in self._cells.get(key, ()):
                if id(item) in seen:
                    continue
                if rect.intersects(window):
                    seen.add(id(item))
                    results.append(item)
        return results

    def search_many(self, windows: "List[Rect]") -> List[List[Any]]:
        """Batched window queries sharing one sweep over the touched cells.

        Every touched cell's bucket is scanned once no matter how many
        windows overlap it — the win over repeated :meth:`search` when the
        batch's probe windows cluster (the SGB batch path).  Result order
        within a window may differ from :meth:`search`.
        """
        if self._count == 0:
            return [[] for _ in windows]
        results: List[List[Any]] = [[] for _ in windows]
        seen: List[Set[int]] = [set() for _ in windows]
        cell_windows: Dict[_CellKey, List[int]] = {}
        for wi, window in enumerate(windows):
            for key in self._cell_range(window):
                cell_windows.setdefault(key, []).append(wi)
        for key, wis in cell_windows.items():
            bucket = self._cells.get(key)
            if not bucket:
                continue
            for rect, item in bucket:
                for wi in wis:
                    if id(item) in seen[wi]:
                        continue
                    if rect.intersects(windows[wi]):
                        seen[wi].add(id(item))
                        results[wi].append(item)
        return results

    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove ``item`` from every cell its rectangle was registered in."""
        removed = False
        for key in self._cell_range(rect):
            bucket = self._cells.get(key)
            if not bucket:
                continue
            for idx, (_, stored) in enumerate(bucket):
                if stored == item:
                    bucket.pop(idx)
                    removed = True
                    break
            if bucket is not None and not bucket:
                self._cells.pop(key, None)
        if removed:
            self._count -= 1
        return removed
