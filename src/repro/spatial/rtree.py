"""An in-memory Guttman R-tree with quadratic split.

This is the spatial access method the paper plugs into the PostgreSQL
executor: the SGB-All index variant stores one entry per *group* (the
epsilon-All bounding rectangle), the SGB-Any variant stores one entry per
*point* processed so far.  Both only need insert, delete (SGB-All re-inserts
a group when its rectangle shrinks) and window queries, so that is all this
implementation provides — plus a nearest-neighbour search used by the kd-tree
ablation comparisons and a couple of introspection helpers used in tests.

Reference: A. Guttman, "R-trees: A Dynamic Index Structure for Spatial
Searching", SIGMOD 1984.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError, SpatialIndexError
from repro.spatial.base import SpatialIndex

__all__ = ["RTree"]


def _overlaps(
    a_low: tuple, a_high: tuple, b_low: tuple, b_high: tuple
) -> bool:
    """Axis-aligned overlap test on raw coordinate tuples (hot path)."""
    for alo, ahi, blo, bhi in zip(a_low, a_high, b_low, b_high):
        if alo > bhi or blo > ahi:
            return False
    return True


def _area(low, high) -> float:
    """Hyper-volume of the box given by raw coordinate sequences."""
    result = 1.0
    for lo, hi in zip(low, high):
        result *= hi - lo
    return result


def _union_area(a_low, a_high, b_low, b_high) -> float:
    """Hyper-volume of the bounding box of two boxes (raw coordinates)."""
    result = 1.0
    for alo, ahi, blo, bhi in zip(a_low, a_high, b_low, b_high):
        result *= (ahi if ahi >= bhi else bhi) - (alo if alo <= blo else blo)
    return result


def _extend(low: list, high: list, other_low, other_high) -> None:
    """Grow the mutable box ``(low, high)`` to cover another box in place."""
    for i, (lo, hi) in enumerate(zip(other_low, other_high)):
        if lo < low[i]:
            low[i] = lo
        if hi > high[i]:
            high[i] = hi


def _even_slabs(seq: list, s: int) -> List[list]:
    """Split ``seq`` into ``s`` contiguous slabs of near-equal size."""
    n = len(seq)
    base, extra = divmod(n, s)
    out: List[list] = []
    start = 0
    for i in range(s):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(seq[start : start + size])
            start += size
    return out


def _str_partition(
    entries: "List[_Entry]", dims: int, dim: int, max_entries: int, min_entries: int
) -> "List[List[_Entry]]":
    """STR sweep: sort by centre along ``dim``, slab, recurse on the next axis.

    The final chunking along the last dimension rebalances a short tail chunk
    from its neighbour so every produced node meets the min-occupancy
    invariant (the slabs themselves are always >= min_entries because
    ``floor(n / slabs) >= max_entries / 2 >= min_entries``).
    """
    if len(entries) <= max_entries:
        return [entries]
    entries.sort(key=lambda e: e.rect.low[dim] + e.rect.high[dim])
    if dim == dims - 1:
        chunks = [
            entries[i : i + max_entries] for i in range(0, len(entries), max_entries)
        ]
        if len(chunks) > 1 and len(chunks[-1]) < min_entries:
            need = min_entries - len(chunks[-1])
            chunks[-1] = chunks[-2][-need:] + chunks[-1]
            chunks[-2] = chunks[-2][:-need]
        return chunks
    leaves_needed = math.ceil(len(entries) / max_entries)
    slabs = math.ceil(leaves_needed ** (1.0 / (dims - dim)))
    out: List[List[_Entry]] = []
    for slab in _even_slabs(entries, slabs):
        out.extend(_str_partition(slab, dims, dim + 1, max_entries, min_entries))
    return out


class _Entry:
    """A slot in an R-tree node: a rectangle plus either a child node or a payload."""

    __slots__ = ("rect", "child", "item")

    def __init__(self, rect: Rect, child: "Optional[_Node]" = None, item: Any = None) -> None:
        self.rect = rect
        self.child = child
        self.item = item


class _Node:
    """An R-tree node holding up to ``max_entries`` entries."""

    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List[_Entry] = []
        self.parent: Optional[_Node] = None

    def rect(self) -> Rect:
        """Return the minimum bounding rectangle of the node's entries."""
        first = self.entries[0].rect
        low = list(first.low)
        high = list(first.high)
        for entry in self.entries[1:]:
            for i, (lo, hi) in enumerate(zip(entry.rect.low, entry.rect.high)):
                if lo < low[i]:
                    low[i] = lo
                if hi > high[i]:
                    high[i] = hi
        return Rect(tuple(low), tuple(high))


class RTree(SpatialIndex):
    """Dynamic R-tree supporting insert, delete and window queries."""

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise InvalidParameterError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries // 3)
        if self.min_entries * 2 > self.max_entries:
            raise InvalidParameterError("min_entries must be at most max_entries / 2")
        self._root = _Node(leaf=True)
        self._count = 0

    # ------------------------------------------------------------------
    # public protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert ``item`` under ``rect`` (Guttman Insert / ChooseLeaf / SplitNode)."""
        entry = _Entry(rect, item=item)
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append(entry)
        self._count += 1
        if len(leaf.entries) > self.max_entries:
            self._split_and_adjust(leaf)
        else:
            self._adjust_upward(leaf)

    @classmethod
    def bulk_load(
        cls,
        rects: Iterable[Rect],
        items: Iterable[Any],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "RTree":
        """Build a packed R-tree from ``(rect, item)`` pairs in one pass (STR).

        Sort-Tile-Recursive packing (Leutenegger et al., ICDE 1997): entries
        are sorted by rectangle centre and tiled into full leaves one
        dimension at a time, then the levels above are packed the same way.
        Much faster than repeated :meth:`insert` and yields near-full nodes,
        which is what the batched SGB path wants when it (re)indexes a whole
        point batch at once.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        tree.load(rects, items)
        return tree

    def load(self, rects: Iterable[Rect], items: Iterable[Any]) -> None:
        """STR-pack ``(rect, item)`` pairs into this (empty) tree."""
        if self._count:
            raise SpatialIndexError("load() requires an empty R-tree")
        entries = [_Entry(rect, item=item) for rect, item in zip(rects, items)]
        if not entries:
            return
        dims = entries[0].rect.dims
        leaves = self._str_tile(entries, dims, leaf=True)
        level: List[_Node] = leaves
        while len(level) > 1:
            parents = self._str_tile(
                [_Entry(node.rect(), child=node) for node in level], dims, leaf=False
            )
            level = parents
        self._root = level[0]
        self._root.parent = None
        self._count = len(entries)

    def _str_tile(self, entries: List[_Entry], dims: int, leaf: bool) -> List[_Node]:
        """Pack entries into a list of sibling nodes with the STR sweep."""
        groups = _str_partition(entries, dims, 0, self.max_entries, self.min_entries)
        nodes: List[_Node] = []
        for group in groups:
            node = _Node(leaf=leaf)
            node.entries = group
            for e in group:
                if e.child is not None:
                    e.child.parent = node
            nodes.append(node)
        return nodes

    def search(self, window: Rect) -> List[Any]:
        """Return payloads of all leaf entries whose rectangle intersects ``window``."""
        results: List[Any] = []
        if self._count == 0:
            return results
        w_low, w_high = window.low, window.high
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    rect = entry.rect
                    if _overlaps(rect.low, rect.high, w_low, w_high):
                        results.append(entry.item)
            else:
                for entry in node.entries:
                    rect = entry.rect
                    if _overlaps(rect.low, rect.high, w_low, w_high):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def search_entries(self, window: Rect) -> List[Tuple[Rect, Any]]:
        """Like :meth:`search` but also return the stored rectangles."""
        results: List[Tuple[Rect, Any]] = []
        if self._count == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.rect.intersects(window):
                    if node.leaf:
                        results.append((entry.rect, entry.item))
                    else:
                        stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def delete(self, rect: Rect, item: Any) -> bool:
        """Delete the entry whose payload is ``item`` and whose rect intersects ``rect``.

        Returns True when an entry was removed.  Uses the simple
        condense-by-reinsertion strategy from Guttman's paper.
        """
        leaf = self._find_leaf(self._root, rect, item)
        if leaf is None:
            return False
        removed = False
        kept: List[_Entry] = []
        for e in leaf.entries:
            if not removed and e.item == item:
                removed = True
                continue
            kept.append(e)
        leaf.entries = kept
        self._count -= 1
        self._condense(leaf)
        # Shrink the root if it became a lone internal node.
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
            self._root.parent = None
        if self._count == 0:
            self._root = _Node(leaf=True)
        return True

    # ------------------------------------------------------------------
    # extras used by ablations and tests
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Rect, Any]]:
        """Yield every (rect, payload) pair stored in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.leaf:
                    yield entry.rect, entry.item
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def nearest(self, point: Sequence[float]) -> Any:
        """Return the payload of the entry with the smallest min-distance to ``point``.

        Simple branch-and-bound best-first search; only used by ablation
        benchmarks, not on the SGB hot path.
        """
        if self._count == 0:
            raise SpatialIndexError("nearest() on an empty R-tree")
        best_item: Any = None
        best_dist = float("inf")
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                d = entry.rect.min_distance_to_point(point)
                if d >= best_dist:
                    continue
                if node.leaf:
                    best_dist = d
                    best_item = entry.item
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return best_item

    def height(self) -> int:
        """Return the height of the tree (1 for a lone leaf root)."""
        h = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate structural invariants; raises :class:`SpatialIndexError` on failure.

        Used by property-based tests: every child rectangle must be covered by
        its parent entry rectangle, node occupancy must respect the
        min/max-entries bounds (except the root), and the leaf count must
        match ``len(self)``.
        """
        leaf_entries = 0
        stack: List[Tuple[_Node, Optional[Rect]]] = [(self._root, None)]
        while stack:
            node, cover = stack.pop()
            if node is not self._root:
                if not (self.min_entries <= len(node.entries) <= self.max_entries):
                    raise SpatialIndexError(
                        f"node occupancy {len(node.entries)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
            if cover is not None and node.entries:
                if not cover.contains_rect(node.rect()):
                    raise SpatialIndexError("child MBR not covered by parent entry")
            for entry in node.entries:
                if node.leaf:
                    leaf_entries += 1
                else:
                    stack.append((entry.child, entry.rect))  # type: ignore[arg-type]
        if leaf_entries != self._count:
            raise SpatialIndexError(
                f"leaf entry count {leaf_entries} != tracked count {self._count}"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        new_low, new_high = rect.low, rect.high
        while not node.leaf:
            best_entry = None
            best_enlargement = float("inf")
            best_area = float("inf")
            for entry in node.entries:
                low, high = entry.rect.low, entry.rect.high
                # Compute area and union-area arithmetically to avoid
                # allocating intermediate Rect objects on the hot path.
                area = 1.0
                union_area = 1.0
                for lo, hi, nlo, nhi in zip(low, high, new_low, new_high):
                    area *= hi - lo
                    union_area *= (hi if hi >= nhi else nhi) - (lo if lo <= nlo else nlo)
                enlargement = union_area - area
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best_entry = entry
                    best_enlargement = enlargement
                    best_area = area
            assert best_entry is not None
            if best_enlargement > 0.0:
                best_entry.rect = best_entry.rect.union(rect)
            node = best_entry.child  # type: ignore[assignment]
        return node

    def _adjust_upward(self, node: _Node) -> None:
        """Propagate rectangle growth from ``node`` to the root."""
        child = node
        parent = node.parent
        while parent is not None:
            for entry in parent.entries:
                if entry.child is child:
                    entry.rect = child.rect()
                    break
            child = parent
            parent = parent.parent

    def _split_and_adjust(self, node: _Node) -> None:
        """Split an overflowing node and propagate splits/MBR updates upwards."""
        while node is not None and len(node.entries) > self.max_entries:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                # Grow a new root.
                new_root = _Node(leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append(_Entry(child.rect(), child=child))
                self._root = new_root
                return
            # Replace the parent's entry rect for `node` and add the sibling.
            for entry in parent.entries:
                if entry.child is node:
                    entry.rect = node.rect()
                    break
            sibling.parent = parent
            parent.entries.append(_Entry(sibling.rect(), child=sibling))
            node = parent
        if node is not None:
            self._adjust_upward(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split: distribute entries into ``node`` and a new sibling.

        All the intermediate geometry (areas, union areas, running group
        rectangles) is computed on raw coordinate lists so the split does not
        allocate throw-away :class:`Rect` objects — this is the hottest part
        of an insert-heavy workload.
        """
        entries = node.entries
        lows = [e.rect.low for e in entries]
        highs = [e.rect.high for e in entries]
        areas = [_area(lo, hi) for lo, hi in zip(lows, highs)]

        # PickSeeds: the pair wasting the most area together.
        best_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = _union_area(lows[i], highs[i], lows[j], highs[j]) - areas[i] - areas[j]
                if waste > worst_waste:
                    worst_waste = waste
                    best_pair = (i, j)

        i, j = best_pair
        seed_a, seed_b = entries[i], entries[j]
        remaining = [k for k in range(len(entries)) if k not in (i, j)]

        group_a: List[_Entry] = [seed_a]
        group_b: List[_Entry] = [seed_b]
        low_a, high_a = list(lows[i]), list(highs[i])
        low_b, high_b = list(lows[j]), list(highs[j])

        while remaining:
            # Force-assign if one group must take everything left to reach min fill.
            if len(group_a) + len(remaining) == self.min_entries:
                for k in remaining:
                    group_a.append(entries[k])
                    _extend(low_a, high_a, lows[k], highs[k])
                break
            if len(group_b) + len(remaining) == self.min_entries:
                for k in remaining:
                    group_b.append(entries[k])
                    _extend(low_b, high_b, lows[k], highs[k])
                break
            # PickNext: entry with the greatest preference for one group.
            area_a = _area(low_a, high_a)
            area_b = _area(low_b, high_b)
            best_pos = 0
            best_diff = -1.0
            best_d_a = best_d_b = 0.0
            for pos, k in enumerate(remaining):
                d_a = _union_area(low_a, high_a, lows[k], highs[k]) - area_a
                d_b = _union_area(low_b, high_b, lows[k], highs[k]) - area_b
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_pos = pos
                    best_d_a, best_d_b = d_a, d_b
            k = remaining.pop(best_pos)
            if best_d_a < best_d_b or (best_d_a == best_d_b and area_a <= area_b):
                group_a.append(entries[k])
                _extend(low_a, high_a, lows[k], highs[k])
            else:
                group_b.append(entries[k])
                _extend(low_b, high_b, lows[k], highs[k])

        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        for e in group_b:
            if e.child is not None:
                e.child.parent = sibling
        return sibling

    def _find_leaf(self, node: _Node, rect: Rect, item: Any) -> Optional[_Node]:
        if node.leaf:
            for entry in node.entries:
                if entry.item == item:
                    return node
            return None
        for entry in node.entries:
            if entry.rect.intersects(rect):
                found = self._find_leaf(entry.child, rect, item)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        """After a deletion, drop underfull nodes and re-insert their entries."""
        orphans: List[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.child is not node]
                orphans.extend(self._collect_leaf_entries(node))
            else:
                for entry in parent.entries:
                    if entry.child is node:
                        entry.rect = node.rect()
                        break
            node = parent
        for entry in orphans:
            self._count -= 1  # insert() will re-increment
            self.insert(entry.rect, entry.item)

    def _collect_leaf_entries(self, node: _Node) -> List[_Entry]:
        if node.leaf:
            return list(node.entries)
        collected: List[_Entry] = []
        for entry in node.entries:
            collected.extend(self._collect_leaf_entries(entry.child))  # type: ignore[arg-type]
        return collected
