"""Spatial access methods used by the on-the-fly indexed SGB algorithms.

* :class:`RTree` — a Guttman R-tree with quadratic split; this is the index
  the paper uses for both ``Groups_IX`` (SGB-All) and ``Points_IX``
  (SGB-Any).
* :class:`GridIndex` — a uniform grid, included as an ablation alternative.
* :class:`KDTree` — a point kd-tree, included as an ablation alternative.

All three expose the same minimal protocol (:class:`SpatialIndex`): insert an
entry under a bounding rectangle (or point) and answer window queries.
"""

from repro.spatial.base import SpatialIndex
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

__all__ = ["SpatialIndex", "RTree", "GridIndex", "KDTree"]
