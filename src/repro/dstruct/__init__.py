"""Supporting data structures: Union-Find forest and per-group tuple stores."""

from repro.dstruct.tuple_store import TupleStore
from repro.dstruct.union_find import UnionFind

__all__ = ["UnionFind", "TupleStore"]
