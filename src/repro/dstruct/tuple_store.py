"""Per-group tuple storage used by the SGB executor nodes.

The PostgreSQL implementation in the paper extends ``AggHashEntry`` with a
*TupleStore* that buffers the tuples assigned to a group, because the
ELIMINATE and FORM-NEW-GROUP semantics can only finalise the grouping after
the full input has been consumed.  This class is the in-memory equivalent: an
append-only buffer with stable positional handles so points can later be
moved to another group or dropped without copying payloads around.
"""

from __future__ import annotations

from typing import Any, Iterator, List

__all__ = ["TupleStore"]


class TupleStore:
    """Append-only store of tuples with tombstone-based removal."""

    __slots__ = ("_rows", "_deleted", "_live")

    def __init__(self) -> None:
        self._rows: List[Any] = []
        self._deleted: List[bool] = []
        self._live = 0

    def append(self, row: Any) -> int:
        """Store ``row`` and return its stable handle (position)."""
        self._rows.append(row)
        self._deleted.append(False)
        self._live += 1
        return len(self._rows) - 1

    def extend(self, rows: "TupleStore") -> None:
        """Append every live row of another store (used when groups merge)."""
        for row in rows:
            self.append(row)

    def delete(self, handle: int) -> None:
        """Tombstone the row at ``handle``; deleting twice is a no-op."""
        if not self._deleted[handle]:
            self._deleted[handle] = True
            self._live -= 1

    def get(self, handle: int) -> Any:
        """Return the row stored at ``handle`` (even if tombstoned)."""
        return self._rows[handle]

    def __len__(self) -> int:
        """Number of live (non-deleted) rows."""
        return self._live

    def __iter__(self) -> Iterator[Any]:
        """Iterate over live rows in insertion order."""
        for row, dead in zip(self._rows, self._deleted):
            if not dead:
                yield row

    def to_list(self) -> List[Any]:
        """Return the live rows as a list."""
        return list(self)

    def clear(self) -> None:
        """Drop every row."""
        self._rows.clear()
        self._deleted.clear()
        self._live = 0
