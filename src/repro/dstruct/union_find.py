"""Disjoint-set forest (Union-Find) with union by rank and path compression.

SGB-Any (paper Section 7, Procedure 8/9) keeps track of existing, newly
created, and merged groups with a Union-Find forest: every processed point is
an element, and a group is the set of points sharing a root.  The amortised
cost per operation is the inverse Ackermann function, which the paper's
complexity analysis (Appendix .2) relies on for the O(n log n) bound.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Union

from repro.exceptions import UnionFindError

__all__ = ["UnionFind"]


class UnionFind:
    """A dynamic disjoint-set forest over arbitrary hashable elements."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._size: Dict[Hashable, int] = {}
        self._component_count = 0
        for element in elements:
            self.add(element)

    # -- basic operations ------------------------------------------------

    def add(self, element: Hashable) -> bool:
        """Add ``element`` as a singleton set; return False if already present."""
        if element in self._parent:
            return False
        self._parent[element] = element
        self._rank[element] = 0
        self._size[element] = 1
        self._component_count += 1
        return True

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Total number of elements tracked."""
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set.

        Applies iterative path compression (pointing every node on the walk
        directly at the root).
        """
        if element not in self._parent:
            raise UnionFindError(f"element {element!r} was never added")
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Second pass: compress the path.
        node = element
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._component_count -= 1
        return ra

    def add_many(self, elements: Iterable[Hashable]) -> int:
        """Add a batch of elements as singleton sets; return how many were new."""
        parent = self._parent
        rank = self._rank
        size = self._size
        added = 0
        for element in elements:
            if element in parent:
                continue
            parent[element] = element
            rank[element] = 0
            size[element] = 1
            added += 1
        self._component_count += added
        return added

    def union_pairs(self, pairs: Iterable[tuple[Hashable, Hashable]]) -> int:
        """Merge a batch of ``(a, b)`` edges; return the number of real merges.

        This is the bulk MergeGroupsInsert step of the batched SGB-Any path:
        the epsilon-neighbourhood edges of a whole point batch are applied in
        one call instead of one :meth:`union` per edge.
        """
        before = self._component_count
        union = self.union
        for a, b in pairs:
            union(a, b)
        return before - self._component_count

    def union_many(self, elements: Iterable[Hashable]) -> Hashable | None:
        """Merge every element in ``elements`` into one set; return its root."""
        root: Hashable | None = None
        for element in elements:
            if root is None:
                root = self.find(element)
            else:
                root = self.union(root, element)
        return root

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True if ``a`` and ``b`` currently belong to the same set."""
        return self.find(a) == self.find(b)

    # -- component inspection ---------------------------------------------

    @property
    def component_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._component_count

    def component_size(self, element: Hashable) -> int:
        """Return the size of the set containing ``element``."""
        return self._size[self.find(element)]

    def components(self) -> Dict[Hashable, List[Hashable]]:
        """Return a mapping from set representative to the members of that set."""
        groups: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), []).append(element)
        return groups

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    # -- forest exchange (sharded execution) --------------------------------

    def export_forest(self) -> Dict[Hashable, Hashable]:
        """Return a flat ``{element -> root}`` snapshot of the forest.

        The mapping is fully path-compressed (every element points directly at
        its set representative), so it round-trips through pickling compactly
        and can be replayed into another forest with :meth:`merge_from`.  This
        is the wire format the sharded SGB engine uses to ship per-shard
        grouping state back from worker processes.
        """
        return {element: self.find(element) for element in self._parent}

    def split_forest(
        self, elements: Iterable[Hashable]
    ) -> "tuple[Dict[Hashable, Hashable], Dict[Hashable, Hashable]]":
        """Split the exported forest around the components touching ``elements``.

        Returns ``(touched, untouched)``: two ``{element -> root}`` mappings
        covering every tracked element, where ``touched`` holds exactly the
        members of components containing at least one of ``elements``.  This
        is the eviction primitive of the streaming window subsystem: when an
        epoch of points expires, only the *touched* components need re-linking
        from the retained per-epoch forests and cross-epoch edges, while the
        *untouched* mapping can be replayed verbatim into the rebuilt forest.
        """
        touched_roots = {self.find(element) for element in elements}
        touched: Dict[Hashable, Hashable] = {}
        untouched: Dict[Hashable, Hashable] = {}
        for element in self._parent:
            root = self.find(element)
            if root in touched_roots:
                touched[element] = root
            else:
                untouched[element] = root
        return touched, untouched

    def relabel(
        self, mapping: "Union[Mapping[Hashable, Hashable], Callable[[Hashable], Hashable]]"
    ) -> "UnionFind":
        """Return a new forest with every element renamed through ``mapping``.

        ``mapping`` is either a dict-like (``mapping[element]``) or a callable
        (``mapping(element)``); it must be injective over the tracked elements.
        The sharded engine uses this to lift shard-local point positions
        (``0..k``) into global input row indices before merging forests.
        """
        translate = mapping if callable(mapping) else mapping.__getitem__
        forest = self.export_forest()
        renamed = {element: translate(element) for element in forest}
        out = UnionFind()
        for new_element in renamed.values():
            if not out.add(new_element):
                raise UnionFindError(
                    f"relabel mapping is not injective: {new_element!r} appears twice"
                )
        for element, root in forest.items():
            if element != root:
                out.union(renamed[element], renamed[root])
        return out

    def merge_from(
        self,
        other: "UnionFind | Mapping[Hashable, Hashable]",
        translate: "Union[Mapping[Hashable, Hashable], Callable[[Hashable], Hashable], None]" = None,
    ) -> int:
        """Absorb another forest (or an exported ``{element -> root}`` mapping).

        Elements missing from this forest are added; every element is then
        unioned with its root, so all of ``other``'s groupings hold here too
        (existing groupings are preserved — merging is monotone).  ``translate``
        optionally renames ``other``'s elements on the way in, which is how
        shard-local forests land in the global index space without building an
        intermediate relabelled copy.  Returns the number of set merges that
        actually happened.
        """
        forest = other.export_forest() if isinstance(other, UnionFind) else other
        if translate is not None and not callable(translate):
            translate = translate.__getitem__
        before = self._component_count
        added = 0
        for element, root in forest.items():
            if translate is not None:
                element = translate(element)
                root = translate(root)
            added += self.add(element)
            if element != root:
                added += self.add(root)
                self.union(element, root)
        # Fresh elements arrive as singletons, so subtract them out: what is
        # left is the number of pre-existing set boundaries that collapsed.
        return before + added - self._component_count
