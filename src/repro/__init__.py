"""repro — Similarity Group-By operators for multi-dimensional relational data.

A from-scratch reproduction of Tang et al., "Similarity Group-by Operators for
Multi-dimensional Relational Data" (ICDE 2016).  The package provides:

* ``repro.core``       — the SGB-All and SGB-Any operators and their All-Pairs,
                          Bounds-Checking, and on-the-fly Index algorithms;
* ``repro.engine``     — the sharded parallel execution engine (grid
                          partitioning, worker pools, forest merging);
* ``repro.stream``     — windowed incremental SGB over continuous point
                          streams (tumbling/sliding windows, delta events);
* ``repro.join``       — similarity joins between two point relations
                          (eps-join, kNN-join, sharded execution);
* ``repro.minidb``     — an in-memory SQL engine with the extended
                          ``GROUP BY ... DISTANCE-TO-ALL/ANY`` syntax;
* ``repro.spatial``    — R-tree / grid / kd-tree spatial indexes;
* ``repro.clustering`` — K-means, DBSCAN, BIRCH baselines;
* ``repro.workloads``  — TPC-H and social check-in data generators;
* ``repro.bench``      — the experiment harness regenerating the paper's
                          tables and figures.
"""

from repro.core import (
    GroupingResult,
    Metric,
    OverlapAction,
    SGBAllStrategy,
    SGBAnyStrategy,
    cluster_by,
    sgb_all,
    sgb_any,
    sgb_any_stream,
    sim_join,
)

__version__ = "1.0.0"

__all__ = [
    "Metric",
    "OverlapAction",
    "SGBAllStrategy",
    "SGBAnyStrategy",
    "GroupingResult",
    "sgb_all",
    "sgb_any",
    "sgb_any_stream",
    "sim_join",
    "cluster_by",
    "__version__",
]
