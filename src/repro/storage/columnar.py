"""On-disk columnar table format: one binary file per column.

Every column file is self-describing::

    b"RPCOL1\\n"  magic
    <u32 header length> <JSON header>   name, dtype, count, encoding, crc32
    <payload>

Payloads are fixed-width binary with a leading null bitmap (one bit per row,
LSB-first), so the format needs neither NumPy nor any serialisation library:

* ``FLOAT`` — IEEE-754 little-endian doubles (``struct '<d'``); round-trips
  are bit-identical, including signed zeros and subnormals;
* ``INT``   — little-endian int64 when every value fits, else a framed
  decimal-text escape (Python ints are unbounded);
* ``BOOL``  — a second bitmap;
* ``DATE``  — proleptic-Gregorian ordinals as int64;
* ``TEXT``  — length-framed UTF-8 (``surrogatepass`` so any str survives).

Nulls are stored positionally in the bitmap and *not* in the payload, keeping
files compact for sparse columns.  A CRC-32 of the payload is kept in the
header; any mismatch (truncation, bit rot) raises
:class:`~repro.exceptions.StorageError` — durable tables fail loudly, unlike
cache entries, which silently fall back to a recompute.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import struct
import zlib
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.minidb.types import DataType

__all__ = ["write_column", "read_column", "read_column_header", "column_filename"]

MAGIC = b"RPCOL1\n"

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def column_filename(position: int, name: str) -> str:
    """Stable on-disk filename for column ``name`` at ``position``."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    return f"col_{position:03d}_{safe}.col"


# ---------------------------------------------------------------------------
# bitmaps
# ---------------------------------------------------------------------------


def _pack_bitmap(flags: Sequence[bool]) -> bytes:
    out = bytearray((len(flags) + 7) // 8)
    for i, flag in enumerate(flags):
        if flag:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def _unpack_bitmap(data: bytes, count: int) -> List[bool]:
    return [bool(data[i >> 3] & (1 << (i & 7))) for i in range(count)]


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _encode_payload(dtype: DataType, values: Sequence[object]) -> Tuple[str, bytes]:
    """Return ``(encoding, payload)`` for ``values`` of ``dtype``."""
    nulls = _pack_bitmap([v is None for v in values])
    present = [v for v in values if v is not None]
    if dtype is DataType.FLOAT:
        body = b"".join(_F64.pack(v) for v in present)
        return "f64", nulls + body
    if dtype is DataType.INT:
        if all(_I64_MIN <= v <= _I64_MAX for v in present):
            body = b"".join(_I64.pack(v) for v in present)
            return "i64", nulls + body
        frames = [str(v).encode("ascii") for v in present]
        body = b"".join(_U32.pack(len(f)) + f for f in frames)
        return "dec", nulls + body
    if dtype is DataType.BOOL:
        return "bit", nulls + _pack_bitmap([bool(v) for v in present])
    if dtype is DataType.DATE:
        body = b"".join(_I64.pack(v.toordinal()) for v in present)
        return "ord", nulls + body
    if dtype is DataType.TEXT:
        frames = [v.encode("utf-8", "surrogatepass") for v in present]
        body = b"".join(_U32.pack(len(f)) + f for f in frames)
        return "utf8", nulls + body
    raise StorageError(f"unsupported column type {dtype!r}")


def _decode_payload(
    dtype: DataType, encoding: str, payload: bytes, count: int
) -> List[object]:
    """Inverse of :func:`_encode_payload`; raises ``StorageError`` on damage."""
    bitmap_len = (count + 7) // 8
    if len(payload) < bitmap_len:
        raise StorageError("column payload shorter than its null bitmap")
    nulls = _unpack_bitmap(payload[:bitmap_len], count)
    body = payload[bitmap_len:]
    n_present = count - sum(nulls)
    present: List[object]
    if encoding == "f64":
        _expect_len(body, 8 * n_present)
        present = [_F64.unpack_from(body, 8 * i)[0] for i in range(n_present)]
    elif encoding == "i64":
        _expect_len(body, 8 * n_present)
        present = [_I64.unpack_from(body, 8 * i)[0] for i in range(n_present)]
    elif encoding == "ord":
        _expect_len(body, 8 * n_present)
        present = [
            dt.date.fromordinal(_I64.unpack_from(body, 8 * i)[0])
            for i in range(n_present)
        ]
    elif encoding == "bit":
        _expect_len(body, (n_present + 7) // 8)
        present = list(_unpack_bitmap(body, n_present))
    elif encoding in ("utf8", "dec"):
        present = []
        offset = 0
        for _ in range(n_present):
            if offset + 4 > len(body):
                raise StorageError("truncated framed column payload")
            (length,) = _U32.unpack_from(body, offset)
            offset += 4
            if offset + length > len(body):
                raise StorageError("truncated framed column payload")
            frame = body[offset : offset + length]
            offset += length
            if encoding == "utf8":
                present.append(frame.decode("utf-8", "surrogatepass"))
            else:
                present.append(int(frame.decode("ascii")))
        if offset != len(body):
            raise StorageError("trailing bytes after framed column payload")
    else:
        raise StorageError(f"unknown column encoding {encoding!r}")
    out: List[object] = []
    it = iter(present)
    for is_null in nulls:
        out.append(None if is_null else next(it))
    return out


def _expect_len(body: bytes, expected: int) -> None:
    if len(body) != expected:
        raise StorageError(
            f"column payload length {len(body)} != expected {expected}"
        )


# ---------------------------------------------------------------------------
# files
# ---------------------------------------------------------------------------


def write_column(
    path: str, name: str, dtype: DataType, values: Sequence[object]
) -> None:
    """Write one column to ``path`` atomically (temp file + rename)."""
    encoding, payload = _encode_payload(dtype, values)
    header = json.dumps(
        {
            "name": name,
            "dtype": dtype.value,
            "count": len(values),
            "encoding": encoding,
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        },
        sort_keys=True,
    ).encode("utf-8")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_U32.pack(len(header)))
        fh.write(header)
        fh.write(payload)
    os.replace(tmp, path)


def read_column(path: str) -> Tuple[str, DataType, List[object]]:
    """Read one column file; returns ``(name, dtype, values)``.

    Raises :class:`~repro.exceptions.StorageError` on any structural damage:
    bad magic, unparsable header, payload checksum mismatch, or truncation.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise StorageError(f"cannot read column file {path!r}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise StorageError(f"column file {path!r} has a bad magic header")
    offset = len(MAGIC)
    if len(blob) < offset + 4:
        raise StorageError(f"column file {path!r} is truncated")
    (header_len,) = _U32.unpack_from(blob, offset)
    offset += 4
    if len(blob) < offset + header_len:
        raise StorageError(f"column file {path!r} is truncated")
    try:
        header = json.loads(blob[offset : offset + header_len].decode("utf-8"))
        name = header["name"]
        dtype = DataType.parse(header["dtype"])
        count = int(header["count"])
        encoding = str(header["encoding"])
        crc = int(header["crc32"])
    except Exception as exc:  # noqa: BLE001 - any malformed header is damage
        raise StorageError(f"column file {path!r} has a bad header: {exc}") from exc
    payload = blob[offset + header_len :]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise StorageError(f"column file {path!r} failed its payload checksum")
    return name, dtype, _decode_payload(dtype, encoding, payload, count)


def read_column_header(path: str) -> Optional[dict]:
    """Best-effort header peek (``None`` on damage); used by tooling/tests."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                return None
            (header_len,) = _U32.unpack(fh.read(4))
            return json.loads(fh.read(header_len).decode("utf-8"))
    except Exception:  # noqa: BLE001 - peek must never raise
        return None
