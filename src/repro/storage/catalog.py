"""The durable catalog: sqlite metadata over per-column data files.

A :class:`TableStore` owns one storage directory::

    <root>/
      catalog.sqlite          table schemas, versions, planner statistics
      tables/<name>/col_*.col one columnar file per column (repro.storage.columnar)

sqlite holds everything *about* the tables — the schema mapping from
:class:`repro.minidb.types.DataType` to column files, the mutation
``version`` counter (the durable invalidation token for statistics and the
result cache), and the serialized :class:`repro.engine.stats.PointStats`
summaries the cost planner collected — while the row data itself lives in
the columnar files, which round-trip bit-identically.

The store is deliberately engine-agnostic: it reads and writes
``(name, schema pairs, rows, version, stats)`` bundles and knows nothing
about :class:`~repro.minidb.database.Database`, which layers ``open`` /
``save`` / ``close`` semantics on top.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.minidb.types import DataType
from repro.storage.columnar import column_filename, read_column, write_column

__all__ = ["TableStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tables (
    name     TEXT PRIMARY KEY,
    version  INTEGER NOT NULL,
    rowcount INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS columns (
    table_name TEXT NOT NULL,
    position   INTEGER NOT NULL,
    name       TEXT NOT NULL,
    dtype      TEXT NOT NULL,
    PRIMARY KEY (table_name, position)
);
CREATE TABLE IF NOT EXISTS stats (
    table_name TEXT NOT NULL,
    columns    TEXT NOT NULL,
    version    INTEGER NOT NULL,
    payload    TEXT NOT NULL,
    PRIMARY KEY (table_name, columns)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_FORMAT_VERSION = "1"


class TableStore:
    """Durable storage for a set of named, versioned columnar tables."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(self._tables_dir, exist_ok=True)
        try:
            self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
                os.path.join(self.root, "catalog.sqlite")
            )
            self._conn.executescript(_SCHEMA)
            self._init_meta()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open catalog at {self.root!r}: {exc}") from exc

    # -- lifecycle ---------------------------------------------------------

    @property
    def _tables_dir(self) -> str:
        return os.path.join(self.root, "tables")

    def _init_meta(self) -> None:
        assert self._conn is not None
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'format'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('format', ?)",
                (_FORMAT_VERSION,),
            )
        elif row[0] != _FORMAT_VERSION:
            raise StorageError(
                f"storage directory {self.root!r} uses format {row[0]!r}, "
                f"this build reads format {_FORMAT_VERSION!r}"
            )

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the sqlite handle."""
        return self._conn is None

    def close(self) -> None:
        """Commit and release the sqlite connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.commit()
            finally:
                self._conn.close()
                self._conn = None

    def _cursor(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StorageError(f"storage at {self.root!r} is closed")
        return self._conn

    # -- tables ------------------------------------------------------------

    def table_names(self) -> List[str]:
        """Names of every stored table, sorted."""
        rows = self._cursor().execute("SELECT name FROM tables ORDER BY name")
        return [r[0] for r in rows.fetchall()]

    def table_version(self, name: str) -> Optional[int]:
        """The stored mutation version of ``name`` (``None`` if absent)."""
        row = (
            self._cursor()
            .execute("SELECT version FROM tables WHERE name = ?", (name,))
            .fetchone()
        )
        return None if row is None else int(row[0])

    def save_table(
        self,
        name: str,
        schema_pairs: Sequence[Tuple[str, DataType]],
        rows: Sequence[Tuple[object, ...]],
        version: int,
        stats: Optional[Dict[str, Tuple[int, dict]]] = None,
    ) -> None:
        """Persist one table: column files first, then the catalog rows.

        ``stats`` maps a comma-joined column-position key to ``(version,
        PointStats dict)``; only summaries matching ``version`` are written,
        so a reopened database never resurrects a stale planner summary.
        """
        conn = self._cursor()
        table_dir = os.path.join(self._tables_dir, name)
        os.makedirs(table_dir, exist_ok=True)
        for position, (col_name, dtype) in enumerate(schema_pairs):
            values = [row[position] for row in rows]
            write_column(
                os.path.join(table_dir, column_filename(position, col_name)),
                col_name,
                dtype,
                values,
            )
        # Remove files of columns beyond the current schema (re-created table).
        expected = {
            column_filename(p, c) for p, (c, _) in enumerate(schema_pairs)
        }
        for entry in os.listdir(table_dir):
            if entry.endswith(".col") and entry not in expected:
                try:
                    os.unlink(os.path.join(table_dir, entry))
                except OSError:
                    pass
        try:
            conn.execute(
                "INSERT INTO tables (name, version, rowcount) VALUES (?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET version = ?, rowcount = ?",
                (name, version, len(rows), version, len(rows)),
            )
            conn.execute("DELETE FROM columns WHERE table_name = ?", (name,))
            conn.executemany(
                "INSERT INTO columns (table_name, position, name, dtype) "
                "VALUES (?, ?, ?, ?)",
                [
                    (name, position, col_name, dtype.value)
                    for position, (col_name, dtype) in enumerate(schema_pairs)
                ],
            )
            conn.execute("DELETE FROM stats WHERE table_name = ?", (name,))
            for columns_key, (stats_version, payload) in (stats or {}).items():
                if stats_version != version:
                    continue
                conn.execute(
                    "INSERT INTO stats (table_name, columns, version, payload) "
                    "VALUES (?, ?, ?, ?)",
                    (name, columns_key, stats_version, json.dumps(payload)),
                )
            conn.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"cannot save table {name!r}: {exc}") from exc

    def load_table(
        self, name: str
    ) -> Tuple[List[Tuple[str, DataType]], List[Tuple[object, ...]], int, Dict[str, Tuple[int, dict]]]:
        """Load ``(schema pairs, rows, version, stats)`` for one table."""
        conn = self._cursor()
        meta = conn.execute(
            "SELECT version, rowcount FROM tables WHERE name = ?", (name,)
        ).fetchone()
        if meta is None:
            raise StorageError(f"stored table {name!r} does not exist")
        version, rowcount = int(meta[0]), int(meta[1])
        column_rows = conn.execute(
            "SELECT position, name, dtype FROM columns WHERE table_name = ? "
            "ORDER BY position",
            (name,),
        ).fetchall()
        schema_pairs: List[Tuple[str, DataType]] = []
        columns: List[List[object]] = []
        table_dir = os.path.join(self._tables_dir, name)
        for position, col_name, dtype_name in column_rows:
            dtype = DataType.parse(dtype_name)
            path = os.path.join(table_dir, column_filename(position, col_name))
            stored_name, stored_dtype, values = read_column(path)
            if stored_name != col_name or stored_dtype is not dtype:
                raise StorageError(
                    f"column file {path!r} does not match the catalog "
                    f"({stored_name!r}:{stored_dtype.value} vs "
                    f"{col_name!r}:{dtype.value})"
                )
            if len(values) != rowcount:
                raise StorageError(
                    f"column file {path!r} holds {len(values)} rows, "
                    f"catalog expects {rowcount}"
                )
            schema_pairs.append((col_name, dtype))
            columns.append(values)
        rows = [tuple(col[i] for col in columns) for i in range(rowcount)]
        stats: Dict[str, Tuple[int, dict]] = {}
        for columns_key, stats_version, payload in conn.execute(
            "SELECT columns, version, payload FROM stats WHERE table_name = ?",
            (name,),
        ).fetchall():
            try:
                stats[columns_key] = (int(stats_version), json.loads(payload))
            except (ValueError, json.JSONDecodeError):
                continue  # stats are advisory; a bad row is just dropped
        return schema_pairs, rows, version, stats

    def remove_table(self, name: str) -> None:
        """Drop a stored table's catalog rows and column files."""
        conn = self._cursor()
        try:
            conn.execute("DELETE FROM tables WHERE name = ?", (name,))
            conn.execute("DELETE FROM columns WHERE table_name = ?", (name,))
            conn.execute("DELETE FROM stats WHERE table_name = ?", (name,))
            conn.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"cannot remove table {name!r}: {exc}") from exc
        shutil.rmtree(os.path.join(self._tables_dir, name), ignore_errors=True)
