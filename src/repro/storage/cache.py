"""The tiered, content-addressed result cache for SGB and join results.

Expensive intermediate results — SGB groupings and similarity-join pair
lists — are memoised under keys derived from *what was computed over what
data*: a :func:`repro.core.fingerprint.fingerprint_points` content digest of
the input batch plus the operator parameters that can change the result
(``eps``/``k``, metric, strategy, overlap action, seed) and the PointSet
backend.  Anything that only changes *how fast* the result is produced
(worker counts, shard fan-outs, batch/frontier flags) is deliberately
excluded: every execution mode is bit-identical, so they may share entries.

Hits reconstruct the exact :class:`~repro.core.result.GroupingResult` /
:class:`~repro.join.epsilon.JoinResult` payload that was stored — bit
identical groups, eliminated lists, points, and pair order.  Damaged or
truncated entries (a killed process mid-write on an unlucky filesystem,
manual tampering) are treated as misses and dropped; the cache can slow a
query down by at most one failed read, never break it.

Configuration
-------------

``cache=`` arguments accept ``None``/``False`` (off), ``True`` (the
process-wide default cache), a directory path (a tiered mem → local-file
cache rooted there), or a :class:`ResultCache` instance.  The ``SGB_CACHE``
environment variable overrides: ``off``/``0``/``false`` force the cache off
everywhere (the bypass smoke-tested in CI), ``on``/``1``/``mem`` enable the
default in-memory cache, and any other value is taken as a spill directory.
``SGB_CACHE_MEM_BYTES`` / ``SGB_CACHE_DISK_BYTES`` size the tiers.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.fingerprint import fingerprint_bytes
from repro.storage.store import AbstractStore, LocalFileStore, MemStore, TieredStore

__all__ = [
    "ResultCache",
    "resolve_cache",
    "default_cache",
    "reset_default_cache",
    "grouping_payload",
    "grouping_from_payload",
]

_ENV_CACHE = "SGB_CACHE"
_ENV_MEM_BYTES = "SGB_CACHE_MEM_BYTES"
_ENV_DISK_BYTES = "SGB_CACHE_DISK_BYTES"

_OFF_VALUES = {"off", "0", "false", "no", "none"}
_ON_VALUES = {"on", "1", "true", "yes", "mem", "memory", "auto"}

#: Payload format tag; bump when the pickled layout changes so stale spill
#: directories read as misses instead of mis-decoding.
_PAYLOAD_MAGIC = b"RPCACHE1"


class ResultCache:
    """Content-addressed result cache over an :class:`AbstractStore`.

    The cache stores pickled payloads prefixed with a format magic; loads
    verify the magic and tolerate any decoding failure by deleting the entry
    and reporting a miss.  ``hits`` / ``misses`` / ``puts`` counters make
    cache behaviour observable to tests and benchmarks; they move under a
    lock so concurrent server requests never lose increments (the stores
    guard their own structures — this lock is for the counters only).
    """

    def __init__(self, store: AbstractStore) -> None:
        self.store = store
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._lock = threading.Lock()

    def _count(self, field: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + delta)

    # -- constructors ------------------------------------------------------

    @classmethod
    def memory(cls, max_bytes: Optional[int] = None) -> "ResultCache":
        """A purely in-process cache (the default tier)."""
        return cls(MemStore(max_bytes=max_bytes or _mem_bytes()))

    @classmethod
    def tiered(
        cls,
        directory: str,
        mem_bytes: Optional[int] = None,
        disk_bytes: Optional[int] = None,
    ) -> "ResultCache":
        """A mem → local-file cache spilling under ``directory``."""
        return cls(
            TieredStore(
                MemStore(max_bytes=mem_bytes or _mem_bytes()),
                LocalFileStore(directory, max_bytes=disk_bytes or _disk_bytes()),
            )
        )

    # -- raw object access -------------------------------------------------

    def get(self, key: str) -> Optional[object]:
        """Return the cached object under ``key`` or ``None`` (miss/damage)."""
        blob = self.store.get(key)
        if blob is None:
            self._count("misses")
            return None
        if not blob.startswith(_PAYLOAD_MAGIC):
            self.store.delete(key)
            self._count("misses")
            return None
        try:
            value = pickle.loads(blob[len(_PAYLOAD_MAGIC) :])
        except Exception:  # noqa: BLE001 - damaged entries degrade to misses
            self.store.delete(key)
            self._count("misses")
            return None
        self._count("hits")
        return value

    def put(self, key: str, value: object) -> None:
        """Store ``value`` under ``key`` (best-effort)."""
        try:
            blob = _PAYLOAD_MAGIC + pickle.dumps(value, protocol=4)
        except Exception:  # noqa: BLE001 - unpicklable values are skipped
            return
        self.store.put(key, blob)
        self._count("puts")

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self.store.clear()
        with self._lock:
            self.hits = self.misses = self.puts = 0

    def _demote(self, key: str) -> None:
        """Reclassify a decodable-but-malformed payload as the miss it is."""
        self.store.delete(key)
        with self._lock:
            self.hits -= 1
            self.misses += 1

    # -- typed helpers -----------------------------------------------------

    def get_grouping(self, key: str):
        """Return a cached :class:`GroupingResult` or ``None``.

        A payload that unpickles but does not have the grouping shape (a
        foreign object written under our key) is deleted and reported as a
        miss — the cache never hands a grouping it cannot vouch for.
        """
        payload = self.get(key)
        if payload is None:
            return None
        try:
            groups, eliminated, points = payload
            if not all(
                isinstance(part, list) for part in (groups, eliminated, points)
            ):
                raise TypeError("malformed grouping payload")
            return grouping_from_payload(payload)
        except Exception:  # noqa: BLE001 - foreign payload under our key
            self._demote(key)
            return None

    def put_grouping(self, key: str, result) -> None:
        """Cache a :class:`GroupingResult` (its plan is never stored)."""
        self.put(key, grouping_payload(result))

    def get_pairs(self, key: str) -> "Optional[List[Tuple[int, int]]]":
        """Return a cached join pair list or ``None``.

        :meth:`put_pairs` normalises to a list of int 2-tuples at write time
        and pickling round-trips that exactly, so a structural spot check is
        enough here; per-element conversion only runs for payloads that do
        not have the written shape (and anything unconvertible is demoted to
        a miss).
        """
        payload = self.get(key)
        if payload is None:
            return None
        if isinstance(payload, list) and (
            not payload
            or (isinstance(payload[0], tuple) and len(payload[0]) == 2)
        ):
            return payload
        try:
            return [(int(i), int(j)) for i, j in payload]
        except Exception:  # noqa: BLE001 - foreign payload under our key
            self._demote(key)
            return None

    def put_pairs(self, key: str, pairs: Sequence[Tuple[int, int]]) -> None:
        """Cache a join pair list."""
        self.put(key, [(int(i), int(j)) for i, j in pairs])


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------


def _param_bytes(*parts: object) -> bytes:
    """Canonical byte encoding of key parameters (floats by their bits)."""
    out = bytearray()
    for part in parts:
        if isinstance(part, float):
            out += b"f" + struct.pack("<d", part)
        elif isinstance(part, bool) or part is None:
            out += repr(part).encode("ascii")
        elif isinstance(part, int):
            out += b"i" + str(part).encode("ascii")
        else:
            token = str(part).encode("utf-8")
            out += b"s" + struct.pack("<I", len(token)) + token
        out += b"|"
    return bytes(out)


def sgb_any_key(
    fingerprint: str, eps: float, metric: str, strategy: str, backend: str
) -> str:
    """Cache key of an SGB-Any grouping over the fingerprinted batch."""
    return fingerprint_bytes(
        b"sgb-any|",
        fingerprint.encode("ascii"),
        _param_bytes(float(eps), metric, strategy, backend),
    )


def sgb_all_key(
    fingerprint: str,
    eps: float,
    metric: str,
    strategy: str,
    on_overlap: str,
    seed: int,
    backend: str,
) -> str:
    """Cache key of an SGB-All grouping (overlap action and seed matter)."""
    return fingerprint_bytes(
        b"sgb-all|",
        fingerprint.encode("ascii"),
        _param_bytes(float(eps), metric, strategy, on_overlap, int(seed), backend),
    )


def join_key(
    left_fingerprint: str,
    right_fingerprint: str,
    eps: Optional[float],
    k: Optional[int],
    metric: str,
    backend: str,
) -> str:
    """Cache key of a similarity join between two fingerprinted relations."""
    return fingerprint_bytes(
        b"sim-join|",
        left_fingerprint.encode("ascii"),
        right_fingerprint.encode("ascii"),
        _param_bytes(
            None if eps is None else float(eps),
            None if k is None else int(k),
            metric,
            backend,
        ),
    )


# ---------------------------------------------------------------------------
# grouping payloads
# ---------------------------------------------------------------------------


def grouping_payload(result) -> "Tuple[List[List[int]], List[int], List[tuple]]":
    """The picklable identity of a :class:`GroupingResult`.

    Only the three result-defining fields are stored; the advisory ``plan``
    is execution metadata and never cached.
    """
    return (
        [list(members) for members in result.groups],
        list(result.eliminated),
        list(result.points),
    )


def grouping_from_payload(payload):
    """Rebuild a :class:`GroupingResult` from :func:`grouping_payload`."""
    from repro.core.result import GroupingResult

    groups, eliminated, points = payload
    return GroupingResult(
        groups=[list(members) for members in groups],
        eliminated=list(eliminated),
        points=[tuple(pt) for pt in points],
    )


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


def _mem_bytes() -> int:
    try:
        return int(os.environ.get(_ENV_MEM_BYTES, ""))
    except ValueError:
        return 256 * 1024 * 1024


def _disk_bytes() -> int:
    try:
        return int(os.environ.get(_ENV_DISK_BYTES, ""))
    except ValueError:
        return 1024 * 1024 * 1024


_DEFAULT_CACHE: Optional[ResultCache] = None
_DEFAULT_KIND: Optional[str] = None


def default_cache() -> ResultCache:
    """The process-wide cache used by ``cache=True`` / ``SGB_CACHE=on``.

    In-memory by default; when ``SGB_CACHE`` names a directory the default
    cache is the tiered mem → local-file cache rooted there.  Rebuilt if the
    environment selection changes between calls (tests repoint it).
    """
    global _DEFAULT_CACHE, _DEFAULT_KIND
    env = os.environ.get(_ENV_CACHE, "").strip()
    kind = env if env and env.lower() not in _ON_VALUES | _OFF_VALUES else "mem"
    if _DEFAULT_CACHE is None or kind != _DEFAULT_KIND:
        _DEFAULT_CACHE = (
            ResultCache.memory() if kind == "mem" else ResultCache.tiered(kind)
        )
        _DEFAULT_KIND = kind
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests isolate their tmp dirs)."""
    global _DEFAULT_CACHE, _DEFAULT_KIND
    _DEFAULT_CACHE = None
    _DEFAULT_KIND = None


def resolve_cache(cache: object = None) -> Optional[ResultCache]:
    """Resolve a ``cache=`` argument against the ``SGB_CACHE`` environment.

    ``SGB_CACHE=off`` (or ``0``/``false``) wins over everything — even an
    explicit :class:`ResultCache` instance is bypassed, which is what makes
    the cache provably removable from any workload.  Otherwise an explicit
    argument wins over the environment, and with no argument the environment
    alone decides (unset means no caching).
    """
    env = os.environ.get(_ENV_CACHE, "").strip()
    if env.lower() in _OFF_VALUES:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return default_cache()
    if cache is False:
        return None
    if isinstance(cache, str):
        return ResultCache.tiered(cache)
    if cache is not None:
        raise TypeError(f"unsupported cache argument {cache!r}")
    if not env:
        return None
    return default_cache()
