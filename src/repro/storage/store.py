"""Byte stores: the abstract interface and the memory / local-file tiers.

A store is a flat ``key -> bytes`` namespace with size-capped LRU eviction.
The result cache composes them into tiers (:class:`TieredStore`): a hot
in-process :class:`MemStore` in front of a spill :class:`LocalFileStore`
directory, so warm entries survive process restarts while repeat hits stay
memory-speed.  Keys are filesystem-safe tokens (the cache uses hex digests);
values are opaque byte payloads.

Every store degrades gracefully: a read that fails for any reason behaves as
a miss, and eviction never raises — a cache must never be the reason a query
fails.

Stores are shared across threads (the HTTP server runs many requests against
one cache), so every mutation path is guarded: :class:`MemStore` serialises
all access to its LRU dict under one lock, and :class:`TieredStore` locks the
tier walk so a promotion never interleaves with a concurrent write of the
same key.  :class:`LocalFileStore` needs no lock of its own — its writes are
single atomic renames and every read failure already degrades to a miss.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Iterator, List, Optional

__all__ = ["AbstractStore", "MemStore", "LocalFileStore", "TieredStore"]


class AbstractStore:
    """Minimal byte-store contract shared by every tier."""

    def get(self, key: str) -> Optional[bytes]:
        """Return the payload stored under ``key``, or ``None`` on a miss."""
        raise NotImplementedError

    def put(self, key: str, value: bytes) -> None:
        """Store ``value`` under ``key`` (replacing any prior payload)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove ``key`` if present (no-op otherwise)."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Return the currently stored keys (order unspecified)."""
        raise NotImplementedError

    def total_bytes(self) -> int:
        """Return the summed payload size currently held."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry."""
        for key in self.keys():
            self.delete(key)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())


class MemStore(AbstractStore):
    """In-process LRU byte store with a byte-size cap.

    ``get`` and ``put`` both refresh recency; inserting past ``max_bytes``
    evicts least-recently-used entries until the store fits.  A single
    payload larger than the whole cap is simply not retained.

    Safe under concurrent access: the LRU order and the byte total move
    together under one lock, so parallel readers can never corrupt the
    recency chain or drive ``_total`` out of sync with the entries (which
    would turn eviction into an over- or under-shooting loop).
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._total = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total -= len(old)
            if len(value) > self.max_bytes:
                return
            self._entries[key] = value
            self._total += len(value)
            while self._total > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._total -= len(evicted)

    def delete(self, key: str) -> None:
        with self._lock:
            value = self._entries.pop(key, None)
            if value is not None:
                self._total -= len(value)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def total_bytes(self) -> int:
        with self._lock:
            return self._total


class LocalFileStore(AbstractStore):
    """One file per key inside a spill directory, LRU-evicted by mtime.

    Writes are atomic (temp file + ``os.replace``) so a crashed process can
    never leave a half-written payload under a live key, and reads bump the
    file's mtime so eviction approximates LRU across processes.  All I/O
    errors degrade to misses / no-ops — the cache layer treats this tier as
    best-effort.
    """

    _SUFFIX = ".bin"

    def __init__(self, root: str, max_bytes: int = 1024 * 1024 * 1024) -> None:
        self.root = os.fspath(root)
        self.max_bytes = int(max_bytes)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + self._SUFFIX)

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = fh.read()
            os.utime(path)  # refresh LRU recency for eviction
            return value
        except OSError:
            return None

    def put(self, key: str, value: bytes) -> None:
        if len(value) > self.max_bytes:
            return
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(value)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._evict()

    def delete(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [n[: -len(self._SUFFIX)] for n in names if n.endswith(self._SUFFIX)]

    def total_bytes(self) -> int:
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:
                continue
        return total

    def _evict(self) -> None:
        """Delete oldest-read files until the directory fits the cap."""
        entries = []
        total = 0
        for key in self.keys():
            path = self._path(key)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size


class TieredStore(AbstractStore):
    """Memory tier in front of a durable tier.

    Reads check the tiers in order and promote hits into every faster tier;
    writes go to all tiers.  The composition is what the result cache calls
    "mem → localfile": repeat hits are served from memory, cold processes
    refill from disk.
    """

    def __init__(self, *tiers: AbstractStore) -> None:
        if not tiers:
            raise ValueError("TieredStore needs at least one tier")
        self.tiers = list(tiers)
        # One lock over the whole tier walk: a get-with-promotion must not
        # interleave with a concurrent put/delete of the same key, or a
        # demoted entry could be resurrected into the fast tier.
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            for i, tier in enumerate(self.tiers):
                value = tier.get(key)
                if value is not None:
                    for faster in self.tiers[:i]:
                        faster.put(key, value)
                    return value
            return None

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            for tier in self.tiers:
                tier.put(key, value)

    def delete(self, key: str) -> None:
        with self._lock:
            for tier in self.tiers:
                tier.delete(key)

    def keys(self) -> List[str]:
        seen: "dict[str, None]" = {}
        for tier in self.tiers:
            for key in tier.keys():
                seen.setdefault(key)
        return list(seen)

    def total_bytes(self) -> int:
        return max(tier.total_bytes() for tier in self.tiers)
