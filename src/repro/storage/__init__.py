"""repro.storage — durable tables, stores, and the tiered result cache.

Three cooperating layers turn the in-memory engine into a restartable system:

* :mod:`repro.storage.columnar` — an on-disk columnar table format (one file
  per column, fixed-width binary payloads with null bitmaps) that round-trips
  every :class:`repro.minidb.types.DataType` bit-identically;
* :mod:`repro.storage.catalog` — a sqlite-backed durable catalog mapping
  table schemas, mutation versions, and planner statistics to the column
  files, behind :meth:`repro.minidb.Database.open` / ``db.save()`` and the
  ``CREATE TABLE ... PERSISTENT`` DDL;
* :mod:`repro.storage.store` + :mod:`repro.storage.cache` — an abstract
  byte-store interface with memory → local-file tiers underneath a
  content-addressed result cache for SGB groupings and similarity-join pair
  lists, wired into ``sgb_any`` / ``sgb_all`` / ``sim_join`` and the minidb
  executors behind the ``cache=`` / ``SGB_CACHE`` knob;
* :mod:`repro.storage.checkpoint` — warm-start helpers used by streaming
  sessions and the experiment runners.
"""

from repro.storage.cache import ResultCache, default_cache, resolve_cache
from repro.storage.catalog import TableStore
from repro.storage.checkpoint import load_checkpoint, save_checkpoint
from repro.storage.store import (
    AbstractStore,
    LocalFileStore,
    MemStore,
    TieredStore,
)

__all__ = [
    "AbstractStore",
    "MemStore",
    "LocalFileStore",
    "TieredStore",
    "ResultCache",
    "resolve_cache",
    "default_cache",
    "TableStore",
    "save_checkpoint",
    "load_checkpoint",
]
