"""Warm-start checkpoints: pickle a resumable object to disk, tolerantly.

Streaming sessions (:meth:`repro.stream.session.StreamingSGB.checkpoint`)
and the experiment runner use these helpers to persist epoch state between
processes.  The format is a magic prefix plus a pickle; loading anything
damaged, truncated, or from a different format version returns ``None`` —
warm-start is an optimisation, so a broken checkpoint means "start cold",
never a crash.
"""

from __future__ import annotations

import os
import pickle
from typing import Optional

__all__ = ["save_checkpoint", "load_checkpoint"]

_MAGIC = b"RPCKPT1"


def save_checkpoint(obj: object, path: str) -> None:
    """Atomically write a checkpoint of ``obj`` to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        pickle.dump(obj, fh, protocol=4)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Optional[object]:
    """Load a checkpoint, or ``None`` if missing, damaged, or unreadable."""
    try:
        with open(path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                return None
            return pickle.load(fh)
    except Exception:  # noqa: BLE001 - cold start beats a crash, always
        return None
