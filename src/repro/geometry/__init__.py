"""Computational-geometry substrate used by the SGB-All L2 refinement step.

The public surface is intentionally small:

* :func:`convex_hull` — Andrew's monotone-chain convex hull (2-d).
* :func:`point_in_convex_polygon` — containment test against a hull.
* :func:`farthest_point` — farthest hull vertex from a query point.
* :func:`diameter` — the diameter of a point set (farthest pair).
* :class:`Polygon` — a light polygon value type used by the ``ST_Polygon``
  aggregate in the relational engine.
"""

from repro.geometry.convex_hull import (
    convex_hull,
    cross,
    diameter,
    farthest_point,
    point_in_convex_polygon,
)
from repro.geometry.polygon import Polygon

__all__ = [
    "convex_hull",
    "cross",
    "diameter",
    "farthest_point",
    "point_in_convex_polygon",
    "Polygon",
]
