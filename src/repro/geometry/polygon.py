"""A light polygon value type returned by the ``ST_Polygon`` aggregate.

The application queries in Section 5 of the paper (MANET coverage areas,
location-based group recommendation) return for every group the polygon that
encloses the group's points.  We model that result as the convex hull of the
group with a tiny amount of derived geometry (area, perimeter, containment)
so the examples can do something useful with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import EmptyInputError
from repro.geometry.convex_hull import convex_hull, point_in_convex_polygon

__all__ = ["Polygon"]


@dataclass(frozen=True)
class Polygon:
    """An immutable convex polygon given by its counter-clockwise vertices."""

    vertices: tuple[tuple[float, float], ...]

    @staticmethod
    def from_points(points: Iterable[Sequence[float]]) -> "Polygon":
        """Build the convex-hull polygon of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise EmptyInputError("Polygon.from_points with no points")
        return Polygon(tuple(convex_hull(pts)))

    @property
    def vertex_count(self) -> int:
        """Number of hull vertices."""
        return len(self.vertices)

    def area(self) -> float:
        """Return the polygon area (shoelace formula); 0 for degenerate hulls."""
        if len(self.vertices) < 3:
            return 0.0
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def perimeter(self) -> float:
        """Return the polygon perimeter (0 for a single point)."""
        if len(self.vertices) < 2:
            return 0.0
        n = len(self.vertices)
        if n == 2:
            return math.dist(self.vertices[0], self.vertices[1])
        return sum(
            math.dist(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)
        )

    def contains(self, point: Sequence[float]) -> bool:
        """Return True if ``point`` lies inside or on the polygon boundary."""
        return point_in_convex_polygon(point, self.vertices)

    def centroid(self) -> tuple[float, float]:
        """Return the arithmetic mean of the vertices (sufficient for reporting)."""
        n = len(self.vertices)
        return (
            sum(v[0] for v in self.vertices) / n,
            sum(v[1] for v in self.vertices) / n,
        )

    def wkt(self) -> str:
        """Return a Well-Known-Text representation (``POLYGON`` / ``POINT``)."""
        if len(self.vertices) == 1:
            x, y = self.vertices[0]
            return f"POINT ({x} {y})"
        if len(self.vertices) == 2:
            (x1, y1), (x2, y2) = self.vertices
            return f"LINESTRING ({x1} {y1}, {x2} {y2})"
        ring = ", ".join(f"{x} {y}" for x, y in self.vertices)
        first = self.vertices[0]
        return f"POLYGON (({ring}, {first[0]} {first[1]}))"
