"""Two-dimensional convex-hull utilities (Andrew's monotone chain).

The SGB-All algorithm uses the convex hull of a group as the exact refinement
for the L2 metric (paper Section 6.4, Procedure 6):

* a new point *inside* the hull is within ``eps`` of every member whenever the
  hull diameter is at most ``eps`` (which the SGB-All invariant guarantees);
* a new point *outside* the hull only needs to be compared with its farthest
  hull vertex.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import EmptyInputError

Point2 = tuple[float, float]

__all__ = [
    "cross",
    "convex_hull",
    "point_in_convex_polygon",
    "farthest_point",
    "diameter",
]


def cross(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """Return the z-component of the cross product of vectors ``OA`` and ``OB``.

    Positive for a counter-clockwise turn, negative for clockwise, zero for
    collinear points.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[Sequence[float]]) -> list[Point2]:
    """Return the convex hull of 2-d ``points`` in counter-clockwise order.

    Uses Andrew's monotone chain, O(n log n).  Collinear points on the hull
    boundary are dropped.  Degenerate inputs are handled: a single point or
    two points are returned as-is (deduplicated).
    """
    if not points:
        raise EmptyInputError("convex_hull of an empty point set")
    pts = sorted({(float(p[0]), float(p[1])) for p in points})
    if len(pts) <= 2:
        return list(pts)

    lower: list[Point2] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[Point2] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if not hull:
        # All points collinear and equal after dedup (cannot happen for
        # len(pts) > 2 distinct sorted points, but keep the guard cheap).
        hull = [pts[0], pts[-1]]
    return hull


def point_in_convex_polygon(point: Sequence[float], hull: Sequence[Point2]) -> bool:
    """Return True if ``point`` is inside or on the border of a convex polygon.

    ``hull`` must be in counter-clockwise order (as produced by
    :func:`convex_hull`).  Degenerate hulls (one or two vertices) are treated
    as a point / a segment.
    """
    if not hull:
        return False
    px, py = float(point[0]), float(point[1])
    if len(hull) == 1:
        return math.isclose(px, hull[0][0]) and math.isclose(py, hull[0][1])
    if len(hull) == 2:
        a, b = hull
        if abs(cross(a, b, (px, py))) > 1e-12 * (1 + abs(px) + abs(py)):
            return False
        return (
            min(a[0], b[0]) - 1e-12 <= px <= max(a[0], b[0]) + 1e-12
            and min(a[1], b[1]) - 1e-12 <= py <= max(a[1], b[1]) + 1e-12
        )
    n = len(hull)
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if cross(a, b, (px, py)) < -1e-12:
            return False
    return True


def farthest_point(point: Sequence[float], hull: Sequence[Point2]) -> Point2:
    """Return the hull vertex farthest (Euclidean) from ``point``."""
    if not hull:
        raise EmptyInputError("farthest_point on an empty hull")
    px, py = float(point[0]), float(point[1])
    best = hull[0]
    best_d = -1.0
    for v in hull:
        d = (v[0] - px) ** 2 + (v[1] - py) ** 2
        if d > best_d:
            best_d = d
            best = v
    return best


def diameter(points: Sequence[Sequence[float]]) -> float:
    """Return the Euclidean diameter (largest pairwise distance) of a point set.

    Computed on the convex hull with rotating calipers for point sets large
    enough to benefit; falls back to the hull-pairwise scan for tiny hulls.
    """
    if not points:
        raise EmptyInputError("diameter of an empty point set")
    hull = convex_hull(points)
    if len(hull) == 1:
        return 0.0
    if len(hull) == 2:
        return math.dist(hull[0], hull[1])

    n = len(hull)
    best = 0.0
    k = 1
    for i in range(n):
        j = (i + 1) % n
        # Advance the antipodal pointer while the triangle area keeps growing.
        while True:
            nxt = (k + 1) % n
            area_now = abs(cross(hull[i], hull[j], hull[k]))
            area_next = abs(cross(hull[i], hull[j], hull[nxt]))
            if area_next > area_now:
                k = nxt
            else:
                break
        best = max(best, math.dist(hull[i], hull[k]), math.dist(hull[j], hull[k]))
    return best
