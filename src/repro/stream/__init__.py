"""repro.stream — windowed incremental SGB over continuous point streams.

The subsystem turns the batch SGB-Any operator into a continuous one:

* :mod:`repro.stream.window` — tumbling and sliding window policies, count-
  or tick-based, partitioning the stream into whole-epoch units of admission
  and eviction;
* :mod:`repro.stream.session` — :class:`StreamingSGB`, the incremental
  session maintaining the live window as a ring of columnar epochs with a
  global Union-Find forest (evictions re-link only the touched groups, never
  rescanning the window), plus per-flush sharding through ``repro.engine``;
* :mod:`repro.stream.deltas` — change events (``GROUP_CREATED`` /
  ``GROUP_EXTENDED`` / ``GROUPS_MERGED`` / ``GROUP_EXPIRED``) diffed between
  consecutive flushes.

Entry points: :func:`repro.core.api.sgb_any_stream` for arrays of
micro-batches, or the ``WINDOW n [SLIDE m]`` option of the SQL similarity
clause for streamed relational queries.
"""

from repro.stream.deltas import DeltaEvent, DeltaKind, diff_flushes
from repro.stream.session import StreamingSGB, WindowResult, stream_groups
from repro.stream.window import (
    CountWindow,
    TickWindow,
    WindowPolicy,
    sliding,
    tumbling,
)

__all__ = [
    "CountWindow",
    "TickWindow",
    "WindowPolicy",
    "sliding",
    "tumbling",
    "StreamingSGB",
    "WindowResult",
    "stream_groups",
    "DeltaEvent",
    "DeltaKind",
    "diff_flushes",
]
