"""Window policies for the streaming SGB subsystem.

A window policy decides how a continuous point stream is cut into *epochs*
(the unit of admission and eviction) and how many epochs are live in each
emitted window.  Two families are provided:

* **count-based** — epochs close every ``slide`` arriving points; a window
  holds the last ``size`` points.  This is the classic row-based window of
  streaming SQL.
* **tick-based**  — every point carries a logical tick (e.g. the check-in
  timestamp); epochs close every ``slide`` ticks and a window covers the
  last ``size`` ticks.

``slide == size`` gives a tumbling window (disjoint windows, full state
reset between flushes); ``slide < size`` gives a sliding window (each flush
evicts exactly one epoch and admits one).  ``size`` must be a multiple of
``slide`` so an epoch is always evicted whole — that alignment is what lets
the session drop an expired epoch's columns in one step and re-link only the
groups that touched it, instead of rescanning the window (Union-Find cannot
delete elements).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidParameterError

__all__ = [
    "WindowPolicy",
    "CountWindow",
    "TickWindow",
    "tumbling",
    "sliding",
]


@dataclass(frozen=True)
class WindowPolicy:
    """Base window policy: ``size`` and ``slide`` in the policy's unit.

    ``epochs_per_window`` is the number of live epochs a full window spans;
    the session keeps exactly that many epochs in its ring.
    """

    size: int
    slide: int

    #: Unit of ``size``/``slide``: "count" (arriving points) or "tick"
    #: (logical timestamps supplied alongside the points).
    kind = "count"

    def __post_init__(self) -> None:
        if not isinstance(self.size, int) or isinstance(self.size, bool):
            raise InvalidParameterError(
                f"window size must be an integer, got {self.size!r}"
            )
        if not isinstance(self.slide, int) or isinstance(self.slide, bool):
            raise InvalidParameterError(
                f"window slide must be an integer, got {self.slide!r}"
            )
        if self.size <= 0 or self.slide <= 0:
            raise InvalidParameterError(
                f"window size and slide must be positive, got "
                f"size={self.size}, slide={self.slide}"
            )
        if self.slide > self.size:
            raise InvalidParameterError(
                f"window slide ({self.slide}) must not exceed the window size "
                f"({self.size}); points would expire before ever being grouped"
            )
        if self.size % self.slide != 0:
            raise InvalidParameterError(
                f"window size ({self.size}) must be a multiple of the slide "
                f"({self.slide}) so expiry always drops whole epochs"
            )

    @property
    def epochs_per_window(self) -> int:
        """Number of epochs a full window spans."""
        return self.size // self.slide

    @property
    def tumbling(self) -> bool:
        """True when consecutive windows are disjoint (``slide == size``)."""
        return self.slide == self.size


@dataclass(frozen=True)
class CountWindow(WindowPolicy):
    """Row-based window: the last ``size`` points, emitted every ``slide``."""

    kind = "count"


@dataclass(frozen=True)
class TickWindow(WindowPolicy):
    """Time-based window over logical ticks carried by the points.

    Epoch ``e`` covers ticks ``[e * slide, (e + 1) * slide)``; the window
    flushed when epoch ``e`` closes covers ticks
    ``[(e + 1) * slide - size, (e + 1) * slide)``.  Ticks must arrive
    monotonically non-decreasing (the session enforces this); gaps in the
    stream simply advance the window, expiring idle groups.
    """

    kind = "tick"

    def epoch_of(self, tick: int) -> int:
        """Return the epoch id a tick falls into."""
        return int(tick) // self.slide


def tumbling(size: int, by: str = "count") -> WindowPolicy:
    """Build a tumbling window policy (disjoint windows of ``size`` units)."""
    return _make(size, size, by)


def sliding(size: int, slide: int, by: str = "count") -> WindowPolicy:
    """Build a sliding window policy (``size`` units, advancing by ``slide``)."""
    return _make(size, slide, by)


def _make(size: int, slide: int, by: str) -> WindowPolicy:
    unit = by.strip().lower()
    if unit == "count":
        return CountWindow(size=size, slide=slide)
    if unit == "tick":
        return TickWindow(size=size, slide=slide)
    raise InvalidParameterError(f"unknown window unit: {by!r} (use 'count' or 'tick')")
