"""Windowed incremental SGB-Any sessions over continuous point streams.

:class:`StreamingSGB` turns the batch SGB-Any operator into a continuous
one: micro-batches are ingested through the columnar ``add_batch`` fast
path, the live window is a ring of epoch-partitioned columnar blocks, and
every window flush reports the grouping of the window's live points plus the
change events (:mod:`repro.stream.deltas`) since the previous flush.

Incremental execution (the default) never regroups the window from scratch:

* Each live epoch owns a :class:`~repro.core.sgb_any.SGBAnyGrouper` that
  incrementally maintains the epoch-internal epsilon connectivity (and the
  spatial index answering probes against the epoch).
* Eps-edges *between* epochs are discovered once, when a micro-batch
  arrives, by one grid-join of the batch against the combined older epochs
  (:meth:`PointSet.cross_within`), and are retained per epoch pair reduced
  to a spanning subset.
* A global Union-Find forest over the live window accumulates both kinds of
  edges; a flush just reads its components.
* Union-Find cannot delete, so when an epoch expires the forest is rebuilt
  *without rescanning the window*: :meth:`UnionFind.split_forest` isolates
  the components that touched the expired epoch, untouched components are
  replayed verbatim, and only the touched ones are re-linked from the
  retained per-epoch forests (:meth:`SGBAnyGrouper.forest` /
  :meth:`UnionFind.merge_from`) and cross-epoch edge lists.  No distance is
  ever recomputed.

With ``workers`` resolving to more than one process the session instead
routes every flush through the sharded parallel engine
(:func:`repro.engine.workers.sgb_any_sharded` via ``sgb_any_grouping``),
regrouping the live window per flush across worker processes.  Both modes
return bit-identical flush results (after the canonical relabelling all SGB
paths share), enforced by the randomized equivalence suite.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult, canonicalize_groups
from repro.core.sgb_any import SGBAnyGrouper
from repro.dstruct.union_find import UnionFind
from repro.engine.planner import plan_shards, resolve_workers
from repro.exceptions import DimensionalityError, InvalidParameterError
from repro.stream.deltas import DeltaEvent, diff_flushes
from repro.stream.window import CountWindow, TickWindow, WindowPolicy

Point = Tuple[float, ...]

__all__ = ["StreamingSGB", "WindowResult", "stream_groups"]

#: Checkpoint payload tag; bump when the session's pickled layout changes so
#: stale checkpoint files read as "start fresh" instead of mis-restoring.
_CHECKPOINT_FORMAT = "streaming-sgb/1"


@dataclass
class WindowResult:
    """The outcome of one window flush.

    Attributes
    ----------
    window_id:
        Sequential flush number (0-based).
    epoch:
        Id of the epoch whose closing triggered this flush.
    start, end:
        The window extent, in the policy's unit: global stream positions for
        count windows, ticks for tick windows (``end`` exclusive).
    indices:
        Global stream positions of the window's live points, ascending.
    result:
        Grouping of the live points with **window-local** row indices
        (``0 .. len(indices) - 1``), directly comparable to a from-scratch
        ``sgb_any`` over the same points.
    deltas:
        Change events relative to the previous flush, over global stream
        positions.
    """

    window_id: int
    epoch: int
    start: int
    end: int
    indices: List[int]
    result: GroupingResult
    deltas: List[DeltaEvent] = field(default_factory=list)

    def global_groups(self) -> List[List[int]]:
        """Return the groups lifted to global stream positions (canonical)."""
        return [[self.indices[i] for i in group] for group in self.result.groups]

    @property
    def live_count(self) -> int:
        """Number of live points in the window."""
        return len(self.indices)


class _Epoch:
    """One live epoch: a contiguous columnar block of the window ring."""

    __slots__ = ("eid", "indices", "points", "grouper", "_pointset")

    def __init__(self, eid: int, grouper: Optional[SGBAnyGrouper]) -> None:
        self.eid = eid
        self.indices: List[int] = []
        self.points: List[Point] = []
        #: Incremental mode only: the epoch-local SGB-Any grouper holding the
        #: intra-epoch forest built through the ``add_batch`` fast path.
        #: ``None`` in sharded mode (flushes regroup via the engine).
        self.grouper = grouper
        self._pointset: Optional[PointSet] = None

    def pointset(self, backend: Optional[str]) -> PointSet:
        """Columnar view of the epoch, cached once the epoch stops growing.

        Cross-epoch edge discovery only ever probes *closed* epochs (the open
        epoch's internal edges come from its grouper), so the cache is built
        at most once per epoch.
        """
        if self._pointset is None or len(self._pointset) != len(self.points):
            # The tuples were validated when the batch was first ingested.
            self._pointset = PointSet.adopt_validated(self.points, backend=backend)
        return self._pointset


class _CrossEdges:
    """Spanning cross-epoch edge state for one live ``(older, newer)`` pair.

    ``edges`` holds only edges that connected something new *given the two
    epochs' own forests and the pair's earlier edges* — the discarded ones are
    redundant in every future rebuild too, because rebuilds only ever drop
    whole epochs, so the intra-epoch paths that made an edge redundant
    survive for as long as the pair does.  ``uf`` is the pair-scoped forest
    used for that filtering; it dies with the pair.
    """

    __slots__ = ("uf", "edges")

    def __init__(self) -> None:
        self.uf = UnionFind()
        self.edges: List[Tuple[int, int]] = []


class StreamingSGB:
    """A continuous SGB-Any session over a windowed point stream.

    Parameters
    ----------
    eps, metric:
        The similarity threshold and metric of the SGB-Any operator.
    window:
        A :class:`~repro.stream.window.WindowPolicy`, or an int count-window
        size (combined with ``slide``; tumbling when ``slide`` is omitted).
    slide:
        Count-window slide when ``window`` is an int; must divide the size.
    workers:
        Per-flush sharding: resolved like ``sgb_any(..., workers=)`` (explicit
        count, ``0``/``"auto"``, or ``None`` deferring to ``SGB_WORKERS``).
        More than one worker regroups each flush through ``repro.engine``;
        otherwise flushes read the incrementally maintained forest.
    backend:
        Optional :class:`PointSet` backend override (``"python"`` forces the
        pure-Python columnar kernels; default auto-selects NumPy).
    """

    def __init__(
        self,
        eps: float,
        metric: "Metric | str" = Metric.L2,
        window: "WindowPolicy | int" = None,  # type: ignore[assignment]
        slide: Optional[int] = None,
        workers: "Optional[int | str]" = None,
        backend: Optional[str] = None,
    ) -> None:
        self.eps = PointSet._check_eps(eps)
        self.metric = resolve_metric(metric)
        self.policy = self._resolve_policy(window, slide)
        self.workers = workers
        self._backend = backend
        self._sharded = self._plan_sharded_mode(workers)
        self._epochs: Deque[_Epoch] = deque()
        self._uf = UnionFind()
        #: Reduced eps-edges between live epoch pairs, ``(older_eid, newer_eid)``.
        self._cross: Dict[Tuple[int, int], _CrossEdges] = {}
        #: Cached columnar view of the closed (older) epochs, rebuilt when the
        #: epoch set changes: (eids key, combined PointSet, cumulative epoch
        #: boundaries, epoch list).
        self._older_view: "Optional[Tuple[Tuple[int, ...], PointSet, List[int], List[_Epoch]]]" = None
        self._prev_global_groups: List[List[int]] = []
        self._next_index = 0
        self._window_id = 0
        self._flushed_eid = -1
        self._last_tick: Optional[int] = None
        self._dims: Optional[int] = None
        self._closed = False

    def _plan_sharded_mode(self, workers: "Optional[int | str]") -> bool:
        """Decide between per-flush sharding and the incremental mode.

        More than one resolved worker requests sharding, but the engine
        planner has the final word: a count window caps the live point count
        at ``policy.size``, so when that can never reach the parallel floor
        (``SGB_PARALLEL_MIN_POINTS``) every flush would pay pool overhead
        for a payload the planner degrades to serial anyway — the session
        then stays incremental, which is strictly cheaper.  Tick windows
        carry no point-count bound, so they keep the requested sharding and
        rely on the same per-flush planner check inside the engine.

        A delegated mode choice (``workers="auto"`` / no knob) instead asks
        the cost planner (:func:`repro.engine.cost.plan_stream_flush`) to
        price the incremental forest read against a sharded per-flush
        regroup of the window; the chosen plan is kept on ``self.plan``.
        Both modes flush bit-identical results.
        """
        from repro.engine.cost import plan_stream_flush, planner_delegated

        self.plan = None
        if planner_delegated(workers):
            window_points = self.policy.size if self.policy.kind == "count" else 0
            self.plan = plan_stream_flush(window_points, self.eps)
            return self.plan.mode == "sharded-flush"
        if resolve_workers(workers) <= 1:
            return False
        if self.policy.kind != "count":
            return True
        return plan_shards(self.policy.size, self.eps, workers).parallel

    @staticmethod
    def _resolve_policy(
        window: "WindowPolicy | int", slide: Optional[int]
    ) -> WindowPolicy:
        if isinstance(window, WindowPolicy):
            if slide is not None:
                raise InvalidParameterError(
                    "pass slide inside the WindowPolicy, not alongside it"
                )
            return window
        if window is None:
            raise InvalidParameterError("a window size or WindowPolicy is required")
        return CountWindow(size=window, slide=window if slide is None else slide)

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def ingest(
        self,
        points: "PointSet | Sequence[Sequence[float]]",
        ticks: Optional[Sequence[int]] = None,
    ) -> List[WindowResult]:
        """Feed one micro-batch; return the windows it caused to flush.

        ``ticks`` is required (one per point, monotonically non-decreasing
        across the whole stream) for tick-based policies and must be omitted
        for count-based ones.
        """
        if self._closed:
            raise InvalidParameterError("stream session is closed")
        ps = PointSet.from_any(points, backend=self._backend)
        if len(ps) == 0:
            if ticks is not None and len(ticks) != 0:
                raise InvalidParameterError("ticks given without points")
            return []
        if self._dims is None:
            self._dims = ps.dims
        elif ps.dims != self._dims:
            raise DimensionalityError(
                f"stream dimensionality changed from {self._dims} to {ps.dims}"
            )
        tuples = ps.to_tuples()
        if isinstance(self.policy, TickWindow):
            if ticks is None:
                raise InvalidParameterError(
                    "a tick-based window policy requires ticks alongside the points"
                )
            if len(ticks) != len(tuples):
                raise InvalidParameterError(
                    f"got {len(tuples)} points but {len(ticks)} ticks"
                )
            return self._ingest_ticked(tuples, [int(t) for t in ticks])
        if ticks is not None:
            raise InvalidParameterError(
                "ticks are only meaningful with a tick-based window policy"
            )
        return self._ingest_counted(tuples)

    def checkpoint(self, path: str) -> None:
        """Persist the complete session state to ``path`` (atomic write).

        Everything the session holds — the live epoch ring with its
        incremental groupers, the window forest, the retained cross-epoch
        edges, counters, and the previous flush's groups — is serialised, so
        a :meth:`resume`\\ d session continues the stream exactly where this
        one stopped and flushes bit-identical windows from then on.
        """
        from repro.storage.checkpoint import save_checkpoint

        save_checkpoint({"format": _CHECKPOINT_FORMAT, "session": self}, path)

    @staticmethod
    def resume(path: str) -> "Optional[StreamingSGB]":
        """Rebuild a session from a :meth:`checkpoint` file.

        Returns ``None`` when the file is missing, truncated, or from an
        incompatible format version — callers then start a fresh session and
        re-ingest; a damaged checkpoint never raises.
        """
        from repro.storage.checkpoint import load_checkpoint

        payload = load_checkpoint(path)
        if not isinstance(payload, dict) or payload.get("format") != _CHECKPOINT_FORMAT:
            return None
        session = payload.get("session")
        return session if isinstance(session, StreamingSGB) else None

    def close(self) -> List[WindowResult]:
        """Flush the final partial epoch (if any) and end the session."""
        if self._closed:
            return []
        self._closed = True
        out: List[WindowResult] = []
        if self._epochs:
            last = self._epochs[-1]
            if last.eid > self._flushed_eid and last.indices:
                flush = self._flush_epoch(last.eid)
                if flush is not None:
                    out.append(flush)
        return out

    @property
    def live_count(self) -> int:
        """Number of points currently held live in the window ring."""
        return sum(len(epoch.indices) for epoch in self._epochs)

    @property
    def ingested(self) -> int:
        """Total number of points ingested so far."""
        return self._next_index

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------

    def _ingest_counted(self, tuples: List[Point]) -> List[WindowResult]:
        out: List[WindowResult] = []
        slide = self.policy.slide
        position = 0
        while position < len(tuples):
            epoch = self._accepting_epoch()
            room = slide - len(epoch.indices)
            chunk = tuples[position : position + room]
            self._admit(epoch, chunk)
            position += len(chunk)
            if len(epoch.indices) == slide:
                flush = self._flush_epoch(epoch.eid)
                if flush is not None:
                    out.append(flush)
        return out

    def _ingest_ticked(
        self, tuples: List[Point], ticks: List[int]
    ) -> List[WindowResult]:
        out: List[WindowResult] = []
        policy = self.policy
        assert isinstance(policy, TickWindow)
        position = 0
        while position < len(tuples):
            tick = ticks[position]
            if self._last_tick is not None and tick < self._last_tick:
                raise InvalidParameterError(
                    f"ticks must be non-decreasing: {tick} after {self._last_tick}"
                )
            eid = policy.epoch_of(tick)
            # Split off the run of consecutive points landing in this epoch.
            stop = position
            while stop < len(tuples) and policy.epoch_of(ticks[stop]) == eid:
                if ticks[stop] < ticks[max(stop - 1, position)]:
                    raise InvalidParameterError(
                        f"ticks must be non-decreasing: {ticks[stop]} after "
                        f"{ticks[stop - 1]}"
                    )
                stop += 1
            self._last_tick = ticks[stop - 1]
            out.extend(self._advance_to_epoch(eid))
            epoch = self._accepting_epoch(eid)
            self._admit(epoch, tuples[position:stop])
            position = stop
        return out

    def _advance_to_epoch(self, eid: int) -> List[WindowResult]:
        """Close every epoch before ``eid``, flushing the windows they end.

        Idle epochs (no arrivals) still close their windows so stale groups
        expire on time; once the window is fully drained the remaining idle
        flushes are silent (nothing live, nothing left to expire).
        """
        out: List[WindowResult] = []
        if not self._epochs:
            return out
        open_eid = self._epochs[-1].eid
        if eid < open_eid:
            raise InvalidParameterError(
                f"tick epoch {eid} arrived after epoch {open_eid} was opened"
            )
        for closing in range(open_eid, eid):
            flush = self._flush_epoch(closing)
            if flush is not None:
                out.append(flush)
            if not self._epochs and not self._prev_global_groups:
                break  # window fully drained: skip the remaining idle flushes
        return out

    def _accepting_epoch(self, eid: Optional[int] = None) -> _Epoch:
        """Return the epoch currently accepting points, opening it if needed."""
        if self._epochs:
            last = self._epochs[-1]
            if last.eid > self._flushed_eid and (eid is None or last.eid == eid):
                return last
            next_eid = last.eid + 1 if eid is None else eid
        else:
            next_eid = self._flushed_eid + 1 if eid is None else eid
        # Evict eagerly: epochs sliding out of the next window must not be
        # probed for cross-epoch edges against the arriving points.
        self._evict_through(next_eid - self.policy.epochs_per_window)
        grouper = (
            None
            if self._sharded
            else SGBAnyGrouper(eps=self.eps, metric=self.metric)
        )
        epoch = _Epoch(next_eid, grouper)
        self._epochs.append(epoch)
        return epoch

    def _admit(self, epoch: _Epoch, chunk: Sequence[Point]) -> None:
        """Admit a chunk of points (all belonging to ``epoch``) into the ring."""
        if not chunk:
            return
        base = self._next_index
        arrivals = list(range(base, base + len(chunk)))
        self._next_index += len(chunk)
        # The chunk is a slice of the batch ingest() already validated.
        chunk_ps = PointSet.adopt_validated(list(chunk), backend=self._backend)
        if epoch.grouper is not None:
            # Intra-epoch connectivity via the columnar add_batch fast path.
            epoch.grouper.add_batch(chunk_ps)
            epoch.indices.extend(arrivals)
            epoch.points.extend(chunk)
            self._uf.add_many(arrivals)
            self._uf.merge_from(
                epoch.grouper.forest(), translate=epoch.indices.__getitem__
            )
            # Cross-epoch eps-edges: one grid-join of the micro-batch against
            # the combined view of every older (closed) epoch — the columnar
            # cross-set kernel explores each probe's neighbourhood once for
            # the whole window instead of once per epoch, with the same
            # bit-exact eps decisions and no per-tuple index probing.  Edges
            # are attributed back to their (older, newer) epoch pair and each
            # pair's list is reduced to a spanning subset on the way in (see
            # _reduce_cross_edges), so dense windows do not hoard the
            # quadratic raw edge set.
            view = self._older_epoch_view(epoch)
            if view is not None:
                combined, bounds, olders = view
                per_pair: Dict[int, List[Tuple[int, int]]] = {}
                for i, j in combined.cross_within(chunk_ps, self.eps, self.metric):
                    slot = bisect_right(bounds, i)
                    older = olders[slot]
                    older_global = older.indices[i - (bounds[slot - 1] if slot else 0)]
                    per_pair.setdefault(slot, []).append((older_global, arrivals[j]))
                for slot, raw in sorted(per_pair.items()):
                    kept = self._reduce_cross_edges(olders[slot], epoch, raw)
                    if kept:
                        self._uf.union_pairs(kept)
        else:
            epoch.indices.extend(arrivals)
            epoch.points.extend(chunk)

    def _older_epoch_view(
        self, current: _Epoch
    ) -> "Optional[Tuple[PointSet, List[int], List[_Epoch]]]":
        """Combined columnar view of the closed epochs, cached per epoch set.

        Closed epochs never grow, so the concatenation only needs rebuilding
        when an epoch opens or expires; every micro-batch admitted to the
        same open epoch reuses it.  Returns ``(points, cumulative epoch
        boundaries, epochs)`` or ``None`` when the window holds no older
        points.
        """
        olders = [e for e in self._epochs if e is not current and e.points]
        if not olders:
            return None
        key = tuple(e.eid for e in olders)
        if self._older_view is not None and self._older_view[0] == key:
            _, combined, bounds, cached = self._older_view
            return combined, bounds, cached
        combined = PointSet.concat(
            [e.pointset(self._backend) for e in olders], backend=self._backend
        )
        bounds: List[int] = []
        total = 0
        for e in olders:
            total += len(e.points)
            bounds.append(total)
        self._older_view = (key, combined, bounds, olders)
        return combined, bounds, olders

    def _reduce_cross_edges(
        self, older: _Epoch, epoch: _Epoch, raw: List[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Keep only the cross edges that add connectivity for this pair."""
        key = (older.eid, epoch.eid)
        entry = self._cross.get(key)
        if entry is None:
            entry = _CrossEdges()
            assert older.grouper is not None
            entry.uf.merge_from(
                older.grouper.forest(), translate=older.indices.__getitem__
            )
            self._cross[key] = entry
        assert epoch.grouper is not None
        entry.uf.merge_from(
            epoch.grouper.forest(), translate=epoch.indices.__getitem__
        )
        kept: List[Tuple[int, int]] = []
        for a, b in raw:
            if not entry.uf.connected(a, b):
                entry.uf.union(a, b)
                kept.append((a, b))
        entry.edges.extend(kept)
        return kept

    # ------------------------------------------------------------------
    # flush + eviction
    # ------------------------------------------------------------------

    def _flush_epoch(self, closing_eid: int) -> Optional[WindowResult]:
        """Close epoch ``closing_eid``: evict expired epochs, emit the window."""
        self._flushed_eid = closing_eid
        self._evict_through(closing_eid - self.policy.epochs_per_window)
        if not any(epoch.indices for epoch in self._epochs) and not self._prev_global_groups:
            return None  # nothing live and nothing to expire: silent window
        return self._emit(closing_eid)

    def _evict_through(self, max_expired_eid: int) -> None:
        """Expire every epoch with ``eid <= max_expired_eid``."""
        expired: List[_Epoch] = []
        while self._epochs and self._epochs[0].eid <= max_expired_eid:
            expired.append(self._epochs.popleft())
        if not expired:
            return
        live_eids = {epoch.eid for epoch in self._epochs}
        self._cross = {
            key: entry
            for key, entry in self._cross.items()
            if key[0] in live_eids and key[1] in live_eids
        }
        if self._sharded:
            return
        expired_indices = [g for epoch in expired for g in epoch.indices]
        if not expired_indices:
            return
        self._rebuild_forest(expired_indices)

    def _rebuild_forest(self, expired_indices: Sequence[int]) -> None:
        """Drop the expired points from the live forest without rescanning.

        Components untouched by the expired epoch(s) are replayed verbatim;
        touched components are re-linked from the retained per-epoch forests
        and cross-epoch edge lists — pure Union-Find work, no distance
        computation or index probe happens here.
        """
        touched, untouched = self._uf.split_forest(expired_indices)
        rebuilt = UnionFind()
        for epoch in self._epochs:
            rebuilt.add_many(epoch.indices)
        for element, root in untouched.items():
            if element != root:
                rebuilt.union(element, root)
        for epoch in self._epochs:
            indices = epoch.indices
            assert epoch.grouper is not None
            forest = epoch.grouper.forest()
            rebuilt.merge_from(
                {
                    indices[local]: indices[root]
                    for local, root in forest.items()
                    if indices[local] in touched
                }
            )
        for entry in self._cross.values():
            rebuilt.union_pairs(
                (a, b) for a, b in entry.edges if a in touched
            )
        self._uf = rebuilt

    def _emit(self, closing_eid: int) -> WindowResult:
        indices = [g for epoch in self._epochs for g in epoch.indices]
        points = [p for epoch in self._epochs for p in epoch.points]
        if self._sharded:
            result = self._regroup_sharded(points)
        else:
            position = {g: i for i, g in enumerate(indices)}
            components = self._uf.components().values()
            result = GroupingResult(
                groups=canonicalize_groups(
                    [position[member] for member in members] for members in components
                ),
                eliminated=[],
                points=points,
            )
        global_groups = canonicalize_groups(
            [indices[i] for i in group] for group in result.groups
        )
        deltas = diff_flushes(self._prev_global_groups, global_groups)
        self._prev_global_groups = global_groups
        start, end = self._window_extent(closing_eid, indices)
        window = WindowResult(
            window_id=self._window_id,
            epoch=closing_eid,
            start=start,
            end=end,
            indices=indices,
            result=result,
            deltas=deltas,
        )
        self._window_id += 1
        return window

    def _regroup_sharded(self, points: List[Point]) -> GroupingResult:
        """Per-flush sharding: regroup the live window through the engine."""
        if not points:
            return GroupingResult.empty()
        from repro.core.sgb_any import sgb_any_grouping

        return sgb_any_grouping(
            PointSet.adopt_validated(points, backend=self._backend),
            eps=self.eps,
            metric=self.metric,
            workers=self.workers,
        )

    def _window_extent(
        self, closing_eid: int, indices: List[int]
    ) -> Tuple[int, int]:
        if isinstance(self.policy, TickWindow):
            end = (closing_eid + 1) * self.policy.slide
            return end - self.policy.size, end
        if indices:
            return indices[0], indices[-1] + 1
        return self._next_index, self._next_index


def stream_groups(
    batches: "Iterable[Sequence[Sequence[float]] | tuple]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    window: "WindowPolicy | int" = None,  # type: ignore[assignment]
    slide: Optional[int] = None,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
):
    """Drive a :class:`StreamingSGB` over an iterable of micro-batches.

    Yields :class:`WindowResult` objects as windows close.  With a tick-based
    policy each batch must be a ``(points, ticks)`` pair; otherwise a batch
    is any point container ``ingest`` accepts.  The final partial window is
    flushed when the iterable is exhausted.
    """
    session = StreamingSGB(
        eps, metric=metric, window=window, slide=slide, workers=workers, backend=backend
    )
    ticked = isinstance(session.policy, TickWindow)
    for batch in batches:
        if ticked:
            points, ticks = batch
            results = session.ingest(points, ticks=ticks)
        else:
            results = session.ingest(batch)
        yield from results
    yield from session.close()
