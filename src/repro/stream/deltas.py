"""Change events emitted between consecutive window flushes.

A streaming consumer usually cares about *what changed* — a new cluster of
check-ins appearing, two clusters fusing, a stale cluster timing out — not
about re-reading the full grouping every flush.  :func:`diff_flushes`
compares two consecutive flush results (both canonicalised with
:func:`repro.core.result.canonicalize_groups` over **global stream indices**)
and emits:

* ``GROUP_CREATED``   — a group with no surviving predecessor (all-new
  members, or a fragment split off an old group by eviction).
* ``GROUP_EXTENDED``  — a group that gained new points while descending from
  exactly one predecessor.
* ``GROUPS_MERGED``   — a group covering the survivors of two or more
  predecessor groups.
* ``GROUP_EXPIRED``   — a predecessor group none of whose members survived
  the slide.

Group identity across flushes is the *anchor*: the smallest global stream
index among the group's members.  A group that merely shrinks (lost members
to eviction but kept its surviving-member continuity) emits no event; a
predecessor that splits keeps its identity on the fragment containing its
smallest surviving member, and the other fragments are reported as created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence, Set, Tuple

__all__ = ["DeltaKind", "DeltaEvent", "diff_flushes"]


class DeltaKind(Enum):
    """The kind of change a :class:`DeltaEvent` reports."""

    GROUP_CREATED = "GROUP_CREATED"
    GROUP_EXTENDED = "GROUP_EXTENDED"
    GROUPS_MERGED = "GROUPS_MERGED"
    GROUP_EXPIRED = "GROUP_EXPIRED"


@dataclass(frozen=True)
class DeltaEvent:
    """One change event between two consecutive flushes.

    Attributes
    ----------
    kind:
        What happened to the group.
    group:
        The group's anchor — its smallest global stream index.  For
        ``GROUP_EXPIRED`` this is the anchor the group had in the previous
        flush.
    members:
        The group's members (global stream indices, ascending) *after* the
        flush; for ``GROUP_EXPIRED`` the members it had before expiring.
    added:
        Members that were not part of any group in the previous flush
        (``GROUP_EXTENDED`` / ``GROUPS_MERGED``; for ``GROUP_CREATED`` every
        member is new so ``added == members`` only when no predecessor split).
    sources:
        For ``GROUPS_MERGED``: the anchors of the predecessor groups that
        fused, ascending.
    """

    kind: DeltaKind
    group: int
    members: Tuple[int, ...]
    added: Tuple[int, ...] = ()
    sources: Tuple[int, ...] = field(default=())

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        extra = ""
        if self.kind is DeltaKind.GROUPS_MERGED:
            extra = f" sources={list(self.sources)}"
        elif self.kind is DeltaKind.GROUP_EXTENDED:
            extra = f" added={list(self.added)}"
        return f"{self.kind.value}(group={self.group}, |members|={len(self.members)}{extra})"


def diff_flushes(
    previous: Sequence[Sequence[int]], current: Sequence[Sequence[int]]
) -> List[DeltaEvent]:
    """Diff two consecutive flushes given in canonical global-index form.

    Both arguments are group lists over **global stream indices** in the
    canonical order of :func:`~repro.core.result.canonicalize_groups`
    (members ascending, groups ordered by smallest member).  Events are
    emitted in that canonical order for the current flush, followed by the
    expirations ordered by anchor, so the event stream is deterministic.
    """
    prev_members: Dict[int, Set[int]] = {g[0]: set(g) for g in previous if g}
    member_to_anchor: Dict[int, int] = {
        m: anchor for anchor, ms in prev_members.items() for m in ms
    }
    alive: Set[int] = {m for g in current for m in g}

    events: List[DeltaEvent] = []
    for group in current:
        if not group:
            continue
        members = tuple(group)
        anchor = members[0]
        predecessors = sorted({member_to_anchor[m] for m in members if m in member_to_anchor})
        added = tuple(m for m in members if m not in member_to_anchor)
        if not predecessors:
            events.append(
                DeltaEvent(DeltaKind.GROUP_CREATED, anchor, members, added=members)
            )
        elif len(predecessors) >= 2:
            events.append(
                DeltaEvent(
                    DeltaKind.GROUPS_MERGED,
                    anchor,
                    members,
                    added=added,
                    sources=tuple(predecessors),
                )
            )
        else:
            parent = predecessors[0]
            survivors = sorted(m for m in prev_members[parent] if m in alive)
            if survivors and survivors[0] not in members:
                # The predecessor split on eviction; this fragment does not
                # carry its identity forward, so it counts as a new group.
                events.append(
                    DeltaEvent(DeltaKind.GROUP_CREATED, anchor, members, added=added)
                )
            elif added:
                events.append(
                    DeltaEvent(DeltaKind.GROUP_EXTENDED, anchor, members, added=added)
                )
            # Unchanged or shrunk-but-continuous groups emit nothing.
    for anchor in sorted(prev_members):
        members = prev_members[anchor]
        if not (members & alive):
            events.append(
                DeltaEvent(
                    DeltaKind.GROUP_EXPIRED, anchor, tuple(sorted(members))
                )
            )
    return events
