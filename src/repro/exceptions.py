"""Exception hierarchy shared by every subsystem of the reproduction.

Every error raised on purpose by :mod:`repro` derives from :class:`ReproError`
so callers can catch library failures without swallowing genuine bugs
(``TypeError``, ``KeyError`` from internal misuse, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain.

    Examples: a negative similarity threshold, an unknown distance metric
    name, a point with the wrong dimensionality.
    """


class DimensionalityError(InvalidParameterError):
    """Points with inconsistent dimensionality were mixed in one operation."""


class EmptyInputError(ReproError, ValueError):
    """An operation that requires at least one element received none."""


class SpatialIndexError(ReproError):
    """An internal invariant of a spatial index was violated."""


class UnionFindError(ReproError):
    """An element was used with a Union-Find forest it was never added to."""


class StorageError(ReproError):
    """A durable-storage operation failed (corrupt file, closed store, ...).

    Raised by :mod:`repro.storage` when an on-disk table or catalog cannot be
    read or written.  Cache-file corruption never raises this — the result
    cache degrades to a recompute instead.
    """


# --- relational engine (minidb) errors -------------------------------------


class DatabaseError(ReproError):
    """Base class for every error raised by the in-memory relational engine."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(DatabaseError):
    """A table or column referenced in a statement does not exist (or already exists)."""


class SchemaError(DatabaseError):
    """Row data does not match the schema of the target table."""


class PlanningError(DatabaseError):
    """The planner could not translate a parsed statement into a physical plan."""


class ExecutionError(DatabaseError):
    """A runtime failure while executing a physical plan."""


class AggregateError(ExecutionError):
    """An aggregate function was called with invalid arguments or state."""
