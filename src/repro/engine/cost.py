"""Cost-based physical planning for the SGB operators and similarity joins.

Given a :class:`~repro.engine.stats.PointStats` summary of the input (and a
machine :class:`~repro.engine.calibrate.CostProfile`), the planners here
score every *candidate execution mode* of an operator and return a
:class:`PhysicalPlan` naming the winner with its estimated cost:

=============  ==========================================================
operator       candidate modes
=============  ==========================================================
``sgb_any``    ``scalar`` · ``batch`` (serial grid) · ``sharded``
``sgb_all``    ``scalar`` · ``frontier`` (batched frontier discovery)
``eps_join``   ``allpairs`` · ``grid`` · ``sharded``
``knn_join``   ``serial`` · ``sharded``
``stream``     ``incremental`` · ``sharded-flush``
=============  ==========================================================

Plans are **advisory about time only** — every candidate mode is
result-identical to the serial scalar reference (the randomized equivalence
suite enforces this), so a mis-estimate can waste seconds, never change an
answer.

The planner engages only when the caller delegated the choice
(:func:`planner_delegated`): ``workers="auto"`` / ``0``, or no ``workers``
argument with no numeric ``SGB_WORKERS`` in the environment.  An explicit
numeric worker count is a forced mode and bypasses the cost model entirely,
so benchmarks and the forced-parallel CI lane measure exactly what they
pinned.

Sharded plans pick the *shard fan-out* adaptively from the partition-axis
histogram: on uniform data one slab per worker is optimal (more shards only
add per-task overhead), but on skewed data the balanced-cut slabs are capped
by the histogram's hot bins, so the planner over-decomposes (2–4 slabs per
worker) and lets the pool's greedy scheduling pack the uneven slabs — the
classic LPT remedy for stragglers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.calibrate import CostProfile, load_profile
from repro.engine.planner import ENV_WORKERS, _min_points
from repro.engine.stats import PointStats

__all__ = [
    "PhysicalPlan",
    "planner_delegated",
    "plan_sgb_any",
    "plan_sgb_all",
    "plan_eps_join",
    "plan_knn_join",
    "plan_stream_flush",
    "filter_placement_gain",
]

#: Estimated serial runtimes below this are not worth parallelising no
#: matter what the formulas say: pool latency and result shipping are
#: certain, the projected win is not.
_MIN_PARALLEL_SECONDS = 0.05

#: A parallel plan must project at least this speedup over the best serial
#: candidate before it is chosen (hysteresis against estimation noise).
_MIN_PARALLEL_GAIN = 1.25

#: Candidate slabs-per-worker fan-outs scored for sharded plans.
_FANOUT_CANDIDATES = (1, 2, 4)

#: Above this partition-axis imbalance the input counts as skewed.
_SKEW_THRESHOLD = 1.5


@dataclass(frozen=True)
class PhysicalPlan:
    """One scored execution choice for an operator invocation.

    ``details`` carries the per-candidate cost table so ``EXPLAIN`` (and the
    decision-regression tests) can show *why* the winner won, not just who.
    """

    op: str
    mode: str
    workers: int = 1
    shards: int = 1
    est_cost: float = 0.0
    est_rows: int = 0
    reason: str = ""
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def describe(self) -> str:
        """One-line rendering used by ``EXPLAIN`` and ``repr``-style logs."""
        parts = [f"{self.op}: mode={self.mode}"]
        if self.workers > 1 or self.shards > 1:
            parts.append(f"workers={self.workers} shards={self.shards}")
        parts.append(f"est_cost={self.est_cost:.6f}s est_rows={self.est_rows}")
        if self.reason:
            parts.append(f"({self.reason})")
        return " ".join(parts)


def planner_delegated(workers: "Optional[int | str]" = None) -> bool:
    """True when the caller left the mode choice to the cost planner.

    Delegation means ``workers="auto"`` / ``0`` (explicitly "you pick"), or
    ``workers=None`` with ``SGB_WORKERS`` unset (or itself ``auto``/``0``).
    A numeric worker count — argument or environment — is a *forced* mode:
    the legacy threshold path runs and the planner stays out of the way.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip().lower()
        return env in ("", "auto", "0")
    if isinstance(workers, str):
        return workers.strip().lower() == "auto"
    return workers == 0


def _available_workers(cpu_count: Optional[int] = None) -> int:
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, cores)


def _sharded_candidate(
    stats: PointStats,
    serial_work: float,
    ship_rows: int,
    workers: int,
    profile: CostProfile,
) -> Tuple[float, int, Dict[str, float]]:
    """Best sharded cost for ``workers`` processes: (cost, fan-out, table).

    Slab task costs are read off the partition-axis histogram (the same
    balanced cuts the partitioner will place); the makespan of greedily
    packing ``F`` slab tasks onto ``W`` workers is bounded below by both the
    biggest single slab and the perfectly balanced share, so we price it as
    their max — the standard LPT estimate.
    """
    detail: Dict[str, float] = {}
    best_cost = float("inf")
    best_fanout = workers
    for per_worker in _FANOUT_CANDIDATES:
        fanout = workers * per_worker
        loads = stats.slab_loads(fanout)
        # Work splits across slabs proportionally to the squared load share:
        # per-point work is linear, pair verification quadratic in density.
        sq_total = sum(load * load for load in loads) or 1
        slab_costs = [
            serial_work * (load * load) / (sq_total * 1.0) for load in loads
        ]
        makespan = max(max(slab_costs), sum(slab_costs) / workers)
        cost = (
            makespan
            + profile.c_task * len(loads)
            + profile.c_ship * ship_rows
        )
        detail[f"sharded@{fanout}"] = cost
        if cost < best_cost:
            best_cost = cost
            best_fanout = fanout
    return best_cost, best_fanout, detail


def _pick_parallel(
    serial_mode: str,
    serial_cost: float,
    sharded_cost: float,
) -> bool:
    """Hysteresis gate: go parallel only for a clear, worthwhile win."""
    if serial_cost < _MIN_PARALLEL_SECONDS:
        return False
    return sharded_cost * _MIN_PARALLEL_GAIN <= serial_cost


def plan_sgb_any(
    stats: PointStats,
    eps: float,
    cpu_count: Optional[int] = None,
    profile: Optional[CostProfile] = None,
) -> PhysicalPlan:
    """Choose the execution mode for one SGB-Any batch."""
    profile = profile or load_profile()
    n = stats.count
    pairs = stats.estimated_pairs(eps)
    est_rows = stats.estimated_groups(eps)
    serial_cost = profile.c_point * n + profile.c_pair * pairs
    if n < max(32, _min_points()):
        # The grid build isn't worth it for a handful of points, and the
        # partitioner refuses tiny payloads anyway.
        mode = "scalar" if n < 32 else "batch"
        return PhysicalPlan(
            op="sgb_any",
            mode=mode,
            est_cost=serial_cost,
            est_rows=est_rows,
            reason=f"n={n} below parallel floor",
            details={"batch": serial_cost},
        )
    workers = _available_workers(cpu_count)
    details: Dict[str, float] = {"batch": serial_cost}
    if workers > 1:
        sharded_cost, fanout, detail = _sharded_candidate(
            stats, serial_cost, ship_rows=n, workers=workers, profile=profile
        )
        details.update(detail)
        if _pick_parallel("batch", serial_cost, sharded_cost):
            skew = stats.axis_imbalance()
            return PhysicalPlan(
                op="sgb_any",
                mode="sharded",
                workers=workers,
                shards=fanout,
                est_cost=sharded_cost,
                est_rows=est_rows,
                reason=(
                    f"skew={skew:.2f} -> {fanout} shards on {workers} workers"
                ),
                details=details,
            )
    return PhysicalPlan(
        op="sgb_any",
        mode="batch",
        est_cost=serial_cost,
        est_rows=est_rows,
        reason="serial grid cheapest" if workers > 1 else "single core",
        details=details,
    )


def plan_sgb_all(
    stats: PointStats,
    eps: float,
    cpu_count: Optional[int] = None,
    profile: Optional[CostProfile] = None,
) -> PhysicalPlan:
    """Choose the execution mode for one SGB-All batch.

    SGB-All's group semantics are order-dependent (overlap arbitration), so
    there is no sharded candidate — the choice is scalar vs the batched
    frontier pipeline, which wins as soon as the batch has enough points to
    amortise its columnar staging.
    """
    profile = profile or load_profile()
    n = stats.count
    pairs = stats.estimated_pairs(eps)
    est_rows = stats.estimated_groups(eps)
    scalar_cost = (profile.c_point * 4.0) * n + profile.c_pair * pairs * 2.0
    frontier_cost = profile.c_point * n + profile.c_pair * pairs
    details = {"scalar": scalar_cost, "frontier": frontier_cost}
    if n < 32:
        return PhysicalPlan(
            op="sgb_all",
            mode="scalar",
            est_cost=scalar_cost,
            est_rows=est_rows,
            reason=f"n={n} tiny",
            details=details,
        )
    return PhysicalPlan(
        op="sgb_all",
        mode="frontier",
        est_cost=frontier_cost,
        est_rows=est_rows,
        reason="batched frontier amortises discovery",
        details=details,
    )


def plan_eps_join(
    left: PointStats,
    right: PointStats,
    eps: float,
    cpu_count: Optional[int] = None,
    profile: Optional[CostProfile] = None,
) -> PhysicalPlan:
    """Choose all-pairs vs grid vs sharded-grid for one eps-join."""
    profile = profile or load_profile()
    n_l, n_r = left.count, right.count
    est_pairs = left.estimated_join_pairs(right, eps)
    est_rows = int(round(est_pairs))
    allpairs_cost = profile.c_pair * n_l * n_r
    # The grid sweep builds cells over both sides and verifies only the
    # candidates in adjacent cells; candidates exceed true hits by a small
    # geometry factor (3^d cell neighbourhoods), priced here at 4x.
    grid_cost = profile.c_point * (n_l + n_r) + profile.c_pair * 4.0 * max(
        est_pairs, 1.0
    )
    details = {"allpairs": allpairs_cost, "grid": grid_cost}
    if allpairs_cost <= grid_cost:
        return PhysicalPlan(
            op="eps_join",
            mode="allpairs",
            est_cost=allpairs_cost,
            est_rows=est_rows,
            reason=f"dense join (selectivity {est_pairs / max(1, n_l * n_r):.3f})",
            details=details,
        )
    workers = _available_workers(cpu_count)
    if workers > 1 and min(n_l, n_r) >= _min_points():
        # Shard the bigger side; both sides ship to the pool.
        big = left if n_l >= n_r else right
        sharded_cost, fanout, detail = _sharded_candidate(
            big, grid_cost, ship_rows=n_l + n_r, workers=workers, profile=profile
        )
        details.update(detail)
        if _pick_parallel("grid", grid_cost, sharded_cost):
            return PhysicalPlan(
                op="eps_join",
                mode="sharded",
                workers=workers,
                shards=fanout,
                est_cost=sharded_cost,
                est_rows=est_rows,
                reason=f"{fanout} shards on {workers} workers",
                details=details,
            )
    return PhysicalPlan(
        op="eps_join",
        mode="grid",
        est_cost=grid_cost,
        est_rows=est_rows,
        reason="grid sweep cheapest",
        details=details,
    )


def plan_knn_join(
    left: PointStats,
    right: PointStats,
    k: int,
    cpu_count: Optional[int] = None,
    profile: Optional[CostProfile] = None,
) -> PhysicalPlan:
    """Choose serial vs sharded execution for one kNN-join."""
    profile = profile or load_profile()
    n_l, n_r = left.count, right.count
    est_rows = n_l * min(k, n_r)
    # Build an index over the right side, then one expanding probe per left
    # point; probe cost grows with k (more candidates verified per probe).
    probe_pairs = float(n_l) * min(n_r, 8 * max(1, k))
    serial_cost = profile.c_point * (n_l + n_r) + profile.c_pair * probe_pairs
    details = {"serial": serial_cost}
    workers = _available_workers(cpu_count)
    if workers > 1 and n_l >= _min_points():
        sharded_cost, fanout, detail = _sharded_candidate(
            left, serial_cost, ship_rows=n_l + n_r, workers=workers, profile=profile
        )
        details.update(detail)
        if _pick_parallel("serial", serial_cost, sharded_cost):
            return PhysicalPlan(
                op="knn_join",
                mode="sharded",
                workers=workers,
                shards=fanout,
                est_cost=sharded_cost,
                est_rows=est_rows,
                reason=f"{fanout} probe shards on {workers} workers",
                details=details,
            )
    return PhysicalPlan(
        op="knn_join",
        mode="serial",
        est_cost=serial_cost,
        est_rows=est_rows,
        reason="serial probe cheapest",
        details=details,
    )


def plan_stream_flush(
    window_points: int,
    eps: float,
    cpu_count: Optional[int] = None,
    profile: Optional[CostProfile] = None,
    stats: Optional[PointStats] = None,
) -> PhysicalPlan:
    """Incremental forest read vs per-flush sharded regroup for one window.

    The incremental mode reads the maintained Union-Find forest — near-free
    per flush.  Regrouping the whole window only wins when the window is so
    large that even its *sharded* regroup cost undercuts the incremental
    bookkeeping carried between flushes (eviction rebuilds); below that the
    planner always stays incremental.
    """
    from repro.engine.stats import synthetic_stats

    profile = profile or load_profile()
    window_stats = stats if stats is not None else synthetic_stats(window_points)
    regroup = plan_sgb_any(window_stats, eps, cpu_count=cpu_count, profile=profile)
    # Maintained-forest bookkeeping: roughly one point-cost per live point
    # (neighbour probes on ingest were already paid either way).
    incremental_cost = profile.c_point * window_points
    details = dict(regroup.details)
    details["incremental"] = incremental_cost
    if regroup.mode == "sharded" and regroup.est_cost < incremental_cost:
        return PhysicalPlan(
            op="stream_flush",
            mode="sharded-flush",
            workers=regroup.workers,
            shards=regroup.shards,
            est_cost=regroup.est_cost,
            est_rows=regroup.est_rows,
            reason="sharded regroup beats incremental upkeep",
            details=details,
        )
    return PhysicalPlan(
        op="stream_flush",
        mode="incremental",
        est_cost=incremental_cost,
        est_rows=regroup.est_rows,
        reason="maintained forest is near-free per flush",
        details=details,
    )


def fused_join_group_gain(
    left: PointStats, right: PointStats, eps: float, profile: Optional[CostProfile] = None
) -> float:
    """Estimated seconds saved by fusing an eps-join into a downstream SGB.

    The materialized pipeline pays to emit every join pair as a row and
    re-ingest it; the fused pipeline streams pair endpoints straight into
    the grouper.  The saving is therefore proportional to the join's output
    cardinality — the planner fuses whenever the estimate is positive, and
    ``EXPLAIN`` surfaces the number.
    """
    profile = profile or load_profile()
    est_pairs = left.estimated_join_pairs(right, eps)
    return profile.c_ship * 2.0 * est_pairs + profile.c_point * est_pairs


def filter_placement_gain(
    side: PointStats,
    other: PointStats,
    eps: float,
    selectivity: float,
    profile: Optional[CostProfile] = None,
) -> float:
    """Estimated seconds saved by filtering one eps-join input *first*.

    Compares the join priced on the unfiltered side against the filter pass
    (one predicate evaluation per input row) plus the join priced on the
    side shrunk to ``selectivity`` of its rows.  Positive means push the
    filter below the join; negative or zero means defer it above (e.g. a
    non-selective predicate whose early evaluation buys nothing but still
    costs a pass).  The rewrite layer records either decision in its trace.
    """
    profile = profile or load_profile()
    selectivity = max(0.0, min(1.0, selectivity))
    unfiltered = plan_eps_join(side, other, eps, profile=profile).est_cost
    shrunk = side.scaled(side.count * selectivity)
    filtered = (
        profile.c_point * side.count
        + plan_eps_join(shrunk, other, eps, profile=profile).est_cost
    )
    return unfiltered - filtered


def slab_histogram(stats: PointStats, fanout: int) -> List[int]:
    """The balanced-cut slab loads a sharded plan would schedule (for tests)."""
    return stats.slab_loads(fanout)
