"""Lightweight per-batch statistics feeding the cost-based physical planner.

A :class:`PointStats` summarises one point batch in O(n) with a fixed, small
memory footprint: the count, the bounding box, and one fixed-width histogram
per axis (:data:`STATS_BINS` bins over the axis extent).  Everything the cost
model needs is derived from those histograms:

* **pair selectivity** — the expected fraction of point pairs within ``eps``
  (per-axis histogram self-convolution, combined across axes under an
  independence assumption; exact for LINF boxes, a tight upper bound for L2);
* **join selectivity** — the same convolution between *two* batches'
  histograms, estimating how many cross pairs an eps-join will emit;
* **partition-axis imbalance** — how unevenly the widest axis is populated,
  which drives the adaptive shard fan-out (more shards than workers on skewed
  inputs, so the worker pool can balance the uneven slabs).

Statistics are cached on the :class:`PointSet` object itself (point sets are
immutable, so the cache can never go stale); mutable relational tables cache
their statistics keyed by a version counter that every insert/truncate bumps
(see :meth:`repro.minidb.table.Table.point_stats`).

Degenerate inputs are first-class: empty batches, single points, zero-width
axes (all points sharing a coordinate), and duplicate-heavy batches all
produce well-defined statistics without ever dividing by zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.pointset import HAVE_NUMPY, NumpyPointSet, PointSet

try:  # optional; the pure-Python fallback covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend
    _np = None

__all__ = [
    "STATS_BINS",
    "PointStats",
    "collect_stats",
    "stats_from_columns",
    "synthetic_stats",
]

#: Number of fixed-width histogram bins per axis.  Small enough that the
#: whole summary is a few KB, large enough to resolve the skew patterns the
#: partitioner cares about (a handful of hot slabs along one axis).
STATS_BINS = 64


@dataclass(frozen=True)
class PointStats:
    """Summary statistics of one point batch.

    ``histograms[axis][b]`` counts the points whose ``axis`` coordinate falls
    into fixed-width bin ``b`` of the axis extent ``[low[axis], high[axis]]``.
    A zero-width axis (all points share the coordinate) stores its whole
    population in bin 0.
    """

    count: int
    dims: int
    low: Tuple[float, ...]
    high: Tuple[float, ...]
    histograms: Tuple[Tuple[int, ...], ...]

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot; the durable catalog persists these
        alongside the table version so reopened databases keep their warm
        planner statistics (see :mod:`repro.storage.catalog`)."""
        return {
            "count": self.count,
            "dims": self.dims,
            "low": list(self.low),
            "high": list(self.high),
            "histograms": [list(h) for h in self.histograms],
        }

    @staticmethod
    def from_dict(payload: dict) -> "PointStats":
        """Inverse of :meth:`to_dict`; raises on malformed payloads."""
        return PointStats(
            count=int(payload["count"]),
            dims=int(payload["dims"]),
            low=tuple(float(v) for v in payload["low"]),
            high=tuple(float(v) for v in payload["high"]),
            histograms=tuple(
                tuple(int(c) for c in h) for h in payload["histograms"]
            ),
        )

    # -- geometry ----------------------------------------------------------

    def extent(self, axis: int) -> float:
        """Width of the bounding box along ``axis`` (0.0 when degenerate)."""
        if not self.low:
            return 0.0
        return self.high[axis] - self.low[axis]

    def widest_axis(self) -> int:
        """The axis with the largest extent (the partitioner's cut axis)."""
        if self.dims == 0:
            return 0
        return max(range(self.dims), key=self.extent)

    def bin_width(self, axis: int) -> float:
        """Width of one histogram bin along ``axis`` (0.0 when degenerate)."""
        extent = self.extent(axis)
        if extent <= 0.0 or not self.histograms:
            return 0.0
        return extent / len(self.histograms[axis])

    # -- selectivity -------------------------------------------------------

    def axis_pair_fraction(self, axis: int, eps: float) -> float:
        """Estimated fraction of (ordered) point pairs within ``eps`` on ``axis``.

        Histogram self-convolution: for every bin, the population of the bins
        whose centres lie within ``eps``.  Degenerate axes (no width) return
        1.0 — every pair trivially agrees along them.
        """
        if self.count == 0:
            return 0.0
        width = self.bin_width(axis)
        if width <= 0.0:
            return 1.0
        histogram = self.histograms[axis]
        radius = int(eps / width) + 1  # conservative: bin centres are coarse
        total = 0
        n_bins = len(histogram)
        prefix = _prefix_sums(histogram)
        for b, count in enumerate(histogram):
            if not count:
                continue
            lo = max(0, b - radius)
            hi = min(n_bins - 1, b + radius)
            total += count * (prefix[hi + 1] - prefix[lo])
        return min(1.0, total / (self.count * self.count))

    def pair_fraction(self, eps: float) -> float:
        """Estimated fraction of point pairs within ``eps`` under a box metric.

        Product of the per-axis fractions (independence assumption).  Exact in
        expectation for LINF; an upper bound for L2/L1, which is the right
        bias for a cost model (never underestimates the verification work).
        """
        fraction = 1.0
        for axis in range(self.dims):
            fraction *= self.axis_pair_fraction(axis, eps)
            if fraction == 0.0:
                break
        return fraction

    def estimated_pairs(self, eps: float) -> float:
        """Expected number of unordered within-eps pairs in the batch."""
        if self.count < 2:
            return 0.0
        return self.pair_fraction(eps) * self.count * (self.count - 1) / 2.0

    def estimated_groups(self, eps: float) -> int:
        """Crude SGB group-count estimate: n over (1 + average eps-degree)."""
        if self.count == 0:
            return 0
        degree = 2.0 * self.estimated_pairs(eps) / self.count
        return max(1, round(self.count / (1.0 + degree)))

    def cross_pair_fraction(self, other: "PointStats", axis: int, eps: float) -> float:
        """Estimated fraction of cross pairs within ``eps`` along ``axis``."""
        if self.count == 0 or other.count == 0:
            return 0.0
        width_a = self.bin_width(axis)
        width_b = other.bin_width(axis)
        if width_a <= 0.0 and width_b <= 0.0:
            # Both axes are degenerate: compare the two shared coordinates.
            return 1.0 if abs(self.low[axis] - other.low[axis]) <= eps else 0.0
        hist_a = self.histograms[axis]
        hist_b = other.histograms[axis]
        centres_b = [
            other.low[axis] + (b + 0.5) * width_b if width_b > 0.0 else other.low[axis]
            for b in range(len(hist_b))
        ]
        prefix_b = _prefix_sums(hist_b)
        reach = eps + 0.5 * (width_a + width_b)  # bin centres are coarse
        total = 0
        for b, count in enumerate(hist_a):
            if not count:
                continue
            centre = (
                self.low[axis] + (b + 0.5) * width_a if width_a > 0.0 else self.low[axis]
            )
            lo = _bisect_left(centres_b, centre - reach)
            hi = _bisect_right(centres_b, centre + reach)
            total += count * (prefix_b[hi] - prefix_b[lo])
        return min(1.0, total / (self.count * other.count))

    def estimated_join_pairs(self, other: "PointStats", eps: float) -> float:
        """Expected eps-join output size against ``other`` (histogram overlap)."""
        if self.count == 0 or other.count == 0:
            return 0.0
        fraction = 1.0
        for axis in range(min(self.dims, other.dims)):
            fraction *= self.cross_pair_fraction(other, axis, eps)
            if fraction == 0.0:
                break
        return fraction * self.count * other.count

    # -- derivation --------------------------------------------------------

    def range_fraction(
        self, axis: int, low: Optional[float] = None, high: Optional[float] = None
    ) -> float:
        """Estimated fraction of points with ``low <= coord[axis] <= high``.

        ``None`` on either side means unbounded.  Reads the axis histogram at
        bin granularity (a bin partially covered by the range contributes its
        covered share), so the estimate reflects real skew, not a uniformity
        assumption.
        """
        if self.count == 0 or not self.histograms:
            return 0.0
        lo_bound = self.low[axis] if low is None else low
        hi_bound = self.high[axis] if high is None else high
        if hi_bound < lo_bound:
            return 0.0
        width = self.bin_width(axis)
        if width <= 0.0:
            # Degenerate axis: all mass shares one coordinate.
            value = self.low[axis]
            return 1.0 if lo_bound <= value <= hi_bound else 0.0
        histogram = self.histograms[axis]
        total = 0.0
        for b, count in enumerate(histogram):
            if not count:
                continue
            bin_lo = self.low[axis] + b * width
            bin_hi = bin_lo + width
            overlap = min(bin_hi, hi_bound) - max(bin_lo, lo_bound)
            if overlap <= 0.0:
                continue
            total += count * min(1.0, overlap / width)
        return min(1.0, total / self.count)

    def clipped(
        self, axis: int, low: Optional[float] = None, high: Optional[float] = None
    ) -> "PointStats":
        """Summary of the points surviving a range predicate on ``axis``.

        The clipped axis keeps only the bins inside ``[low, high]`` (partially
        covered boundary bins keep their covered share) and tightens its
        bounding box; every other axis scales its histogram by the kept
        fraction (independence assumption, same as the selectivity model).
        """
        if self.count == 0 or not self.histograms:
            return self
        fraction = self.range_fraction(axis, low, high)
        if fraction >= 1.0:
            return self
        lo_bound = self.low[axis] if low is None else max(low, self.low[axis])
        hi_bound = self.high[axis] if high is None else min(high, self.high[axis])
        new_count = max(0, int(round(self.count * fraction)))
        if new_count == 0 or hi_bound < lo_bound:
            return PointStats(
                count=0, dims=self.dims, low=(), high=(), histograms=()
            )
        width = self.bin_width(axis)
        new_histograms: List[Tuple[int, ...]] = []
        for a, histogram in enumerate(self.histograms):
            if a == axis and width > 0.0:
                clipped_bins: List[int] = []
                for b, count in enumerate(histogram):
                    bin_lo = self.low[axis] + b * width
                    overlap = min(bin_lo + width, hi_bound) - max(bin_lo, lo_bound)
                    share = max(0.0, min(1.0, overlap / width))
                    clipped_bins.append(int(round(count * share)))
                new_histograms.append(tuple(clipped_bins))
            else:
                new_histograms.append(
                    tuple(int(round(c * fraction)) for c in histogram)
                )
        new_low = list(self.low)
        new_high = list(self.high)
        new_low[axis] = lo_bound
        new_high[axis] = hi_bound
        return PointStats(
            count=new_count,
            dims=self.dims,
            low=tuple(new_low),
            high=tuple(new_high),
            histograms=tuple(new_histograms),
        )

    def scaled(self, new_count: int) -> "PointStats":
        """The same distribution re-weighted to ``new_count`` points.

        Used to propagate statistics through operators that keep a column's
        value distribution but change the cardinality (filters on *other*
        columns, joins fanning the side in or out).
        """
        new_count = max(0, int(round(new_count)))
        if new_count == self.count:
            return self
        if new_count == 0 or self.count == 0 or not self.histograms:
            return PointStats(
                count=new_count,
                dims=self.dims,
                low=self.low if new_count else (),
                high=self.high if new_count else (),
                histograms=self.histograms if new_count else (),
            )
        ratio = new_count / self.count
        return PointStats(
            count=new_count,
            dims=self.dims,
            low=self.low,
            high=self.high,
            histograms=tuple(
                tuple(int(round(c * ratio)) for c in histogram)
                for histogram in self.histograms
            ),
        )

    # -- skew --------------------------------------------------------------

    def axis_imbalance(self, axis: Optional[int] = None) -> float:
        """Skew of the (widest) axis: max occupied-bin load over the mean.

        1.0 means perfectly uniform occupancy; large values mean a few bins
        hold most of the points, so equal-width slabs would leave most
        workers idle — the planner responds with a finer shard fan-out.
        """
        if self.count == 0 or not self.histograms:
            return 1.0
        if axis is None:
            axis = self.widest_axis()
        occupied = [c for c in self.histograms[axis] if c > 0]
        if not occupied:
            return 1.0
        mean = sum(occupied) / len(occupied)
        return max(occupied) / mean if mean > 0 else 1.0

    def occupied_bins(self, axis: Optional[int] = None) -> int:
        """Number of populated histogram bins along the (widest) axis."""
        if not self.histograms:
            return 0
        if axis is None:
            axis = self.widest_axis()
        return sum(1 for c in self.histograms[axis] if c > 0)

    def slab_loads(self, n_slabs: int, axis: Optional[int] = None) -> List[int]:
        """Balanced-cut slab populations along the (widest) axis.

        Mirrors the partitioner's cumulative-histogram cut placement on the
        coarse statistics bins: walk the histogram, cutting whenever the
        cumulative load reaches the next balanced target.  The result is what
        the worker pool will actually have to schedule, so its maximum drives
        the makespan estimate.
        """
        if self.count == 0 or n_slabs <= 1 or not self.histograms:
            return [self.count]
        if axis is None:
            axis = self.widest_axis()
        histogram = self.histograms[axis]
        loads: List[int] = []
        current = 0
        done = 0
        for count in histogram:
            current += count
            target = (len(loads) + 1) * self.count / n_slabs
            if done + current >= target and len(loads) < n_slabs - 1:
                loads.append(current)
                done += current
                current = 0
        loads.append(current)
        return [load for load in loads if load > 0] or [self.count]


def _prefix_sums(values: Sequence[int]) -> List[int]:
    out = [0]
    for v in values:
        out.append(out[-1] + v)
    return out


def _bisect_left(values: List[float], x: float) -> int:
    from bisect import bisect_left

    return bisect_left(values, x)


def _bisect_right(values: List[float], x: float) -> int:
    from bisect import bisect_right

    return bisect_right(values, x)


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------


def collect_stats(ps: PointSet, bins: int = STATS_BINS) -> PointStats:
    """Collect (or fetch cached) statistics for one :class:`PointSet`.

    Point sets are immutable, so the summary is computed once per object and
    memoised on it; repeated planning of the same batch is free.  Thread-safe
    without a lock: the memo is one attribute assignment of a deterministic
    value, so the worst concurrent interleaving is two threads computing the
    same summary and one (equal) result winning the write.
    """
    cached = getattr(ps, "_cached_stats", None)
    if cached is not None and cached_bins(cached) == bins:
        return cached
    stats = _compute_stats(ps, bins)
    try:
        ps._cached_stats = stats  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - slotted subclasses
        pass
    return stats


def cached_bins(stats: PointStats) -> int:
    """Bin count of a collected summary (bins of the first axis histogram)."""
    if not stats.histograms:
        return STATS_BINS
    return len(stats.histograms[0])


def _compute_stats(ps: PointSet, bins: int) -> PointStats:
    n = len(ps)
    if n == 0:
        return PointStats(count=0, dims=ps.dims, low=(), high=(), histograms=())
    dims = ps.dims
    if HAVE_NUMPY and isinstance(ps, NumpyPointSet):
        arr = ps.array
        low = arr.min(axis=0)
        high = arr.max(axis=0)
        histograms = []
        for axis in range(dims):
            extent = float(high[axis] - low[axis])
            if extent <= 0.0:
                histogram = [0] * bins
                histogram[0] = n
            else:
                slot = _np.clip(
                    ((arr[:, axis] - low[axis]) / extent * bins).astype(_np.int64),
                    0,
                    bins - 1,
                )
                histogram = _np.bincount(slot, minlength=bins).tolist()
            histograms.append(tuple(histogram))
        return PointStats(
            count=n,
            dims=dims,
            low=tuple(low.tolist()),
            high=tuple(high.tolist()),
            histograms=tuple(histograms),
        )
    tuples = ps.to_tuples()
    low_list = list(tuples[0])
    high_list = list(tuples[0])
    for pt in tuples[1:]:
        for axis, c in enumerate(pt):
            if c < low_list[axis]:
                low_list[axis] = c
            elif c > high_list[axis]:
                high_list[axis] = c
    histogram_lists = [[0] * bins for _ in range(dims)]
    extents = [high_list[a] - low_list[a] for a in range(dims)]
    for pt in tuples:
        for axis, c in enumerate(pt):
            if extents[axis] <= 0.0:
                histogram_lists[axis][0] += 1
            else:
                slot = int((c - low_list[axis]) / extents[axis] * bins)
                histogram_lists[axis][min(max(slot, 0), bins - 1)] += 1
    return PointStats(
        count=n,
        dims=dims,
        low=tuple(low_list),
        high=tuple(high_list),
        histograms=tuple(tuple(h) for h in histogram_lists),
    )


def stats_from_columns(
    columns: Sequence[Sequence[float]], bins: int = STATS_BINS
) -> PointStats:
    """Collect statistics directly from per-axis column vectors."""
    if not columns or len(columns[0]) == 0:
        return PointStats(count=0, dims=len(columns), low=(), high=(), histograms=())
    return _compute_stats(PointSet.from_columns(columns), bins)


def synthetic_stats(
    count: int,
    dims: int = 2,
    low: float = 0.0,
    high: float = 1.0,
    bins: int = STATS_BINS,
) -> PointStats:
    """A uniform-occupancy summary for inputs whose data is not yet known.

    The SQL ``EXPLAIN`` path uses this when an SGB/join input is a derived
    relation (no base table to sample): the planner still gets a count and a
    neutral skew of 1.0, it just cannot see histogram structure.
    """
    count = max(0, int(count))
    if count == 0 or dims <= 0:
        return PointStats(count=count, dims=max(dims, 0), low=(), high=(), histograms=())
    base, extra = divmod(count, bins)
    histogram = tuple(base + (1 if b < extra else 0) for b in range(bins))
    return PointStats(
        count=count,
        dims=dims,
        low=tuple([low] * dims),
        high=tuple([high] * dims),
        histograms=tuple([histogram] * dims),
    )


def stats_key(stats: PointStats) -> Tuple[int, int, Tuple[float, ...], Tuple[float, ...]]:
    """A tiny hashable identity of a summary (used by plan caches and tests)."""
    return (stats.count, stats.dims, stats.low, stats.high)
