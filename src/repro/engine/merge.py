"""Merge stage: combine per-shard Union-Find forests into one global forest.

Each worker returns the exported forest of its shard-local grouper, keyed by
shard-local point positions (``0..k``).  The merge relabels those elements
into global input row indices through the shard's index list
(:meth:`UnionFind.merge_from` with a ``translate``), then applies the
halo-band eps-edges that stitch neighbouring shards together.  Canonical
relabelling afterwards makes the output independent of shard count and worker
scheduling: groups are ordered by their smallest member and members ascend,
exactly the order :meth:`SGBAnyGrouper.finalize` produces serially.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.result import canonicalize_groups
from repro.dstruct.union_find import UnionFind

__all__ = ["canonical_groups", "merge_shard_forests"]


def merge_shard_forests(
    n_points: int,
    shard_index_lists: Sequence[Sequence[int]],
    forests: Sequence[Dict[int, int]],
    boundary_edges: Iterable[Tuple[int, int]] = (),
) -> UnionFind:
    """Build the global forest from per-shard forests plus boundary edges.

    ``forests[i]`` maps shard-local positions to shard-local roots;
    ``shard_index_lists[i]`` lifts those positions into global row indices.
    ``boundary_edges`` are global-index eps-edges discovered in the halo
    bands.  Every row in ``range(n_points)`` ends up tracked, so rows whose
    shard put them in a singleton group survive the merge.
    """
    uf = UnionFind()
    uf.add_many(range(n_points))
    for indices, forest in zip(shard_index_lists, forests):
        uf.merge_from(forest, translate=indices.__getitem__)
    uf.union_pairs(boundary_edges)
    return uf


def canonical_groups(uf: UnionFind) -> List[List[int]]:
    """Return the components under the canonical SGB-Any labelling.

    Delegates to the same :func:`canonicalize_groups` helper the serial
    grouper's ``finalize`` uses, so the parallel and serial orderings are
    single-sourced and cannot drift apart.
    """
    return canonicalize_groups(uf.components().values())
