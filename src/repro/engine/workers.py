"""Worker-pool layer: run per-shard SGB-Any grouping in processes.

Shard tasks are ordinary :class:`~repro.core.sgb_any.SGBAnyGrouper` runs fed
with ``add_batch``; what crosses the process boundary is only the picklable
shard payload (a float64 array or tuple list) outbound and the exported
Union-Find forest inbound.  Pools are cached per worker count and reused
across calls — the executor services many small batches in a query workload,
and respawning processes per batch would dominate the runtime.

While the pool works on the shards, the parent process extracts the
halo-band edges (:meth:`PointSet.pairwise_within` over each band) so the
boundary stitching overlaps with the shard grouping instead of following it.

When only one worker is available (or the pool cannot be created — e.g. a
sandbox forbids ``fork``) the same shard/merge pipeline runs serially in
process, and tiny payloads skip sharding entirely; both fallbacks produce
results identical to the parallel path.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult
from repro.engine.merge import canonical_groups, merge_shard_forests
from repro.engine.partition import GridPartition, partition_pointset
from repro.engine.planner import plan_shards

__all__ = [
    "sgb_any_sharded",
    "get_worker_pool",
    "drop_worker_pool",
    "shutdown_worker_pools",
    "begin_shutdown",
    "pool_stats",
]

_POOLS: Dict[int, ProcessPoolExecutor] = {}

#: Set once interpreter shutdown begins: spawning a pool (or submitting to a
#: cached one) after ``atexit`` started tearing the process down raises
#: RuntimeError deep inside concurrent.futures, so late callers — a flushed
#: Database.close() in someone's atexit hook, a cached warm-start replay —
#: get the serial fallback instead.
_SHUTTING_DOWN = False


def get_worker_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    """Return the cached pool for ``workers`` processes, creating it lazily.

    Shared by every sharded consumer (the SGB engine and the similarity-join
    subsystem) so one query workload never spawns two pools of the same size.
    Returns ``None`` when no pool can be created (serial fallback), and
    always ``None`` once interpreter shutdown has begun.
    """
    if _SHUTTING_DOWN:
        return None
    pool = _POOLS.get(workers)
    if pool is None:
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError):  # no fork/spawn available: serial fallback
            return None
        _POOLS[workers] = pool
    return pool


def drop_worker_pool(workers: int) -> None:
    """Discard (and shut down) the cached pool for ``workers`` processes.

    Callers drop a pool after a :class:`BrokenProcessPool` (or an OS refusal
    to spawn) so the next request starts from a clean slate.
    """
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_worker_pools() -> None:
    """Shut down every cached worker pool; safe to call at any time.

    Explicit calls leave the layer usable (the next ``get_worker_pool``
    simply builds a fresh pool); the ``atexit`` hook additionally flips the
    shutdown flag first so nothing respawns workers while the interpreter
    tears down.
    """
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


def begin_shutdown() -> None:
    """Enter the terminal shutting-down state and tear down every pool.

    After this, :func:`get_worker_pool` returns ``None`` forever, so any
    still-running query falls back to its serial path instead of respawning
    worker processes.  This is the drain the server's SIGTERM handler (and
    the ``atexit`` hook) runs — it is process-wide and irreversible, which
    is exactly right for a process that is about to exit and wrong for
    anything else (in-process test servers must not call it).
    """
    global _SHUTTING_DOWN
    _SHUTTING_DOWN = True
    shutdown_worker_pools()


def pool_stats() -> Dict[str, object]:
    """Observable pool-layer state (the server's ``/v1/stats`` surface)."""
    return {
        "pools": sorted(_POOLS),
        "shutting_down": _SHUTTING_DOWN,
    }


atexit.register(begin_shutdown)


def _group_shard(points: Any, eps: float, metric_value: str) -> Dict[int, int]:
    """Worker body: SGB-Any over one shard, returning the exported forest.

    Module-level (not a closure) so it pickles by reference under every
    multiprocessing start method.
    """
    from repro.core.sgb_any import SGBAnyGrouper

    grouper = SGBAnyGrouper(eps=eps, metric=metric_value)
    grouper.add_batch(points)
    return grouper.forest()


def _band_edges(
    partition: GridPartition, eps: float, metric: Metric
) -> Iterator[Tuple[int, int]]:
    """Global-index eps-edges inside every halo band (computed in-process)."""
    for band in partition.bands:
        if len(band.indices) < 2:
            continue
        band_ps = PointSet.from_any(band.points)
        indices = band.indices
        for i, j in band_ps.pairwise_within(eps, metric):
            yield indices[i], indices[j]


def _serial_grouping(ps: PointSet, eps: float, metric: Metric) -> GroupingResult:
    # Drive the grouper directly: going back through sgb_any_grouping would
    # re-resolve the SGB_WORKERS environment default and recurse into the
    # engine when the plan degraded to serial.
    from repro.core.sgb_any import SGBAnyGrouper

    grouper = SGBAnyGrouper(eps=eps, metric=metric)
    grouper.add_batch(ps)
    return grouper.finalize()


def sgb_any_sharded(
    points: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    shards: Optional[int] = None,
) -> GroupingResult:
    """Run SGB-Any over grid shards, in worker processes when available.

    Result-identical to ``sgb_any_grouping(..., batch=True)`` — and to the
    scalar reference path — after the canonical relabelling both apply.
    ``shards`` overrides the planned shard count (used by tests to force the
    partition/merge pipeline regardless of worker availability).
    """
    ps = PointSet.from_any(points)
    metric = resolve_metric(metric)
    eps = PointSet._check_eps(eps)
    plan = plan_shards(len(ps), eps, workers)
    n_shards = shards if shards is not None else plan.shards
    if n_shards < 2:
        return _serial_grouping(ps, eps, metric)
    partition = partition_pointset(ps, eps, n_shards)
    if partition is None or len(partition.shards) < 2:
        return _serial_grouping(ps, eps, metric)

    pool = get_worker_pool(plan.workers) if plan.parallel and plan.workers > 1 else None
    forests: List[Dict[int, int]]
    if pool is not None:
        try:
            futures = [
                pool.submit(_group_shard, shard.points, eps, metric.value)
                for shard in partition.shards
            ]
            # Overlap: stitch the halo bands while the pool grinds the shards.
            edges = list(_band_edges(partition, eps, metric))
            forests = [future.result() for future in futures]
        except (BrokenProcessPool, OSError, RuntimeError):
            # Worker processes spawn lazily at submit(), so "no fork allowed"
            # surfaces here as an OSError (and a shutting-down interpreter as
            # RuntimeError), not at pool construction; a killed worker raises
            # BrokenProcessPool.  Drop the pool and recover serially rather
            # than failing the query.
            drop_worker_pool(plan.workers)
            return _serial_grouping(ps, eps, metric)
    else:
        edges = list(_band_edges(partition, eps, metric))
        forests = [
            _group_shard(shard.points, eps, metric.value)
            for shard in partition.shards
        ]

    uf = merge_shard_forests(
        len(ps),
        [shard.indices for shard in partition.shards],
        forests,
        edges,
    )
    return GroupingResult(
        groups=canonical_groups(uf), eliminated=[], points=ps.to_tuples()
    )
