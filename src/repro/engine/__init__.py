"""Sharded parallel execution engine for the SGB operators.

The eps-grid that :meth:`repro.core.pointset.PointSet.pairwise_within` sweeps
is a spatial decomposition in which only points in neighbouring cells can be
within ``eps`` of each other.  That makes SGB-Any embarrassingly partitionable:

1. :mod:`repro.engine.partition` cuts the input into grid-aligned shards
   along its widest axis, plus one *halo band* (the points in the two
   eps-cells flanking each cut) per internal shard boundary;
2. :mod:`repro.engine.workers` runs per-shard SGB-Any grouping — each worker
   is an ordinary :class:`~repro.core.sgb_any.SGBAnyGrouper` fed with
   ``add_batch`` — in a shared ``ProcessPoolExecutor``, or serially in
   process when only one worker is available;
3. :mod:`repro.engine.merge` relabels the shard-local Union-Find forests into
   the global row-index space, merges them, and applies the halo-band edges,
   yielding exactly the connected components the serial pass computes;
4. :mod:`repro.engine.planner` picks the worker and shard counts from the
   point count, ``eps``, and ``os.cpu_count()``, and resolves the
   ``SGB_WORKERS`` environment default;
5. :mod:`repro.engine.stats` summarises each batch (count, bbox, per-axis
   histograms) so :mod:`repro.engine.cost` — the cost-based physical planner
   — can score serial vs sharded candidates with unit costs measured once
   per machine by :mod:`repro.engine.calibrate`.  The planner engages when
   the caller passes ``workers="auto"`` or no knob at all; numeric worker
   counts force their mode as before.

The result is *bit-identical* to the serial batch path after canonical
relabelling (groups ordered by smallest member, members ascending), which the
randomized equivalence suite enforces — plans are advisory about time only.
"""

from repro.engine.calibrate import CostProfile, calibrate, load_profile
from repro.engine.cost import (
    PhysicalPlan,
    plan_eps_join,
    plan_knn_join,
    plan_sgb_all,
    plan_sgb_any,
    plan_stream_flush,
    planner_delegated,
)
from repro.engine.merge import canonical_groups, merge_shard_forests
from repro.engine.partition import GridPartition, HaloBand, Shard, partition_pointset
from repro.engine.planner import ShardPlan, plan_shards, resolve_workers
from repro.engine.stats import PointStats, collect_stats, synthetic_stats
from repro.engine.workers import (
    drop_worker_pool,
    get_worker_pool,
    shutdown_worker_pools,
    sgb_any_sharded,
)

__all__ = [
    "CostProfile",
    "GridPartition",
    "HaloBand",
    "PhysicalPlan",
    "PointStats",
    "Shard",
    "ShardPlan",
    "calibrate",
    "canonical_groups",
    "collect_stats",
    "load_profile",
    "merge_shard_forests",
    "partition_pointset",
    "plan_eps_join",
    "plan_knn_join",
    "plan_sgb_all",
    "plan_sgb_any",
    "plan_shards",
    "plan_stream_flush",
    "planner_delegated",
    "resolve_workers",
    "synthetic_stats",
    "get_worker_pool",
    "drop_worker_pool",
    "shutdown_worker_pools",
    "sgb_any_sharded",
]
