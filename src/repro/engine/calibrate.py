"""One-shot micro-benchmark calibrating the planner's cost constants.

The cost model in :mod:`repro.engine.cost` prices a candidate plan as a sum
of four machine-dependent unit costs:

``c_point``
    seconds to ingest one point through the eps-grid (hashing, binning);
``c_pair``
    seconds to verify one candidate pair (distance test + union);
``c_task``
    fixed per-shard-task overhead (pickling the closure, scheduling);
``c_ship``
    per-point cost of shipping a payload to a worker process and its
    grouped rows back.

:func:`calibrate` measures the first two by timing the serial grouping
kernel at two eps values on the same synthetic batch (two equations, two
unknowns), and the last two by round-tripping payloads through a real
two-worker pool.  The result persists to a small JSON profile so the
benchmark runs **once per machine**, not once per process: subsequent
sessions load the file.  Set ``SGB_COST_PROFILE`` to relocate the file (the
test suites point it at a tmpdir) or ``SGB_COST_PROFILE=off`` to skip disk
entirely and use the built-in defaults.

The defaults are deliberately conservative (pool overheads priced high), so
an uncalibrated machine errs toward serial execution — wrong mode choices
cost time, never correctness.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

__all__ = ["CostProfile", "DEFAULT_PROFILE", "load_profile", "calibrate", "profile_path"]

_ENV_PROFILE = "SGB_COST_PROFILE"
_PROFILE_VERSION = 1


@dataclass(frozen=True)
class CostProfile:
    """Machine-specific unit costs, in seconds, for the planner's formulas."""

    c_point: float
    c_pair: float
    c_task: float
    c_ship: float
    calibrated: bool = False
    version: int = _PROFILE_VERSION


#: Conservative fallback used until :func:`calibrate` has run on a machine.
#: Derived from a mid-range laptop, with the pool costs rounded *up* so the
#: planner only goes parallel when the win is unambiguous.
DEFAULT_PROFILE = CostProfile(
    c_point=2.0e-6,
    c_pair=1.5e-7,
    c_task=3.0e-3,
    c_ship=1.0e-6,
    calibrated=False,
)

_CACHED: Optional[CostProfile] = None


def profile_path() -> Optional[Path]:
    """Where the calibrated profile lives (None when persistence is off)."""
    configured = os.environ.get(_ENV_PROFILE, "").strip()
    if configured.lower() == "off":
        return None
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "repro" / "cost_profile.json"


def load_profile() -> CostProfile:
    """The active cost profile: cached, else from disk, else the defaults."""
    global _CACHED
    if _CACHED is not None:
        return _CACHED
    path = profile_path()
    if path is not None and path.is_file():
        try:
            raw = json.loads(path.read_text())
            if raw.get("version") == _PROFILE_VERSION:
                _CACHED = CostProfile(
                    c_point=float(raw["c_point"]),
                    c_pair=float(raw["c_pair"]),
                    c_task=float(raw["c_task"]),
                    c_ship=float(raw["c_ship"]),
                    calibrated=bool(raw.get("calibrated", True)),
                )
                return _CACHED
        except (ValueError, KeyError, OSError):
            pass  # corrupt profile: fall through to the defaults
    _CACHED = DEFAULT_PROFILE
    return _CACHED


def reset_profile_cache() -> None:
    """Forget the in-process profile (tests repoint ``SGB_COST_PROFILE``)."""
    global _CACHED
    _CACHED = None


def calibrate(force: bool = False, n: int = 4096, persist: bool = True) -> CostProfile:
    """Measure the four unit costs on this machine and persist them.

    Runs in well under a second at the default ``n``.  With ``force=False``
    an existing calibrated profile (disk or cache) is returned untouched.
    """
    global _CACHED
    if not force:
        existing = load_profile()
        if existing.calibrated:
            return existing

    from repro.core.api import sgb_any
    from repro.core.pointset import PointSet

    rng = _lcg(0xC0FFEE)
    pts = [(next(rng), next(rng)) for _ in range(n)]
    ps = PointSet.from_any(pts)

    # Two timings at sparse and dense eps separate the per-point cost from
    # the per-pair cost: t = c_point*n + c_pair*pairs(eps).
    sparse_eps, dense_eps = 0.004, 0.04
    t_sparse, pairs_sparse = _time_grouping(sgb_any, ps, sparse_eps)
    t_dense, pairs_dense = _time_grouping(sgb_any, ps, dense_eps)
    if pairs_dense > pairs_sparse:
        c_pair = max(1e-9, (t_dense - t_sparse) / (pairs_dense - pairs_sparse))
    else:  # pragma: no cover - pathological RNG
        c_pair = DEFAULT_PROFILE.c_pair
    c_point = max(1e-9, (t_sparse - c_pair * pairs_sparse) / n)

    c_task, c_ship = _measure_pool_costs(ps)

    profile = CostProfile(
        c_point=c_point, c_pair=c_pair, c_task=c_task, c_ship=c_ship, calibrated=True
    )
    if persist:
        path = profile_path()
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(asdict(profile), indent=2) + "\n")
            except OSError:
                pass  # read-only home: keep the in-memory result
    _CACHED = profile
    return profile


def _time_grouping(sgb_any, ps, eps: float):
    """Time one serial scalar grouping and count the pairs it verified."""
    from repro.engine.stats import collect_stats

    start = time.perf_counter()
    sgb_any(ps, eps, batch=True, workers=1)
    elapsed = time.perf_counter() - start
    pairs = collect_stats(ps).estimated_pairs(eps)
    return elapsed, max(pairs, 1.0)


def _measure_pool_costs(ps):
    """Round-trip payloads through a two-worker pool to price task + ship."""
    try:
        from repro.engine.workers import get_worker_pool

        pool = get_worker_pool(2)
        n = len(ps)
        payload = ps.to_tuples()
        # Warm-up (pool spawn is a one-off cost the steady state never pays).
        pool.submit(_identity, ()).result()
        rounds = 4
        start = time.perf_counter()
        for _ in range(rounds):
            pool.submit(_identity, payload).result()
        per_round = (time.perf_counter() - start) / rounds
        start = time.perf_counter()
        for _ in range(rounds):
            pool.submit(_identity, ()).result()
        c_task = max(1e-6, (time.perf_counter() - start) / rounds)
        c_ship = max(1e-9, (per_round - c_task) / max(n, 1))
        return c_task, c_ship
    except Exception:  # pragma: no cover - sandboxed/no-fork environments
        return DEFAULT_PROFILE.c_task, DEFAULT_PROFILE.c_ship


def _identity(payload):
    return len(payload)


def _lcg(seed: int):
    """Tiny deterministic uniform generator (no numpy dependency)."""
    state = seed & 0xFFFFFFFF
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield state / 0x7FFFFFFF
