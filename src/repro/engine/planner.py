"""Shard/worker planning for the sharded SGB engine.

The planner answers two questions: *how many worker processes* (explicit
argument, else the ``SGB_WORKERS`` environment default, else serial) and *how
many shards to cut* (one per worker — the partitioner balances the slab
populations, so more shards than workers only adds merge overhead).

Parallel execution is opt-in: with no explicit ``workers`` and no
``SGB_WORKERS`` in the environment, every plan is serial and the engine stays
out of the way of the paper's per-tuple benchmarks.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InvalidParameterError

__all__ = [
    "ENV_WORKERS",
    "ENV_MIN_POINTS",
    "ShardPlan",
    "plan_shards",
    "resolve_workers",
]

#: Environment default for the worker count (used when ``workers`` is None).
ENV_WORKERS = "SGB_WORKERS"

#: Environment override for the minimum parallel payload size.
ENV_MIN_POINTS = "SGB_PARALLEL_MIN_POINTS"

#: Below this many points the per-process overhead (pickling the shard
#: payloads plus shipping the forests back) outweighs the grouping work, so
#: plans degrade to serial even when workers were requested.
DEFAULT_MIN_POINTS = 64


@dataclass(frozen=True)
class ShardPlan:
    """The execution shape chosen for one SGB batch."""

    workers: int
    shards: int
    parallel: bool
    reason: str


def _parse_positive_int(value: object, what: str) -> int:
    try:
        number = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise InvalidParameterError(f"{what} must be an integer, got {value!r}")
    if number < 0:
        raise InvalidParameterError(f"{what} must not be negative, got {number}")
    return number


def _worker_cap(cpu_count: Optional[int] = None) -> int:
    """Largest worker count the machine sustains without oversubscription.

    Never below 2: a two-process pool must stay viable even on one-core
    boxes, because the forced-parallel CI lane (``SGB_WORKERS=2``) relies on
    the pool really running there to exercise the multiprocess path.
    """
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(2, cores)


def resolve_workers(
    workers: "Optional[int | str]" = None, cpu_count: Optional[int] = None
) -> int:
    """Resolve a worker count: explicit argument > ``SGB_WORKERS`` env > 1.

    ``0`` or ``"auto"`` means "use every available core"
    (``os.cpu_count()``); ``None`` defers to the environment and defaults to
    serial.  Invalid values raise :class:`InvalidParameterError` so
    misconfiguration is loud rather than silently serial.

    Numeric requests larger than the machine (argument or ``SGB_WORKERS``
    alike) are clamped to :func:`_worker_cap` with a :class:`RuntimeWarning`
    — spawning more grouping processes than cores only adds scheduling churn
    and memory pressure, and used to silently oversubscribe the pool.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env is None or not env.strip():
            return 1
        workers = env.strip()
    if isinstance(workers, str) and workers.strip().lower() == "auto":
        workers = 0
    count = _parse_positive_int(workers, "workers")
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if count == 0:
        count = cores
    cap = _worker_cap(cores)
    if count > cap:
        warnings.warn(
            f"workers={count} exceeds this machine's capacity "
            f"(cpu_count={cores}); clamping the pool to {cap}",
            RuntimeWarning,
            stacklevel=2,
        )
        count = cap
    return count


def _min_points() -> int:
    env = os.environ.get(ENV_MIN_POINTS)
    if env is None or not env.strip():
        return DEFAULT_MIN_POINTS
    return _parse_positive_int(env.strip(), ENV_MIN_POINTS)


def plan_shards(
    n_points: int,
    eps: float,
    workers: "Optional[int | str]" = None,
    cpu_count: Optional[int] = None,
) -> ShardPlan:
    """Pick worker and shard counts for a batch of ``n_points`` points.

    The worker count is capped by ``os.cpu_count()`` (more processes than
    cores only adds scheduling churn) and by the number of minimum-size
    shards the batch can sustain; ``eps`` is accepted for signature stability
    (slab feasibility is geometric and re-checked by the partitioner, which
    may still cut fewer shards than planned on degenerate extents).
    """
    env = os.environ.get(ENV_WORKERS, "").strip().lower() if workers is None else ""
    if (
        workers == 0
        or (isinstance(workers, str) and workers.strip().lower() == "auto")
        or (workers is None and env in ("0", "auto"))
    ):
        # "auto" sizes the pool from the machine.
        requested = resolve_workers(workers, cpu_count=cpu_count)
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        usable = max(1, min(requested, cores))
    else:
        # A numeric request — argument or SGB_WORKERS alike — forces the
        # parallel path, but resolve_workers clamps it to the machine's
        # capacity (never below 2, so the forced-on CI job and single-core
        # test boxes still really run the pool).
        usable = resolve_workers(workers, cpu_count=cpu_count)
    if usable <= 1:
        return ShardPlan(workers=1, shards=1, parallel=False, reason="workers<=1")
    floor = _min_points()
    if n_points < floor:
        return ShardPlan(
            workers=1,
            shards=1,
            parallel=False,
            reason=f"payload below {floor} points",
        )
    # Never plan shards so small that the merge dominates the grouping.
    usable = max(2, min(usable, n_points // max(1, floor // 2)))
    return ShardPlan(
        workers=usable,
        shards=usable,
        parallel=True,
        reason=f"{usable} workers over {n_points} points",
    )
