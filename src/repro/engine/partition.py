"""Grid partitioner: cut a :class:`PointSet` into shards plus halo bands.

The partitioner stripes the input along the axis with the widest bounding-box
extent, with every cut placed on an eps-grid line (``cut = k * eps``).  Cut
positions are chosen from the cumulative per-cell histogram so the shards are
balanced, subject to a minimum slab width of two eps-cells.

Correctness argument (why shard-local grouping + halo edges is exact):

* a pair of points within ``eps`` of each other differs by at most ``eps``
  along *every* axis (true for both L2 and LINF), so along the partition
  axis the two eps-cells ``floor(x / eps)`` of the pair differ by at most 1;
* shards are at least two cells wide, so such a pair can straddle at most one
  cut, and the pair's cells are then exactly ``k - 1`` and ``k`` for a cut on
  grid line ``k`` — which is precisely the :class:`HaloBand` of that cut;
* therefore every eps-edge of the input is discovered either inside one shard
  (by the shard-local grouper) or inside one halo band, and the union of both
  edge sets reconstructs the full epsilon-neighbourhood graph.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.pointset import HAVE_NUMPY, NumpyPointSet, PointSet
from repro.exceptions import InvalidParameterError

try:  # optional; the pure-Python payload path covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend
    _np = None

__all__ = [
    "Shard",
    "HaloBand",
    "GridPartition",
    "partition_pointset",
    "take_payload",
    "axis_cells",
]

#: Minimum slab width in eps-cells.  Two cells (= ``2 * eps``) guarantee a
#: within-eps pair can never skip a whole shard, with a full cell of float
#: safety margin on top of the one-cell minimum the analysis needs.
_MIN_SLAB_CELLS = 2


@dataclass(frozen=True)
class Shard:
    """One slab of the partition: global row indices plus their coordinates.

    ``points`` is a picklable payload (an ``(n, d)`` float64 array under the
    NumPy backend, a list of float tuples otherwise) that a worker process
    turns back into a :class:`PointSet` without re-validation cost.
    """

    sid: int
    indices: List[int]
    points: Any


@dataclass(frozen=True)
class HaloBand:
    """The points flanking one internal cut (eps-cells ``k - 1`` and ``k``).

    Every eps-edge straddling the cut has both endpoints in this band, so
    running ``pairwise_within`` over the band recovers all cross-shard edges
    of that boundary (plus some intra-shard duplicates, which the Union-Find
    merge absorbs for free).
    """

    cut_cell: int
    indices: List[int]
    points: Any


@dataclass(frozen=True)
class GridPartition:
    """A complete sharding of one input batch."""

    axis: int
    eps: float
    cut_cells: List[int]
    shards: List[Shard]
    bands: List[HaloBand]

    @property
    def n_points(self) -> int:
        return sum(len(s.indices) for s in self.shards)


def take_payload(ps: PointSet, indices: Sequence[int]) -> Any:
    """Extract a picklable point payload for the given row indices.

    Shared with the similarity-join subsystem, which ships per-shard slices
    of both relations through the same worker pool.
    """
    if HAVE_NUMPY and isinstance(ps, NumpyPointSet):
        return ps.array[_np.asarray(indices, dtype=_np.intp)]
    return [ps.point(i) for i in indices]


def axis_cells(ps: PointSet, axis: int, eps: float) -> List[int]:
    """The eps-grid cell of every point along ``axis`` (``floor(x / eps)``).

    One vectorised pass on the NumPy backend; the similarity-join stitcher
    reuses it instead of re-deriving cells point by point.
    """
    if HAVE_NUMPY and isinstance(ps, NumpyPointSet):
        return _np.floor(ps.array[:, axis] / eps).astype(_np.int64).tolist()
    return [math.floor(ps.point(i)[axis] / eps) for i in range(len(ps))]


def _widest_axis(ps: PointSet) -> int:
    bbox = ps.bbox()
    extents = [hi - lo for lo, hi in zip(bbox.low, bbox.high)]
    return max(range(len(extents)), key=extents.__getitem__)


def _choose_cuts(cells: List[int], n_shards: int) -> List[int]:
    """Pick balanced cut grid-lines from the per-cell population histogram.

    A cut at grid line ``k`` sends cells ``< k`` left and ``>= k`` right.
    Cuts keep :data:`_MIN_SLAB_CELLS` cells of separation from each other and
    from the occupied extent, so every slab is at least ``2 * eps`` wide.
    """
    histogram: Dict[int, int] = {}
    for cell in cells:
        histogram[cell] = histogram.get(cell, 0) + 1
    occupied = sorted(histogram)
    lo_cell, hi_cell = occupied[0], occupied[-1]
    n = len(cells)
    cuts: List[int] = []
    cumulative = 0
    min_next_cut = lo_cell + _MIN_SLAB_CELLS
    for cell in occupied:
        cumulative += histogram[cell]
        if len(cuts) == n_shards - 1:
            break
        target = n * (len(cuts) + 1) / n_shards
        candidate = cell + 1  # cut after this cell
        if cumulative >= target and candidate >= min_next_cut:
            if candidate > hi_cell - _MIN_SLAB_CELLS + 1:
                break  # the trailing slab would be too thin
            cuts.append(candidate)
            min_next_cut = candidate + _MIN_SLAB_CELLS
    return cuts


def partition_pointset(
    ps: PointSet, eps: float, n_shards: int, axis: Optional[int] = None
) -> Optional[GridPartition]:
    """Cut ``ps`` into up to ``n_shards`` slabs along its widest axis.

    Returns ``None`` when no valid cut exists (fewer than two shards'
    worth of occupied eps-cells, e.g. tiny, degenerate, or single-cluster
    inputs) — the caller then falls back to the serial path.
    """
    eps = float(eps)
    if eps <= 0:
        raise InvalidParameterError(f"eps must be positive, got {eps}")
    if n_shards < 2 or len(ps) < 2:
        return None
    if axis is None:
        axis = _widest_axis(ps)
    elif not 0 <= axis < ps.dims:
        raise InvalidParameterError(
            f"partition axis {axis} out of range for {ps.dims}-d points"
        )
    cells = axis_cells(ps, axis, eps)
    cuts = _choose_cuts(cells, n_shards)
    if not cuts:
        return None

    shard_indices: List[List[int]] = [[] for _ in range(len(cuts) + 1)]
    band_indices: List[List[int]] = [[] for _ in cuts]
    for i, cell in enumerate(cells):
        shard_indices[bisect_right(cuts, cell)].append(i)
        # A point belongs to the halo band of cut k iff its cell is k-1 or k.
        # Cuts are >= _MIN_SLAB_CELLS apart, so at most one band matches.
        slot = bisect_right(cuts, cell + 1) - 1
        if 0 <= slot < len(cuts) and cuts[slot] - cell in (0, 1):
            band_indices[slot].append(i)

    shards = [
        Shard(sid=sid, indices=indices, points=take_payload(ps, indices))
        for sid, indices in enumerate(shard_indices)
    ]
    bands = [
        HaloBand(cut_cell=cut, indices=indices, points=take_payload(ps, indices))
        for cut, indices in zip(cuts, band_indices)
    ]
    return GridPartition(axis=axis, eps=eps, cut_cells=cuts, shards=shards, bands=bands)
