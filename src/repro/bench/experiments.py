"""Experiment runners, one per table / figure of the paper's evaluation.

Every runner returns a list of flat dict rows (one per measured point) that
:func:`repro.bench.report.format_series` renders in the layout of the paper's
figure.  The default sizes are laptop-scale — the goal is to reproduce the
*shape* of every result (which method wins, by roughly what factor, how the
curves scale), not the absolute wall-clock numbers of the authors' testbed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import compare, measure
from repro.bench.queries import sgb_queries, standard_queries
from repro.clustering import birch, dbscan, kmeans
from repro.core.api import sgb_all, sgb_any
from repro.core.distance import Metric
from repro.core.pointset import HAVE_NUMPY
from repro.minidb.database import Database
from repro.workloads.checkins import CheckinConfig, checkin_points, generate_checkins
from repro.workloads.synthetic import clustered_points, uniform_points
from repro.workloads.tpch import load_tpch

__all__ = [
    "batch_vs_scalar",
    "cache_warm_vs_cold",
    "parallel_vs_serial",
    "serving_overhead",
    "planner_adaptive",
    "streaming_window",
    "join_vs_allpairs",
    "fused_vs_materialized",
    "knn_parallel",
    "fig9_sgb_all_epsilon",
    "fig9_sgb_any_epsilon",
    "fig10_sgb_all_scale",
    "fig10_sgb_any_scale",
    "fig11_vs_clustering",
    "fig12_overhead",
    "optimizer_rewrites",
    "table1_scaling_exponents",
    "table2_tpch_queries",
]


# ---------------------------------------------------------------------------
# Batched columnar pipeline vs the scalar point-at-a-time reference
# ---------------------------------------------------------------------------


def batch_vs_scalar(
    sizes: Sequence[int] = (10_000, 25_000),
    eps: float = 0.3,
    strategy: str = "index",
    metric: "Metric | str" = Metric.L2,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Runtime of ``add_batch`` vs per-point ``add`` for both SGB operators.

    Both paths produce identical groupings (enforced by the parity tests);
    the rows carry a ``speedup`` column relative to the scalar path so the
    benchmark JSON shows the batch win directly.
    """
    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = clustered_points(
            n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        operators = {
            # workers=1 pins the in-process batch pipeline: this experiment
            # measures batch-vs-scalar, so an SGB_WORKERS environment default
            # must not reroute the "batch" measurement through the sharded
            # engine (parallel_vs_serial owns that comparison).
            "SGB-Any": lambda batch: sgb_any(
                points, eps=eps, metric=metric, strategy=strategy, batch=batch, workers=1
            ),
            # planner=False pins SGB-All the same way: the cost planner may
            # not reroute the "batch" arm through its scalar candidate.
            "SGB-All": lambda batch: sgb_all(
                points, eps=eps, metric=metric, strategy=strategy, batch=batch,
                planner=False,
            ),
        }
        for operator, run in operators.items():
            for m in compare(
                {
                    "scalar": lambda run=run: run(False),
                    "batch": lambda run=run: run(True),
                },
                baseline="scalar",
            ):
                rows.append(
                    {
                        "experiment": "batch-vs-scalar",
                        "operator": operator,
                        "path": m.label,
                        "n": n,
                        "eps": eps,
                        "strategy": strategy,
                        "backend": "numpy" if HAVE_NUMPY else "python",
                        "groups": m.value.group_count,
                        "seconds": m.seconds,
                        "speedup": m.params.get("speedup"),
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Tiered result cache: cold compute vs warm replay
# ---------------------------------------------------------------------------


def cache_warm_vs_cold(
    sizes: Sequence[int] = (10_000, 25_000),
    eps: float = 0.3,
    metric: "Metric | str" = Metric.L2,
    seed: int = 23,
) -> List[Dict[str, object]]:
    """Cold compute vs warm cache replay for SGB-Any and the eps-join.

    Each size runs the operator twice against a fresh in-memory
    :class:`repro.storage.ResultCache`: the first (cold) run computes and
    stores, the second (warm) run replays the stored result.  Rows carry the
    warm speedup and an ``identical`` flag confirming the replay was
    bit-identical — the cache is a pure memoisation, never an approximation.
    """
    from repro.core.api import sim_join
    from repro.storage import ResultCache

    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = clustered_points(
            n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        half = clustered_points(
            max(2, n // 2), clusters=max(10, n // 500), spread=0.005,
            low=0.0, high=100.0, seed=seed + 1,
        )
        runners = {
            # workers=1 pins the serial batch pipeline so cold timings are
            # stable; the cache key ignores worker counts anyway.
            "SGB-Any": lambda cache: sgb_any(
                points, eps=eps, metric=metric, cache=cache, workers=1
            ),
            "eps-join": lambda cache: sim_join(
                points, half, eps=eps, metric=metric, cache=cache, workers=1
            ),
        }
        for operator, run in runners.items():
            cache = ResultCache.memory()
            cold = measure(lambda run=run, cache=cache: run(cache))
            warm = measure(lambda run=run, cache=cache: run(cache))
            if operator == "SGB-Any":
                identical = (
                    cold.value.groups == warm.value.groups
                    and cold.value.eliminated == warm.value.eliminated
                )
            else:
                identical = list(cold.value) == list(warm.value)
            for phase, m in (("cold", cold), ("warm", warm)):
                rows.append(
                    {
                        "experiment": "cache-warm-vs-cold",
                        "operator": operator,
                        "phase": phase,
                        "n": n,
                        "eps": eps,
                        "backend": "numpy" if HAVE_NUMPY else "python",
                        "seconds": m.seconds,
                        "speedup": (
                            round(cold.seconds / warm.seconds, 2)
                            if phase == "warm" and warm.seconds
                            else None
                        ),
                        "cache_hits": cache.hits,
                        "identical": identical,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# HTTP serving overhead vs the in-process call
# ---------------------------------------------------------------------------


def serving_overhead(
    sizes: Sequence[int] = (2_000, 5_000),
    eps: float = 0.3,
    requests_per_client: int = 4,
    concurrencies: Sequence[int] = (1, 8),
    seed: int = 5,
) -> List[Dict[str, object]]:
    """HTTP request latency vs the in-process call, at 1 and N clients.

    Boots the :mod:`repro.server` service in-process (ephemeral port) and
    runs the same SGB-Any batch through ``POST /v1/sgb`` — once with a single
    sequential client and once with ``N`` concurrent clients (one keep-alive
    connection per thread, the client contract).  Rows carry the mean
    per-request latency, the aggregate throughput, the overhead factor
    against the bare :func:`repro.sgb_any` call, and an ``identical`` flag:
    every HTTP response decoded back equal to the in-process payload.

    The result cache is pinned off on both sides (``cache=False``): with a
    warm cache the repeated requests would measure a cache probe instead of
    the grouping, and cached results drop the advisory ``plan``, breaking
    the bit-identity comparison.
    """
    import json
    import threading
    import time as _time

    from repro.server.jsonio import grouping_result_payload
    from repro.server.testing import running_server

    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = [
            list(p)
            for p in clustered_points(
                n, clusters=max(10, n // 200), spread=0.01, seed=seed
            )
        ]
        # workers=1 pins the serial batch pipeline on both sides, so the
        # measured gap is transport + JSON, not a scheduling difference.
        in_process = measure(
            lambda: sgb_any(points, eps=eps, workers=1, cache=False), repeat=2
        )
        expected = json.loads(
            json.dumps(grouping_result_payload(in_process.value))
        )
        with running_server(cache=False) as server:
            for clients in concurrencies:
                latencies: List[float] = []
                mismatches: List[int] = []
                lock = threading.Lock()

                def worker() -> None:
                    client = server.client()
                    try:
                        for _ in range(requests_per_client):
                            start = _time.perf_counter()
                            got = client.sgb(points, eps, kind="any", workers=1)
                            elapsed = _time.perf_counter() - start
                            with lock:
                                latencies.append(elapsed)
                                if got != expected:
                                    mismatches.append(1)
                    finally:
                        client.close()

                wall_start = _time.perf_counter()
                threads = [
                    threading.Thread(target=worker) for _ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = _time.perf_counter() - wall_start
                total = clients * requests_per_client
                mean_latency = sum(latencies) / len(latencies)
                rows.append(
                    {
                        "experiment": "serving-overhead",
                        "n": n,
                        "eps": eps,
                        "clients": clients,
                        "requests": total,
                        "backend": "numpy" if HAVE_NUMPY else "python",
                        "in_process_s": in_process.seconds,
                        "mean_request_s": round(mean_latency, 6),
                        "throughput_rps": round(total / wall, 2) if wall else None,
                        "overhead_factor": (
                            round(mean_latency / in_process.seconds, 2)
                            if in_process.seconds
                            else None
                        ),
                        "identical": not mismatches,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Sharded parallel engine vs the serial batch pipeline
# ---------------------------------------------------------------------------


def parallel_vs_serial(
    sizes: Sequence[int] = (10_000, 50_000),
    eps: float = 0.3,
    worker_counts: Sequence[int] = (2, 4),
    metric: "Metric | str" = Metric.L2,
    seed: int = 17,
) -> List[Dict[str, object]]:
    """Runtime of sharded parallel SGB-Any vs the serial batch path.

    Both paths return identical group assignments (enforced by the
    equivalence suite); the serial batch run is the pinned baseline, so the
    ``speedup`` column reports the worker-pool win directly.  On boxes with
    fewer cores than workers the "speedup" degrades towards (or below) 1.0 —
    the rows carry ``cpu_count`` so the report can say why.
    """
    import os

    rows: List[Dict[str, object]] = []
    cpu_count = os.cpu_count() or 1
    for n in sizes:
        points = clustered_points(
            n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        runs = {"serial": lambda: sgb_any(points, eps=eps, metric=metric, workers=1)}
        for w in worker_counts:
            runs[f"workers={w}"] = lambda w=w: sgb_any(
                points, eps=eps, metric=metric, workers=w
            )
        for m in compare(runs, baseline="serial"):
            rows.append(
                {
                    "experiment": "parallel-vs-serial",
                    "operator": "SGB-Any",
                    "path": m.label,
                    "n": n,
                    "eps": eps,
                    "cpu_count": cpu_count,
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "groups": m.value.group_count,
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Cost planner: adaptive mode/fan-out choice vs forced decompositions
# ---------------------------------------------------------------------------


def _skewed_points(
    n: int, low: float = 0.0, high: float = 100.0, hot_fraction: float = 0.7, seed: int = 47
) -> List[tuple]:
    """Uniform background plus a hot gaussian slab spanning a few eps-cells."""
    rng = random.Random(seed)
    span = high - low
    centre = low + span / 2.0
    points = []
    for _ in range(n):
        if rng.random() < hot_fraction:
            x = min(high, max(low, rng.gauss(centre, span * 0.03)))
            points.append((x, low + rng.random() * span))
        else:
            points.append((low + rng.random() * span, low + rng.random() * span))
    return points


def planner_adaptive(
    sizes: Sequence[int] = (10_000, 30_000),
    eps: float = 0.3,
    workers: int = 4,
    metric: "Metric | str" = Metric.L2,
    seed: int = 47,
) -> List[Dict[str, object]]:
    """Planner-chosen execution vs forced decompositions on uniform/skewed data.

    Three arms per workload: the serial batch baseline (``workers=1``), the
    legacy one-slab-per-worker decomposition (sharded engine forced to
    ``shards == workers``), and the delegated ``workers="auto"`` path where
    the cost planner picks mode, worker count, and shard fan-out from the
    cached statistics.  The baseline for the ``speedup`` column is
    one-slab-per-worker, so the auto row reports the adaptive-fan-out gain
    directly: on skewed inputs the planner's over-decomposition (fan-out >
    workers) should win, on uniform inputs the arms should be close.  Rows
    carry ``plan`` (the auto arm's chosen plan) and ``cpu_count`` — on boxes
    with fewer cores than ``workers`` the ratios degrade towards 1.0 and the
    report can say why.
    """
    import os

    from repro.engine import sgb_any_sharded

    rows: List[Dict[str, object]] = []
    cpu_count = os.cpu_count() or 1
    workloads = {
        "uniform": lambda n: uniform_points(n, low=0.0, high=100.0, seed=seed),
        "skewed": lambda n: _skewed_points(n, low=0.0, high=100.0, seed=seed),
    }
    naive = f"one-slab-per-worker ({workers}w)"
    for workload, make in workloads.items():
        for n in sizes:
            points = make(n)
            runs = {
                naive: lambda: sgb_any_sharded(
                    points, eps=eps, metric=metric, workers=workers, shards=workers
                ),
                "serial": lambda: sgb_any(points, eps=eps, metric=metric, workers=1),
                "auto (planner)": lambda: sgb_any(
                    points, eps=eps, metric=metric, workers="auto"
                ),
            }
            for m in compare(runs, baseline=naive):
                plan = getattr(m.value, "plan", None)
                rows.append(
                    {
                        "experiment": "planner-adaptive",
                        "workload": workload,
                        "path": m.label,
                        "n": n,
                        "eps": eps,
                        "cpu_count": cpu_count,
                        "backend": "numpy" if HAVE_NUMPY else "python",
                        "groups": m.value.group_count,
                        "seconds": m.seconds,
                        "speedup": m.params.get("speedup"),
                        "plan": plan.describe() if plan is not None else None,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Streaming windows: incremental flushes vs full re-grouping per window
# ---------------------------------------------------------------------------


def streaming_window(
    sizes: Sequence[int] = (10_000, 25_000),
    window: int = 10_000,
    slide: int = 1_250,
    eps: float = 0.3,
    metric: "Metric | str" = Metric.L2,
    seed: int = 31,
) -> List[Dict[str, object]]:
    """Runtime of the windowed incremental stream vs re-grouping every window.

    The incremental path (``repro.stream``) discovers each eps-edge once and
    repairs the forest on eviction; the baseline re-runs the full batch
    ``sgb_any`` over the window's live points at every slide, which is what a
    system without streaming support would have to do.  Both produce
    bit-identical per-window groupings (enforced by the equivalence suite);
    the advantage grows with the window/slide ratio since the baseline
    re-processes every point ``window / slide`` times.
    """
    from repro.stream.session import StreamingSGB

    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = clustered_points(
            n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        # Clamp to the stream size while keeping the whole-epoch invariant
        # (the window must stay a multiple of the slide).
        w = min(window, n)
        s = min(slide, w)
        w -= w % s

        def incremental() -> int:
            session = StreamingSGB(eps, metric=metric, window=w, slide=s, workers=1)
            flushes = session.ingest(points)
            flushes.extend(session.close())
            return len(flushes)

        def full_regroup() -> int:
            # Same flush boundaries as the session: every full epoch plus the
            # trailing partial one the incremental path flushes on close().
            ends = list(range(s, n + 1, s))
            if n % s:
                ends.append(n)
            for end in ends:
                sgb_any(points[max(0, end - w) : end], eps=eps, metric=metric, workers=1)
            return len(ends)

        for m in compare(
            {"full-regroup": full_regroup, "incremental": incremental},
            baseline="full-regroup",
        ):
            rows.append(
                {
                    "experiment": "streaming-window",
                    "path": m.label,
                    "n": n,
                    "window": w,
                    "slide": s,
                    "eps": eps,
                    "flushes": m.value,
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Grid eps-join vs the all-pairs nested-loop baseline
# ---------------------------------------------------------------------------


def join_vs_allpairs(
    sizes: Sequence[int] = (10_000, 25_000),
    eps: float = 0.3,
    metric: "Metric | str" = Metric.L2,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Runtime of the eps-grid similarity join vs the all-pairs baseline.

    Each size is the *total* point count, split evenly between two clustered
    relations with distinct layouts.  Both paths return the identical sorted
    pair list (enforced by the equivalence suite); the all-pairs run is the
    pinned baseline, so the ``speedup`` column reports the grid pruning win
    directly.  ``workers=1`` pins the in-process grid join — the sharded
    path is the engine's story (``parallel_vs_serial``), not this one's.
    """
    from repro.join import eps_join, eps_join_allpairs

    rows: List[Dict[str, object]] = []
    for n in sizes:
        half = n // 2
        left = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        right = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0,
            seed=seed + 1,
        )
        for m in compare(
            {
                "all-pairs": lambda left=left, right=right: eps_join_allpairs(
                    left, right, eps, metric=metric
                ),
                "grid": lambda left=left, right=right: eps_join(
                    left, right, eps, metric=metric, workers=1
                ),
            },
            baseline="all-pairs",
        ):
            rows.append(
                {
                    "experiment": "join-vs-allpairs",
                    "path": m.label,
                    "n": n,
                    "n_left": half,
                    "n_right": half,
                    "eps": eps,
                    "pairs": len(m.value),
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fused join→group pipeline vs materialize-then-group
# ---------------------------------------------------------------------------


def fused_vs_materialized(
    sizes: Sequence[int] = (10_000, 25_000),
    eps: float = 0.3,
    group_eps: float = 0.5,
    metric: "Metric | str" = Metric.L2,
    seed: int = 23,
) -> List[Dict[str, object]]:
    """Runtime of the fused eps-join→SGB-Any pipeline vs the two-step path.

    The baseline materialises the matched side of every join pair and then
    groups that pair-point relation with ``sgb_any``; the fused path groups
    only the *distinct* matched points and expands the components over the
    pair positions afterwards.  Both produce identical canonical groupings
    (enforced by the equivalence suite), so the ``speedup`` column reports
    the dedup win — it grows with the pair/point fan-out.
    """
    from repro.core.pointset import PointSet
    from repro.join import eps_join, fused_join_group

    rows: List[Dict[str, object]] = []
    for n in sizes:
        half = n // 2
        left = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        right = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0,
            seed=seed + 1,
        )
        right_ps = PointSet.from_any(right)

        def materialized() -> int:
            pairs = eps_join(left, right, eps, metric=metric, workers=1)
            pair_points = [right_ps.point(j) for _, j in pairs]
            if not pair_points:
                return 0
            return sgb_any(pair_points, eps=group_eps, metric=metric, workers=1).group_count

        def fused() -> int:
            result = fused_join_group(
                left, right, group_eps, eps=eps, metric=metric, workers=1
            )
            return len(result.grouping.groups)

        for m in compare(
            {"materialized": materialized, "fused": fused}, baseline="materialized"
        ):
            rows.append(
                {
                    "experiment": "fused-vs-materialized",
                    "path": m.label,
                    "n": n,
                    "eps": eps,
                    "group_eps": group_eps,
                    "groups": m.value,
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Sharded parallel kNN-join vs the serial expanding-probe join
# ---------------------------------------------------------------------------


def knn_parallel(
    sizes: Sequence[int] = (10_000, 25_000),
    k: int = 4,
    worker_counts: Sequence[int] = (2, 4),
    metric: "Metric | str" = Metric.L2,
    seed: int = 29,
) -> List[Dict[str, object]]:
    """Runtime of the sharded kNN-join vs the serial expanding-probe join.

    Each size is the total point count, split evenly between the two
    relations.  The sharded path partitions the *left* relation and ships
    the whole right side to every worker — ``rebuild`` mode lets each worker
    bulk-load its own R-tree, ``ship-index`` pickles the coordinator's tree
    into the task payload.  All paths return the identical sorted pair list
    (enforced by the equivalence suite).  Rows carry ``cpu_count`` so the
    report can explain sub-linear speedups on small boxes.
    """
    import os

    from repro.join import knn_join, knn_join_sharded

    rows: List[Dict[str, object]] = []
    cpu_count = os.cpu_count() or 1
    for n in sizes:
        half = n // 2
        left = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0, seed=seed
        )
        right = clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0,
            seed=seed + 1,
        )
        runs = {
            "serial": lambda: knn_join(left, right, k, metric=metric, workers=1)
        }
        for w in worker_counts:
            runs[f"workers={w}/rebuild"] = lambda w=w: knn_join_sharded(
                left, right, k, metric=metric, workers=w, ship_index=False
            )
            runs[f"workers={w}/ship-index"] = lambda w=w: knn_join_sharded(
                left, right, k, metric=metric, workers=w, ship_index=True
            )
        for m in compare(runs, baseline="serial"):
            rows.append(
                {
                    "experiment": "knn-parallel",
                    "path": m.label,
                    "n": n,
                    "n_left": half,
                    "n_right": half,
                    "k": k,
                    "cpu_count": cpu_count,
                    "pairs": len(m.value),
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 9: effect of the similarity threshold epsilon
# ---------------------------------------------------------------------------


def fig9_sgb_all_epsilon(
    on_overlap: str = "JOIN-ANY",
    n: int = 2_000,
    eps_values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    strategies: Sequence[str] = ("all-pairs", "bounds-checking", "index"),
    metric: "Metric | str" = Metric.L2,
    seed: int = 3,
) -> List[Dict[str, object]]:
    """Figure 9a–c: SGB-All runtime vs. epsilon for every strategy."""
    points = clustered_points(n, clusters=20, spread=0.005, low=0.0, high=100.0, seed=seed)
    rows: List[Dict[str, object]] = []
    for eps in eps_values:
        for strategy in strategies:
            # batch=False: this figure ablates the paper's per-tuple candidate
            # discovery strategies; the batch frontier path replaces exactly
            # that discovery, so it would flatten the strategy differences.
            m = measure(
                lambda e=eps, s=strategy: sgb_all(
                    points, eps=e, metric=metric, on_overlap=on_overlap,
                    strategy=s, batch=False,
                ),
                label=f"sgb-all/{on_overlap}",
            )
            rows.append(
                {
                    "figure": "9",
                    "operator": "SGB-All",
                    "on_overlap": on_overlap,
                    "eps": eps,
                    "strategy": strategy,
                    "n": n,
                    "groups": m.value.group_count,
                    "seconds": m.seconds,
                }
            )
    return rows


def fig9_sgb_any_epsilon(
    n: int = 2_000,
    eps_values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    strategies: Sequence[str] = ("all-pairs", "index"),
    metric: "Metric | str" = Metric.L2,
    seed: int = 3,
) -> List[Dict[str, object]]:
    """Figure 9d: SGB-Any runtime vs. epsilon (All-Pairs vs Index)."""
    points = clustered_points(n, clusters=20, spread=0.005, low=0.0, high=100.0, seed=seed)
    rows: List[Dict[str, object]] = []
    for eps in eps_values:
        for strategy in strategies:
            # batch=False: this figure compares the paper's per-tuple
            # algorithms; the batched pipeline bypasses both of them.
            m = measure(
                lambda e=eps, s=strategy: sgb_any(
                    points, eps=e, metric=metric, strategy=s, batch=False
                ),
                label="sgb-any",
            )
            rows.append(
                {
                    "figure": "9d",
                    "operator": "SGB-Any",
                    "eps": eps,
                    "strategy": strategy,
                    "n": n,
                    "groups": m.value.group_count,
                    "seconds": m.seconds,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 10: effect of the data size
# ---------------------------------------------------------------------------


def fig10_sgb_all_scale(
    on_overlap: str = "JOIN-ANY",
    sizes: Sequence[int] = (500, 1_000, 2_000, 4_000),
    eps: float = 0.2,
    strategies: Sequence[str] = ("bounds-checking", "index"),
    metric: "Metric | str" = Metric.L2,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """Figure 10a–c: SGB-All runtime vs. input size (Bounds-Checking vs Index)."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = clustered_points(n, clusters=25, spread=0.005, low=0.0, high=100.0, seed=seed)
        for strategy in strategies:
            # batch=False: same strategy-ablation pin as fig9_sgb_all_epsilon.
            m = measure(
                lambda p=points, s=strategy: sgb_all(
                    p, eps=eps, metric=metric, on_overlap=on_overlap,
                    strategy=s, batch=False,
                ),
                label=f"sgb-all/{on_overlap}",
            )
            rows.append(
                {
                    "figure": "10",
                    "operator": "SGB-All",
                    "on_overlap": on_overlap,
                    "n": n,
                    "eps": eps,
                    "strategy": strategy,
                    "groups": m.value.group_count,
                    "seconds": m.seconds,
                }
            )
    return rows


def fig10_sgb_any_scale(
    sizes: Sequence[int] = (500, 1_000, 2_000, 4_000),
    eps: float = 0.2,
    strategies: Sequence[str] = ("all-pairs", "index"),
    metric: "Metric | str" = Metric.L2,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """Figure 10d: SGB-Any runtime vs. input size (All-Pairs vs Index)."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        points = clustered_points(n, clusters=25, spread=0.005, low=0.0, high=100.0, seed=seed)
        for strategy in strategies:
            # batch=False: the scaling comparison is between the paper's
            # per-tuple algorithms (see fig9_sgb_any_epsilon).
            m = measure(
                lambda p=points, s=strategy: sgb_any(
                    p, eps=eps, metric=metric, strategy=s, batch=False
                ),
                label="sgb-any",
            )
            rows.append(
                {
                    "figure": "10d",
                    "operator": "SGB-Any",
                    "n": n,
                    "eps": eps,
                    "strategy": strategy,
                    "groups": m.value.group_count,
                    "seconds": m.seconds,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 11: SGB vs standalone clustering algorithms
# ---------------------------------------------------------------------------


def fig11_vs_clustering(
    sizes: Sequence[int] = (1_000, 2_000, 4_000),
    eps: float = 0.2,
    dataset: str = "brightkite",
    seed: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Figure 11: runtimes of the SGB variants vs DBSCAN, BIRCH, and K-means.

    ``dataset`` selects the synthetic stand-in ("brightkite" or "gowalla" —
    the two differ only in seed / hotspot structure, matching the role the two
    real datasets play in the paper).  Points are raw (latitude, longitude)
    degrees and ``eps`` is an absolute distance in degrees, as in the paper.
    """
    base_seed = seed if seed is not None else (11 if dataset == "brightkite" else 23)
    hotspots = 25 if dataset == "brightkite" else 40
    rows: List[Dict[str, object]] = []
    for n in sizes:
        config = CheckinConfig(
            n_checkins=n, n_users=max(50, n // 10), hotspots=hotspots, seed=base_seed
        )
        # Raw latitude/longitude degrees, as in the paper: eps is an absolute
        # distance in degrees, so the similarity threshold is selective.
        points = checkin_points(generate_checkins(config))

        # batch=False on every SGB line: like the other figure runners, this
        # reproduces the paper's per-tuple operators; the batched pipelines
        # have their own comparison (batch_vs_scalar).
        competitors = {
            "DBSCAN": lambda: dbscan(points, eps=eps, min_pts=4),
            "BIRCH": lambda: birch(points, threshold=eps / 2),
            "K-means(20)": lambda: kmeans(points, k=20),
            "K-means(40)": lambda: kmeans(points, k=40),
            "SGB-All-Join-Any": lambda: sgb_all(
                points, eps=eps, on_overlap="JOIN-ANY", batch=False
            ),
            "SGB-All-Eliminate": lambda: sgb_all(
                points, eps=eps, on_overlap="ELIMINATE", batch=False
            ),
            "SGB-All-Form-New": lambda: sgb_all(
                points, eps=eps, on_overlap="FORM-NEW-GROUP", batch=False
            ),
            "SGB-Any": lambda: sgb_any(points, eps=eps, batch=False),
        }
        for name, fn in competitors.items():
            m = measure(fn, label=name)
            rows.append(
                {
                    "figure": "11",
                    "dataset": dataset,
                    "n": n,
                    "algorithm": name,
                    "seconds": m.seconds,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 12 + Table 2: SQL-level experiments on TPC-H
# ---------------------------------------------------------------------------


def _tpch_database(scale_factor: float, strategy: str = "index") -> Database:
    # sgb_workers=1: the Table 2 / Figure 12 runners reproduce the paper's
    # serial operator costs, so an SGB_WORKERS environment default must not
    # switch their SGB-Any plans onto the sharded engine.  optimizer=False
    # pins the logical plans the same way: the figure/table runners measure
    # the reference plans, and the rewrite layer (optimizer_rewrites owns
    # that comparison) may not re-place filters or reorder joins under them.
    db = Database(sgb_strategy=strategy, sgb_workers=1, optimizer=False)
    load_tpch(db, scale_factor=scale_factor)
    return db


def table2_tpch_queries(
    scale_factor: float = 0.002,
    eps_power: float = 500.0,
    eps_profit: float = 5000.0,
    overlap: str = "JOIN-ANY",
    strategy: str = "index",
) -> List[Dict[str, object]]:
    """Table 2: run every GB / SGB evaluation query and report runtime and rows."""
    db = _tpch_database(scale_factor, strategy)
    rows: List[Dict[str, object]] = []
    queries = dict(standard_queries())
    queries.update(sgb_queries(eps_power=eps_power, eps_profit=eps_profit, overlap=overlap))
    for name, sql in queries.items():
        m = measure(lambda q=sql: db.execute(q), label=name)
        rows.append(
            {
                "table": "2",
                "query": name,
                "scale_factor": scale_factor,
                "output_rows": len(m.value.rows),
                "seconds": m.seconds,
            }
        )
    return rows


def fig12_overhead(
    scale_factors: Sequence[float] = (0.001, 0.002, 0.004),
    eps_profit: float = 5000.0,
    strategy: str = "index",
) -> List[Dict[str, object]]:
    """Figure 12: overhead of SGB queries relative to the standard GROUP BY.

    Panel (a) compares GB2 with SGB3 (all three overlap variants) and SGB4;
    panel (b) compares GB3 with SGB5 (JOIN-ANY) and SGB6, mirroring the paper.
    """
    from repro.bench.queries import GB2, GB3, sgb3, sgb4, sgb5, sgb6

    rows: List[Dict[str, object]] = []
    for sf in scale_factors:
        db = _tpch_database(sf, strategy)
        panel_a = {
            "GB2": GB2,
            "SGB3-JOIN-ANY": sgb3(eps_profit, overlap="JOIN-ANY"),
            "SGB3-ELIMINATE": sgb3(eps_profit, overlap="ELIMINATE"),
            "SGB3-FORM-NEW": sgb3(eps_profit, overlap="FORM-NEW-GROUP"),
            "SGB4": sgb4(eps_profit),
        }
        panel_b = {
            "GB3": GB3,
            "SGB5-JOIN-ANY": sgb5(eps_profit, overlap="JOIN-ANY"),
            "SGB6": sgb6(eps_profit),
        }
        for panel, queries in (("a", panel_a), ("b", panel_b)):
            baseline_seconds: Optional[float] = None
            for name, sql in queries.items():
                m = measure(lambda q=sql: db.execute(q), label=name)
                if name.startswith("GB"):
                    baseline_seconds = m.seconds
                overhead = (
                    (m.seconds / baseline_seconds - 1.0) * 100.0
                    if baseline_seconds
                    else 0.0
                )
                rows.append(
                    {
                        "figure": "12",
                        "panel": panel,
                        "scale_factor": sf,
                        "query": name,
                        "output_rows": len(m.value.rows),
                        "seconds": m.seconds,
                        "overhead_pct": round(overhead, 1),
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Cost-driven rewrite layer: optimized vs reference logical plans
# ---------------------------------------------------------------------------


def _optimizer_tables(db: Database, n: int, seed: int) -> None:
    rng = random.Random(seed)
    db.execute("CREATE TABLE pa (x FLOAT, y FLOAT)")
    db.execute("CREATE TABLE pb (x FLOAT, y FLOAT)")
    db.insert_rows(
        "pa", [(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for _ in range(n)]
    )
    db.insert_rows(
        "pb", [(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for _ in range(n)]
    )
    db.execute("CREATE TABLE r1 (k INT, v FLOAT)")
    db.execute("CREATE TABLE r2 (k INT, j INT)")
    db.execute("CREATE TABLE r3 (j INT, w FLOAT)")
    m = max(200, n // 2)
    db.insert_rows("r1", [(i % 10, float(i)) for i in range(m)])
    db.insert_rows("r2", [(i % 10, i) for i in range(m)])
    db.insert_rows("r3", [(j, float(j) * 0.5) for j in range(20)])


def _optimizer_queries(eps: float) -> Dict[str, str]:
    # Workload 1: a selective predicate over a derived similarity join —
    # the push-down rule sinks it through the derived table into the
    # eps-join's left input, shrinking the pair enumeration itself.
    filtered_sim = (
        "SELECT d.ax, d.ay, d.bx FROM "
        "(SELECT a.x AS ax, a.y AS ay, b.x AS bx FROM pa AS a "
        f"SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN {eps}) AS d "
        "WHERE d.ax < 5.0"
    )
    # Workload 2: a 3-relation chain written worst-first — r1 >< r2 explodes
    # (both keys take 10 values), while r2 >< r3 is tiny.  The reorder rule
    # moves r3 forward using histogram-overlap selectivities.
    join_chain = (
        "SELECT r1.v, r3.w FROM r1, r2, r3 "
        "WHERE r1.k = r2.k AND r2.j = r3.j"
    )
    return {"filtered-sim-join": filtered_sim, "join-reorder": join_chain}


def optimizer_rewrites(
    n: int = 5_000,
    eps: float = 3.0,
    seed: int = 47,
) -> List[Dict[str, object]]:
    """Rewrite-layer speedups: optimized plans vs ``SGB_OPTIMIZER=off``.

    Two workloads, each run through a database with the optimizer on and an
    identically loaded one with ``optimizer=False``: a selective filter over
    a derived similarity join (filter push-down) and a 3-relation join chain
    written in the worst order (join reordering).  Both arms must return
    bit-identical rows — the runner re-checks the equivalence contract on
    every measured query and records the applied rewrite trace.
    """
    optimized = Database(optimizer=True)
    reference = Database(optimizer=False)
    for db in (optimized, reference):
        _optimizer_tables(db, n, seed)
    rows: List[Dict[str, object]] = []
    for name, sql in _optimizer_queries(eps).items():
        results: Dict[str, object] = {}

        def run(db: Database, store: str):
            result = db.execute(sql)
            results[store] = result
            return result

        measurements = compare(
            {
                "optimized": lambda: run(optimized, "optimized"),
                "reference": lambda: run(reference, "reference"),
            },
            baseline="reference",
        )
        opt, ref = results["optimized"], results["reference"]
        if opt.rows != ref.rows:
            raise AssertionError(
                f"optimizer changed the output of {name!r}: "
                f"{len(opt.rows)} vs {len(ref.rows)} rows"
            )
        for m in measurements:
            rewrites = list(opt.rewrites) if m.label == "optimized" else []
            rows.append(
                {
                    "experiment": "optimizer-rewrites",
                    "workload": name,
                    "arm": m.label,
                    "n": n,
                    "eps": eps,
                    "backend": "numpy" if HAVE_NUMPY else "python",
                    "output_rows": len(m.value.rows),
                    "bit_identical": True,
                    "rewrites": rewrites,
                    "seconds": m.seconds,
                    "speedup": m.params.get("speedup"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 1: empirical scaling exponents
# ---------------------------------------------------------------------------


def table1_scaling_exponents(
    sizes: Sequence[int] = (500, 1_000, 2_000),
    eps: float = 0.15,
    on_overlap: str = "JOIN-ANY",
    metric: "Metric | str" = Metric.LINF,
    seed: int = 9,
) -> List[Dict[str, object]]:
    """Table 1: fit the empirical growth exponent of every SGB-All strategy.

    The paper's Table 1 is analytical (O(n^2) for All-Pairs, O(n |G|) for
    Bounds-Checking, O(n log |G|) for the on-the-fly index).  This runner
    measures the runtime at increasing input sizes and reports the fitted
    log-log slope, which should be close to 2 for All-Pairs and close to 1
    for the indexed variant.
    """
    strategies = ("all-pairs", "bounds-checking", "index")
    timings: Dict[str, List[float]] = {s: [] for s in strategies}
    for n in sizes:
        points = clustered_points(n, clusters=20, spread=0.005, low=0.0, high=100.0, seed=seed)
        for strategy in strategies:
            # batch=False: the exponents characterise the per-tuple
            # strategies; the batch frontier path replaces their candidate
            # walks and would flatten All-Pairs towards the indexed slope.
            m = measure(
                lambda p=points, s=strategy: sgb_all(
                    p, eps=eps, metric=metric, on_overlap=on_overlap,
                    strategy=s, batch=False,
                )
            )
            timings[strategy].append(m.seconds)

    rows: List[Dict[str, object]] = []
    for strategy in strategies:
        slope = _loglog_slope(list(sizes), timings[strategy])
        rows.append(
            {
                "table": "1",
                "strategy": strategy,
                "on_overlap": on_overlap,
                "sizes": list(sizes),
                "seconds": [round(t, 4) for t in timings[strategy]],
                "empirical_exponent": round(slope, 2),
            }
        )
    return rows


def _loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den if den else 0.0
