"""The TPC-H evaluation queries of Table 2, adapted to the synthetic schema.

Each entry pairs a *business question* from the paper with the SQL text run
against :class:`repro.minidb.Database`.  The SGB queries are templated on the
similarity threshold, the metric, and (for SGB-All) the ON-OVERLAP action so
the Figure 12 overhead sweep can exercise every variant.

Naming follows the paper:

* ``GB1`` / ``GB2`` / ``GB3`` — the standard GROUP BY baselines (TPC-H Q18,
  Q9, Q15 style aggregations on the same derived relations).
* ``SGB1`` / ``SGB2`` — customers with similar buying power & account balance
  (SGB-All / SGB-Any over ``(c_acctbal, sum(o_totalprice))``).
* ``SGB3`` / ``SGB4`` — parts with similar profit & shipment time.
* ``SGB5`` / ``SGB6`` — suppliers with similar revenue & account balance.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "GB1",
    "GB2",
    "GB3",
    "sgb1",
    "sgb2",
    "sgb3",
    "sgb4",
    "sgb5",
    "sgb6",
    "standard_queries",
    "sgb_queries",
]


# -- derived relations shared by GB / SGB variants ---------------------------

_CUSTOMER_POWER = """
    (SELECT c_custkey, c_acctbal AS ab FROM customer WHERE c_acctbal > 100) AS r1,
    (SELECT o_custkey, sum(o_totalprice) AS tp
     FROM orders, lineitem
     WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                          GROUP BY l_orderkey HAVING sum(l_quantity) > {qty})
       AND o_orderkey = l_orderkey AND o_totalprice > 30000
     GROUP BY o_custkey) AS r2
"""

_PART_PROFIT = """
    (SELECT ps_partkey AS partkey,
            sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof,
            sum(l_receiptdate - l_shipdate) AS stime
     FROM lineitem, partsupp, supplier
     WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey
     GROUP BY ps_partkey) AS profit
"""

_SUPPLIER_REVENUE = """
    (SELECT l_suppkey AS suppkey,
            sum(l_extendedprice * (1 - l_discount)) AS trevenue,
            sum(s_acctbal) AS acctbal
     FROM lineitem, supplier
     WHERE s_suppkey = l_suppkey
       AND l_shipdate > date '1995-01-01'
       AND l_shipdate < date '1995-01-01' + interval '10' month
     GROUP BY l_suppkey) AS r
"""


# -- standard GROUP BY baselines ------------------------------------------------

#: GB1 — large-volume customers (TPC-H Q18 style).
GB1 = f"""
SELECT r1.c_custkey, max(ab), max(tp)
FROM {_CUSTOMER_POWER.format(qty=100)}
WHERE r1.c_custkey = r2.o_custkey
GROUP BY r1.c_custkey
"""

#: GB2 — profit per part (TPC-H Q9 style aggregation).
GB2 = f"""
SELECT count(*), sum(tprof), sum(stime)
FROM {_PART_PROFIT}
GROUP BY partkey
"""

#: GB3 — top suppliers by revenue (TPC-H Q15 style aggregation).
GB3 = f"""
SELECT suppkey, sum(trevenue), sum(acctbal)
FROM {_SUPPLIER_REVENUE}
GROUP BY suppkey
"""


# -- similarity group-by variants -----------------------------------------------


def sgb1(eps: float = 500.0, metric: str = "ltwo", overlap: str = "JOIN-ANY") -> str:
    """SGB1 — customers with similar buying power & balance (SGB-All)."""
    return f"""
SELECT max(ab), min(tp), max(tp), avg(ab), array_agg(r1.c_custkey)
FROM {_CUSTOMER_POWER.format(qty=100)}
WHERE r1.c_custkey = r2.o_custkey
GROUP BY ab, tp DISTANCE-ALL WITHIN {eps} USING {metric} ON-OVERLAP {overlap}
"""


def sgb2(eps: float = 500.0, metric: str = "ltwo") -> str:
    """SGB2 — customers with similar buying power & balance (SGB-Any)."""
    return f"""
SELECT max(ab), min(tp), max(tp), avg(ab), array_agg(r1.c_custkey)
FROM {_CUSTOMER_POWER.format(qty=100)}
WHERE r1.c_custkey = r2.o_custkey
GROUP BY ab, tp DISTANCE-ANY WITHIN {eps} USING {metric}
"""


def sgb3(eps: float = 5000.0, metric: str = "ltwo", overlap: str = "JOIN-ANY") -> str:
    """SGB3 — parts with similar profit & shipment time (SGB-All)."""
    return f"""
SELECT count(*), sum(tprof), sum(stime)
FROM {_PART_PROFIT}
GROUP BY tprof, stime DISTANCE-ALL WITHIN {eps} USING {metric} ON-OVERLAP {overlap}
"""


def sgb4(eps: float = 5000.0, metric: str = "ltwo") -> str:
    """SGB4 — parts with similar profit & shipment time (SGB-Any)."""
    return f"""
SELECT count(*), sum(tprof), sum(stime)
FROM {_PART_PROFIT}
GROUP BY tprof, stime DISTANCE-ANY WITHIN {eps} USING {metric}
"""


def sgb5(eps: float = 5000.0, metric: str = "ltwo", overlap: str = "JOIN-ANY") -> str:
    """SGB5 — suppliers with similar revenue & account balance (SGB-All)."""
    return f"""
SELECT array_agg(suppkey), sum(trevenue), sum(acctbal)
FROM {_SUPPLIER_REVENUE}
GROUP BY trevenue, acctbal DISTANCE-ALL WITHIN {eps} USING {metric} ON-OVERLAP {overlap}
"""


def sgb6(eps: float = 5000.0, metric: str = "ltwo") -> str:
    """SGB6 — suppliers with similar revenue & account balance (SGB-Any)."""
    return f"""
SELECT array_agg(suppkey), sum(trevenue), sum(acctbal)
FROM {_SUPPLIER_REVENUE}
GROUP BY trevenue, acctbal DISTANCE-ANY WITHIN {eps} USING {metric}
"""


def standard_queries() -> Dict[str, str]:
    """Return the three standard GROUP BY baseline queries."""
    return {"GB1": GB1, "GB2": GB2, "GB3": GB3}


def sgb_queries(
    eps_power: float = 500.0,
    eps_profit: float = 5000.0,
    metric: str = "ltwo",
    overlap: str = "JOIN-ANY",
) -> Dict[str, str]:
    """Return all six SGB evaluation queries with the given parameters."""
    return {
        "SGB1": sgb1(eps_power, metric, overlap),
        "SGB2": sgb2(eps_power, metric),
        "SGB3": sgb3(eps_profit, metric, overlap),
        "SGB4": sgb4(eps_profit, metric),
        "SGB5": sgb5(eps_profit, metric, overlap),
        "SGB6": sgb6(eps_profit, metric),
    }
