"""Rendering of experiment results: text tables, runtime series, JSON dumps."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "speedup", "write_json"]


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), max((len(r[i]) for r in rendered), default=0))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{separator}\n{body}"


def format_series(
    rows: Sequence[Dict[str, Any]],
    x: str,
    y: str,
    series: str,
) -> str:
    """Pivot rows into one column per series value (the paper's figure layout).

    Example: ``format_series(rows, x="eps", y="seconds", series="strategy")``
    prints one row per epsilon with one runtime column per strategy.
    """
    if not rows:
        return "(no rows)"
    series_values = sorted({str(r[series]) for r in rows})
    x_values = sorted({r[x] for r in rows}, key=lambda v: (isinstance(v, str), v))
    table: List[Dict[str, Any]] = []
    for xv in x_values:
        entry: Dict[str, Any] = {x: xv}
        for sv in series_values:
            match = [r for r in rows if r[x] == xv and str(r[series]) == sv]
            entry[sv] = match[0][y] if match else ""
        table.append(entry)
    return format_table(table, columns=[x] + series_values)


def speedup(rows: Sequence[Dict[str, Any]], baseline_label: str, key: str = "strategy") -> List[Dict[str, Any]]:
    """Attach a ``speedup`` column relative to the row with ``key == baseline_label``.

    Rows are matched on every column except ``key``, ``seconds`` and
    ``speedup`` (i.e. the sweep parameters).
    """
    def signature(row: Dict[str, Any]) -> tuple:
        return tuple(
            (k, v) for k, v in sorted(row.items()) if k not in (key, "seconds", "speedup", "label")
        )

    baselines = {signature(r): r["seconds"] for r in rows if str(r[key]) == baseline_label}
    out: List[Dict[str, Any]] = []
    for row in rows:
        base = baselines.get(signature(row))
        new_row = dict(row)
        if base and row["seconds"] > 0:
            new_row["speedup"] = round(base / row["seconds"], 2)
        out.append(new_row)
    return out


def write_json(rows: "Sequence[Dict[str, Any]] | Dict[str, Any]", path: str) -> str:
    """Dump experiment rows to ``path`` as indented JSON; return the path.

    This is the same serialisation ``scripts/run_all_experiments.py`` uses for
    ``experiment_results.json``, so ad-hoc benchmark runs and the full
    experiment sweep produce interchangeable artifacts.
    """
    with open(path, "w") as f:
        json.dump(rows, f, indent=1)
    return path


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
