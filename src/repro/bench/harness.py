"""Timing utilities shared by the experiment runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["Measurement", "measure", "sweep", "compare"]


@dataclass
class Measurement:
    """One timed run: the wall-clock seconds plus the callable's return value."""

    seconds: float
    value: Any = None
    label: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Return a flat dict suitable for tabular reporting."""
        out: Dict[str, Any] = {"label": self.label, "seconds": round(self.seconds, 6)}
        out.update(self.params)
        return out


def measure(fn: Callable[[], Any], label: str = "", repeat: int = 1, **params: Any) -> Measurement:
    """Run ``fn`` ``repeat`` times and return the best (minimum) wall-clock time.

    The minimum over repeats is the conventional way to suppress scheduler
    noise for CPU-bound micro-benchmarks.
    """
    best = float("inf")
    value: Any = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return Measurement(seconds=best, value=value, label=label, params=dict(params))


def compare(
    fns: "Dict[str, Callable[[], Any]]",
    baseline: Optional[str] = None,
    repeat: int = 1,
    **params: Any,
) -> List[Measurement]:
    """Time several implementations of the same computation side by side.

    ``fns`` maps a label to a zero-argument callable (e.g. ``{"scalar": ...,
    "batch": ...}``).  When ``baseline`` names one of the labels, every
    measurement gains a ``speedup`` parameter relative to it, so the rows the
    experiment runners emit carry the scalar-vs-batch ratio directly into the
    benchmark JSONs.
    """
    if baseline is not None and baseline not in fns:
        raise ValueError(f"unknown baseline label: {baseline!r}")
    results = [
        measure(fn, label=name, repeat=repeat, **params) for name, fn in fns.items()
    ]
    if baseline is not None:
        base = next(m.seconds for m in results if m.label == baseline)
        for m in results:
            if m.seconds > 0:
                m.params["speedup"] = round(base / m.seconds, 2)
    return results


def sweep(
    fn: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    label: str = "",
    **fixed: Any,
) -> List[Measurement]:
    """Run ``fn`` once per value of ``parameter`` and time each run."""
    results: List[Measurement] = []
    for value in values:
        kwargs = dict(fixed)
        kwargs[parameter] = value
        results.append(
            measure(lambda kw=kwargs: fn(**kw), label=label, **{parameter: value})
        )
    return results
