"""Timing utilities shared by the experiment runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List

__all__ = ["Measurement", "measure", "sweep"]


@dataclass
class Measurement:
    """One timed run: the wall-clock seconds plus the callable's return value."""

    seconds: float
    value: Any = None
    label: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Return a flat dict suitable for tabular reporting."""
        out: Dict[str, Any] = {"label": self.label, "seconds": round(self.seconds, 6)}
        out.update(self.params)
        return out


def measure(fn: Callable[[], Any], label: str = "", repeat: int = 1, **params: Any) -> Measurement:
    """Run ``fn`` ``repeat`` times and return the best (minimum) wall-clock time.

    The minimum over repeats is the conventional way to suppress scheduler
    noise for CPU-bound micro-benchmarks.
    """
    best = float("inf")
    value: Any = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return Measurement(seconds=best, value=value, label=label, params=dict(params))


def sweep(
    fn: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    label: str = "",
    **fixed: Any,
) -> List[Measurement]:
    """Run ``fn`` once per value of ``parameter`` and time each run."""
    results: List[Measurement] = []
    for value in values:
        kwargs = dict(fixed)
        kwargs[parameter] = value
        results.append(
            measure(lambda kw=kwargs: fn(**kw), label=label, **{parameter: value})
        )
    return results
