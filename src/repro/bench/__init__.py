"""Experiment harness regenerating the paper's tables and figures.

Each ``figNN_*`` / ``tableN_*`` function in :mod:`repro.bench.experiments`
runs one experiment of the paper's Section 8 at a configurable scale and
returns structured rows; :mod:`repro.bench.report` renders them the way the
paper reports them (runtime series per method).  The pytest-benchmark files
under ``benchmarks/`` are thin wrappers over these runners.
"""

from repro.bench.harness import Measurement, measure, sweep
from repro.bench.report import format_series, format_table

__all__ = ["measure", "Measurement", "sweep", "format_table", "format_series"]
