"""A deterministic synthetic TPC-H data generator.

The paper's SQL-level experiments (Table 2, Figure 12) run extended group-by
queries over the TPC-H schema.  The official ``dbgen`` tool and its data are
not available offline, so this module generates the subset of the schema the
evaluation queries touch — ``customer``, ``orders``, ``lineitem``,
``partsupp``, ``supplier``, ``part``, ``nation``, and ``region`` — with the
standard per-scale-factor cardinalities and value distributions close enough
to drive the same grouping behaviour:

* keys are dense integers;
* monetary amounts (account balances, prices, supply costs) follow the
  uniform ranges of the TPC-H specification;
* each order has 1–7 lineitems; ship/receipt dates fall in 1992–1998.

Rows are plain tuples ordered like the column list in ``TPCH_SCHEMAS`` so they
can be bulk-loaded into :class:`repro.minidb.Database` (see :func:`load_tpch`)
or consumed directly by the algorithm-level benchmarks.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import InvalidParameterError

__all__ = ["TPCH_SCHEMAS", "TPCHGenerator", "TPCHData", "load_tpch"]


#: Column names per table, in row order.
TPCH_SCHEMAS: Dict[str, List[Tuple[str, str]]] = {
    "region": [("r_regionkey", "INT"), ("r_name", "TEXT")],
    "nation": [("n_nationkey", "INT"), ("n_name", "TEXT"), ("n_regionkey", "INT")],
    "supplier": [
        ("s_suppkey", "INT"),
        ("s_name", "TEXT"),
        ("s_nationkey", "INT"),
        ("s_acctbal", "FLOAT"),
    ],
    "part": [
        ("p_partkey", "INT"),
        ("p_name", "TEXT"),
        ("p_retailprice", "FLOAT"),
    ],
    "partsupp": [
        ("ps_partkey", "INT"),
        ("ps_suppkey", "INT"),
        ("ps_availqty", "INT"),
        ("ps_supplycost", "FLOAT"),
    ],
    "customer": [
        ("c_custkey", "INT"),
        ("c_name", "TEXT"),
        ("c_nationkey", "INT"),
        ("c_acctbal", "FLOAT"),
        ("c_mktsegment", "TEXT"),
    ],
    "orders": [
        ("o_orderkey", "INT"),
        ("o_custkey", "INT"),
        ("o_totalprice", "FLOAT"),
        ("o_orderdate", "DATE"),
    ],
    "lineitem": [
        ("l_orderkey", "INT"),
        ("l_partkey", "INT"),
        ("l_suppkey", "INT"),
        ("l_quantity", "FLOAT"),
        ("l_extendedprice", "FLOAT"),
        ("l_discount", "FLOAT"),
        ("l_shipdate", "DATE"),
        ("l_receiptdate", "DATE"),
    ],
}

#: TPC-H base cardinalities at scale factor 1.0.
_BASE_CARDINALITIES = {
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
}

_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]


Row = Tuple[object, ...]


@dataclass
class TPCHData:
    """Generated rows for every TPC-H table, keyed by lower-case table name."""

    scale_factor: float
    tables: Dict[str, List[Row]] = field(default_factory=dict)

    def row_count(self, table: str) -> int:
        """Return the number of rows generated for ``table``."""
        return len(self.tables[table])

    def total_rows(self) -> int:
        """Return the total number of rows across all tables."""
        return sum(len(rows) for rows in self.tables.values())


class TPCHGenerator:
    """Deterministic generator of synthetic TPC-H rows.

    Parameters
    ----------
    scale_factor:
        Fraction of the TPC-H SF-1 cardinalities to generate.  The
        reproduction sweeps small values (e.g. 0.001–0.05) where the pure
        Python engine remains interactive.
    seed:
        Seed of the underlying pseudo-random generator.
    """

    def __init__(self, scale_factor: float = 0.01, seed: int = 42) -> None:
        if scale_factor <= 0:
            raise InvalidParameterError("scale_factor must be positive")
        self.scale_factor = float(scale_factor)
        self.seed = seed

    # -- cardinalities ---------------------------------------------------

    def cardinality(self, table: str) -> int:
        """Return the number of rows to generate for ``table`` at this scale."""
        if table in ("nation",):
            return len(_NATIONS)
        if table in ("region",):
            return len(_REGIONS)
        if table == "lineitem":
            # Lineitem size is derived from orders (1-7 items each); report the
            # expected value (4 per order) for sizing purposes.
            return self.cardinality("orders") * 4
        base = _BASE_CARDINALITIES[table]
        return max(1, int(round(base * self.scale_factor)))

    # -- generation -------------------------------------------------------

    def generate(self) -> TPCHData:
        """Generate every table and return the populated :class:`TPCHData`."""
        rng = random.Random(self.seed)
        data = TPCHData(scale_factor=self.scale_factor)
        data.tables["region"] = [(i, name) for i, name in enumerate(_REGIONS)]
        data.tables["nation"] = [
            (i, name, i % len(_REGIONS)) for i, name in enumerate(_NATIONS)
        ]
        data.tables["supplier"] = self._suppliers(rng)
        data.tables["part"] = self._parts(rng)
        data.tables["partsupp"] = self._partsupps(rng, data)
        data.tables["customer"] = self._customers(rng)
        orders, lineitems = self._orders_and_lineitems(rng, data)
        data.tables["orders"] = orders
        data.tables["lineitem"] = lineitems
        return data

    def _suppliers(self, rng: random.Random) -> List[Row]:
        n = self.cardinality("supplier")
        return [
            (
                key,
                f"Supplier#{key:09d}",
                rng.randrange(len(_NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for key in range(1, n + 1)
        ]

    def _parts(self, rng: random.Random) -> List[Row]:
        n = self.cardinality("part")
        return [
            (key, f"Part#{key:09d}", round(900.0 + (key % 1000) + rng.random(), 2))
            for key in range(1, n + 1)
        ]

    def _partsupps(self, rng: random.Random, data: TPCHData) -> List[Row]:
        parts = len(data.tables["part"])
        suppliers = len(data.tables["supplier"])
        rows: List[Row] = []
        per_part = 4
        for partkey in range(1, parts + 1):
            for i in range(per_part):
                suppkey = 1 + (partkey + i * max(1, suppliers // per_part)) % suppliers
                rows.append(
                    (
                        partkey,
                        suppkey,
                        rng.randrange(1, 10_000),
                        round(rng.uniform(1.0, 1000.0), 2),
                    )
                )
        return rows

    def _customers(self, rng: random.Random) -> List[Row]:
        n = self.cardinality("customer")
        return [
            (
                key,
                f"Customer#{key:09d}",
                rng.randrange(len(_NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
                _SEGMENTS[rng.randrange(len(_SEGMENTS))],
            )
            for key in range(1, n + 1)
        ]

    def _orders_and_lineitems(
        self, rng: random.Random, data: TPCHData
    ) -> Tuple[List[Row], List[Row]]:
        n_orders = self.cardinality("orders")
        n_customers = len(data.tables["customer"])
        n_parts = len(data.tables["part"])
        n_suppliers = len(data.tables["supplier"])
        start = dt.date(1992, 1, 1)
        span_days = (dt.date(1998, 8, 2) - start).days

        orders: List[Row] = []
        lineitems: List[Row] = []
        for orderkey in range(1, n_orders + 1):
            custkey = rng.randrange(1, n_customers + 1)
            orderdate = start + dt.timedelta(days=rng.randrange(span_days))
            item_count = rng.randrange(1, 8)
            total = 0.0
            for _ in range(item_count):
                partkey = rng.randrange(1, n_parts + 1)
                suppkey = rng.randrange(1, n_suppliers + 1)
                quantity = float(rng.randrange(1, 51))
                extendedprice = round(quantity * rng.uniform(900.0, 2000.0), 2)
                discount = round(rng.uniform(0.0, 0.10), 2)
                shipdate = orderdate + dt.timedelta(days=rng.randrange(1, 122))
                receiptdate = shipdate + dt.timedelta(days=rng.randrange(1, 31))
                total += extendedprice * (1.0 - discount)
                lineitems.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        quantity,
                        extendedprice,
                        discount,
                        shipdate,
                        receiptdate,
                    )
                )
            orders.append((orderkey, custkey, round(total, 2), orderdate))
        return orders, lineitems


def load_tpch(database, scale_factor: float = 0.01, seed: int = 42) -> TPCHData:
    """Generate TPC-H data and load it into a :class:`repro.minidb.Database`.

    Creates (or replaces) the TPC-H tables inside ``database`` and bulk-inserts
    the generated rows.  Returns the generated data for inspection.
    """
    data = TPCHGenerator(scale_factor=scale_factor, seed=seed).generate()
    for table, columns in TPCH_SCHEMAS.items():
        if database.has_table(table):
            database.drop_table(table)
        database.create_table(table, columns)
        database.insert_rows(table, data.tables[table])
    return data
