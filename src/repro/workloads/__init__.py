"""Workload generators used by the tests, examples, and benchmark harness.

* :mod:`repro.workloads.synthetic` — generic point clouds (uniform, Gaussian
  clusters, grid) used for micro-benchmarks and property tests.
* :mod:`repro.workloads.checkins` — synthetic location-based social check-in
  data standing in for the Brightkite / Gowalla datasets of Figure 11.
* :mod:`repro.workloads.tpch` — a deterministic synthetic TPC-H generator
  feeding the SQL-level experiments (Table 2, Figure 12).
"""

from repro.workloads.checkins import CheckinConfig, generate_checkins
from repro.workloads.synthetic import (
    clustered_points,
    grid_points,
    uniform_points,
)
from repro.workloads.tpch import TPCHGenerator, load_tpch

__all__ = [
    "uniform_points",
    "clustered_points",
    "grid_points",
    "CheckinConfig",
    "generate_checkins",
    "TPCHGenerator",
    "load_tpch",
]
