"""Synthetic location-based social check-in data (Brightkite / Gowalla stand-in).

The paper's Figure 11 clusters users of the Brightkite and Gowalla check-in
datasets by (latitude, longitude).  Those dumps are not redistributable here,
so this generator produces check-ins with the same structural properties the
experiment depends on:

* a small number of dense metropolitan hotspots holding most of the mass,
* heavy-tailed per-user check-in counts,
* a sprinkling of isolated rural check-ins (background noise).

Each record carries ``(user_id, latitude, longitude, checkin_time)`` so the
SQL-level examples can aggregate per user before grouping, exactly like
Query 3 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import InvalidParameterError

__all__ = ["CheckinConfig", "CheckinRecord", "generate_checkins", "checkin_points"]


@dataclass(frozen=True)
class CheckinConfig:
    """Knobs of the synthetic check-in generator."""

    n_checkins: int = 10_000
    n_users: int = 1_000
    hotspots: int = 25
    hotspot_spread_deg: float = 0.15
    noise_fraction: float = 0.08
    lat_range: Tuple[float, float] = (25.0, 49.0)
    lon_range: Tuple[float, float] = (-125.0, -65.0)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_checkins < 0 or self.n_users <= 0 or self.hotspots <= 0:
            raise InvalidParameterError("check-in config sizes must be positive")
        if not 0.0 <= self.noise_fraction <= 1.0:
            raise InvalidParameterError("noise_fraction must be within [0, 1]")


@dataclass(frozen=True)
class CheckinRecord:
    """One social check-in event."""

    user_id: int
    latitude: float
    longitude: float
    checkin_time: int


def generate_checkins(config: CheckinConfig = CheckinConfig()) -> List[CheckinRecord]:
    """Return a deterministic list of synthetic check-in records."""
    rng = random.Random(config.seed)
    lat_lo, lat_hi = config.lat_range
    lon_lo, lon_hi = config.lon_range

    centers = [
        (rng.uniform(lat_lo, lat_hi), rng.uniform(lon_lo, lon_hi))
        for _ in range(config.hotspots)
    ]
    # Heavy-tailed hotspot popularity (Zipf-ish weights).
    weights = [1.0 / (rank + 1) for rank in range(config.hotspots)]
    total_weight = sum(weights)
    weights = [w / total_weight for w in weights]

    # Each user has a home hotspot and a heavy-tailed activity level.
    user_home = [rng.choices(range(config.hotspots), weights=weights)[0] for _ in range(config.n_users)]

    records: List[CheckinRecord] = []
    for i in range(config.n_checkins):
        user = rng.randrange(config.n_users)
        if rng.random() < config.noise_fraction:
            lat = rng.uniform(lat_lo, lat_hi)
            lon = rng.uniform(lon_lo, lon_hi)
        else:
            center = centers[user_home[user]]
            lat = min(lat_hi, max(lat_lo, rng.gauss(center[0], config.hotspot_spread_deg)))
            lon = min(lon_hi, max(lon_lo, rng.gauss(center[1], config.hotspot_spread_deg)))
        records.append(
            CheckinRecord(
                user_id=user,
                latitude=lat,
                longitude=lon,
                checkin_time=1_200_000_000 + i * 37,
            )
        )
    return records


def checkin_points(records: List[CheckinRecord]) -> List[Tuple[float, float]]:
    """Return the (latitude, longitude) pairs of the records."""
    return [(r.latitude, r.longitude) for r in records]
