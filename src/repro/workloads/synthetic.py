"""Synthetic point-cloud generators for micro-benchmarks and property tests.

All generators are deterministic given a seed and return plain tuples, which
is what the SGB algorithm layer consumes.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.exceptions import InvalidParameterError

Point = Tuple[float, ...]

__all__ = ["uniform_points", "clustered_points", "grid_points"]


def uniform_points(
    n: int,
    dims: int = 2,
    low: float = 0.0,
    high: float = 1.0,
    seed: int = 0,
) -> List[Point]:
    """Return ``n`` points uniformly distributed in ``[low, high]^dims``."""
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    if dims < 1:
        raise InvalidParameterError("dims must be at least 1")
    if high <= low:
        raise InvalidParameterError("high must exceed low")
    rng = random.Random(seed)
    span = high - low
    return [tuple(low + rng.random() * span for _ in range(dims)) for _ in range(n)]


def clustered_points(
    n: int,
    clusters: int = 10,
    dims: int = 2,
    spread: float = 0.02,
    low: float = 0.0,
    high: float = 1.0,
    noise_fraction: float = 0.05,
    seed: int = 0,
) -> List[Point]:
    """Return ``n`` points drawn from Gaussian blobs plus uniform background noise.

    This is the skewed spatial distribution the paper's experiments rely on
    (clustered social check-ins, correlated TPC-H aggregates): most points sit
    inside compact hotspots of standard deviation ``spread`` while
    ``noise_fraction`` of them are scattered uniformly.
    """
    if clusters < 1:
        raise InvalidParameterError("clusters must be at least 1")
    if not 0.0 <= noise_fraction <= 1.0:
        raise InvalidParameterError("noise_fraction must be within [0, 1]")
    rng = random.Random(seed)
    span = high - low
    centers = [
        tuple(low + rng.random() * span for _ in range(dims)) for _ in range(clusters)
    ]
    points: List[Point] = []
    for _ in range(n):
        if rng.random() < noise_fraction:
            points.append(tuple(low + rng.random() * span for _ in range(dims)))
            continue
        center = centers[rng.randrange(clusters)]
        point = tuple(
            min(high, max(low, rng.gauss(c, spread * span))) for c in center
        )
        points.append(point)
    return points


def grid_points(side: int, dims: int = 2, step: float = 1.0) -> List[Point]:
    """Return the regular ``side^dims`` lattice with the given ``step``.

    Useful for tests with exactly predictable group structure.
    """
    if side < 1:
        raise InvalidParameterError("side must be at least 1")
    if dims < 1 or dims > 3:
        raise InvalidParameterError("grid_points supports 1 to 3 dimensions")
    coords = [i * step for i in range(side)]
    if dims == 1:
        return [(c,) for c in coords]
    if dims == 2:
        return [(x, y) for x in coords for y in coords]
    return [(x, y, z) for x in coords for y in coords for z in coords]


def shuffled(points: List[Point], seed: int = 0) -> List[Point]:
    """Return a deterministically shuffled copy of ``points``."""
    out = list(points)
    random.Random(seed).shuffle(out)
    return out


def normalise_unit_square(points: List[Point]) -> List[Point]:
    """Scale a point set into the unit hyper-cube (used before epsilon sweeps)."""
    if not points:
        return []
    dims = len(points[0])
    lows = [min(p[d] for p in points) for d in range(dims)]
    highs = [max(p[d] for p in points) for d in range(dims)]
    spans = [max(hi - lo, 1e-12) for lo, hi in zip(lows, highs)]
    return [
        tuple((c - lo) / span for c, lo, span in zip(p, lows, spans)) for p in points
    ]


def ring_points(n: int, radius: float = 1.0, jitter: float = 0.0, seed: int = 0) -> List[Point]:
    """Return ``n`` points on (or near) a circle — a worst case for clique grouping."""
    rng = random.Random(seed)
    out: List[Point] = []
    for i in range(n):
        angle = 2.0 * math.pi * i / max(n, 1)
        r = radius + (rng.uniform(-jitter, jitter) if jitter else 0.0)
        out.append((r * math.cos(angle), r * math.sin(angle)))
    return out
