"""Metric-space distance functions used by the similarity predicates.

The paper (Definition 1) works in a metric space ``M = <D, delta>`` and uses
two Minkowski distances:

* ``L2``  — the Euclidean distance ``sqrt(sum (x_i - y_i)^2)``
* ``LINF`` — the maximum (Chebyshev) distance ``max |x_i - y_i|``

This module also provides the general ``Lp`` family as an extension (the
paper leaves metrics beyond L2/L-infinity to future work).  The scalar
functions accept plain sequences of floats; :func:`pairwise_measures` is the
NumPy kernel behind every vectorised eps decision in the batch path, and
:func:`distances_many` is its one-against-many convenience wrapper for
callers that want actual distances.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Callable, List, Sequence

from repro.exceptions import DimensionalityError, InvalidParameterError

try:  # optional dependency: the scalar loops below are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

Point = Sequence[float]
DistanceFunction = Callable[[Point, Point], float]

__all__ = [
    "Point",
    "DistanceFunction",
    "Metric",
    "euclidean",
    "chebyshev",
    "manhattan",
    "minkowski",
    "distances_many",
    "pairwise_measures",
    "within_eps",
    "get_distance_function",
    "resolve_metric",
]


def _check_dims(p: Point, q: Point) -> None:
    if len(p) != len(q):
        raise DimensionalityError(
            f"points have different dimensionality: {len(p)} vs {len(q)}"
        )


def euclidean(p: Point, q: Point) -> float:
    """Return the Euclidean (L2) distance between two points."""
    _check_dims(p, q)
    total = 0.0
    for a, b in zip(p, q):
        diff = a - b
        total += diff * diff
    return math.sqrt(total)


def squared_euclidean(p: Point, q: Point) -> float:
    """Return the squared Euclidean distance (avoids the sqrt for comparisons)."""
    _check_dims(p, q)
    total = 0.0
    for a, b in zip(p, q):
        diff = a - b
        total += diff * diff
    return total


def chebyshev(p: Point, q: Point) -> float:
    """Return the maximum-coordinate (L-infinity / Chebyshev) distance."""
    _check_dims(p, q)
    best = 0.0
    for a, b in zip(p, q):
        diff = abs(a - b)
        if diff > best:
            best = diff
    return best


def manhattan(p: Point, q: Point) -> float:
    """Return the L1 (Manhattan) distance."""
    _check_dims(p, q)
    return sum(abs(a - b) for a, b in zip(p, q))


def minkowski(p: Point, q: Point, order: float) -> float:
    """Return the general Minkowski Lp distance of the given ``order`` >= 1."""
    if order < 1:
        raise InvalidParameterError(f"Minkowski order must be >= 1, got {order}")
    if math.isinf(order):
        return chebyshev(p, q)
    _check_dims(p, q)
    return sum(abs(a - b) ** order for a, b in zip(p, q)) ** (1.0 / order)


class Metric(Enum):
    """Named distance metrics accepted by the SGB operators.

    ``L2`` and ``LINF`` are the two metrics evaluated in the paper; ``L1`` is
    provided as an extension.  The enum value is the SQL keyword used by the
    extended ``GROUP BY ... DISTANCE-TO-ALL <metric> WITHIN eps`` syntax.
    """

    L2 = "L2"
    LINF = "LINF"
    L1 = "L1"

    @property
    def function(self) -> DistanceFunction:
        """Return the callable computing this metric."""
        return _METRIC_FUNCTIONS[self]

    def distance(self, p: Point, q: Point) -> float:
        """Compute the distance between ``p`` and ``q`` under this metric."""
        return self.function(p, q)


_METRIC_FUNCTIONS: dict[Metric, DistanceFunction] = {
    Metric.L2: euclidean,
    Metric.LINF: chebyshev,
    Metric.L1: manhattan,
}

_METRIC_ALIASES: dict[str, Metric] = {
    "l2": Metric.L2,
    "euclidean": Metric.L2,
    "ltwo": Metric.L2,
    "linf": Metric.LINF,
    "l_inf": Metric.LINF,
    "linfinity": Metric.LINF,
    "chebyshev": Metric.LINF,
    "maximum": Metric.LINF,
    "lone": Metric.L1,
    "l1": Metric.L1,
    "manhattan": Metric.L1,
}


def resolve_metric(metric: "Metric | str") -> Metric:
    """Resolve a :class:`Metric` from an enum member or a (case-insensitive) name.

    Accepts the SQL keywords used by the paper's syntax (``L2``, ``LINF``) and
    the aliases that appear in the TPC-H evaluation queries (``ltwo``,
    ``lone``).
    """
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, str):
        key = metric.strip().lower()
        if key in _METRIC_ALIASES:
            return _METRIC_ALIASES[key]
    raise InvalidParameterError(f"unknown distance metric: {metric!r}")


def get_distance_function(metric: "Metric | str") -> DistanceFunction:
    """Return the distance callable for a metric name or enum member."""
    return resolve_metric(metric).function


def pairwise_measures(probe: "object", block: "object", metric: Metric) -> "object":
    """NumPy kernel: per-pair metric measure between two ``(_, d)`` blocks.

    Returns the ``(a, b)`` array of *measures* — squared distance for L2
    (the comparison form the predicates use), plain distance for LINF/L1 —
    between every row of ``probe (a, d)`` and every row of ``block (b, d)``.

    The coordinate terms accumulate left-to-right, one dimension at a time,
    exactly like the scalar loops above, so comparisons against an epsilon
    are bit-identical to the scalar path at any dimensionality (a plain
    ``.sum(axis=-1)`` would switch to pairwise summation past 8 dimensions
    and flip exact-boundary predicate decisions).
    """
    if probe.shape[1] != block.shape[1]:
        raise DimensionalityError(
            f"points have different dimensionality: "
            f"{probe.shape[1]} vs {block.shape[1]}"
        )
    pa = probe[:, 0, None]
    pb = block[None, :, 0]
    if metric is Metric.L2:
        diff = pa - pb
        acc = diff * diff
        for k in range(1, probe.shape[1]):
            diff = probe[:, k, None] - block[None, :, k]
            acc += diff * diff
        return acc
    if metric is Metric.LINF:
        acc = _np.abs(pa - pb)
        for k in range(1, probe.shape[1]):
            _np.maximum(acc, _np.abs(probe[:, k, None] - block[None, :, k]), out=acc)
        return acc
    if metric is Metric.L1:
        acc = _np.abs(pa - pb)
        for k in range(1, probe.shape[1]):
            acc += _np.abs(probe[:, k, None] - block[None, :, k])
        return acc
    raise InvalidParameterError(f"unsupported metric for bulk evaluation: {metric}")


def within_eps(probe: "object", block: "object", metric: Metric, eps: float) -> "object":
    """NumPy kernel: ``(a, b)`` boolean mask of pairs within ``eps``.

    This is the single place that knows how :func:`pairwise_measures` maps to
    the epsilon comparison (squared threshold for L2, plain for LINF/L1);
    every vectorised predicate decision routes through it so the boundary
    rule cannot drift between call sites.
    """
    measures = pairwise_measures(probe, block, metric)
    return measures <= (eps * eps if metric is Metric.L2 else eps)


def distances_many(
    p: Point, candidates: "Sequence[Point]", metric: "Metric | str" = Metric.L2
) -> List[float]:
    """Return the distance from ``p`` to every candidate (vectorised).

    With NumPy present the candidate block is evaluated in one shot through
    :func:`pairwise_measures`, so the values are bit-identical to calling
    ``metric.distance`` in a loop.  ``candidates`` may be a NumPy ``(n, d)``
    array (zero-copy) or any sequence of point sequences.
    """
    m = resolve_metric(metric)
    if _np is not None:
        block = _np.asarray(candidates, dtype=_np.float64)
        if block.shape[0] == 0:
            return []
        if block.ndim != 2:
            raise DimensionalityError("candidates must form a 2-D (n, d) block")
        probe = _np.asarray([tuple(float(c) for c in p)], dtype=_np.float64)
        measures = pairwise_measures(probe, block, m)[0]
        if m is Metric.L2:
            return _np.sqrt(measures).tolist()
        return measures.tolist()
    fn = m.function
    return [fn(p, q) for q in candidates]
