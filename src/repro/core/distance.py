"""Metric-space distance functions used by the similarity predicates.

The paper (Definition 1) works in a metric space ``M = <D, delta>`` and uses
two Minkowski distances:

* ``L2``  — the Euclidean distance ``sqrt(sum (x_i - y_i)^2)``
* ``LINF`` — the maximum (Chebyshev) distance ``max |x_i - y_i|``

This module also provides the general ``Lp`` family as an extension (the
paper leaves metrics beyond L2/L-infinity to future work).  All functions
accept plain sequences of floats; no numpy arrays are required on the hot
path because the SGB algorithms operate point-at-a-time.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Callable, Sequence

from repro.exceptions import DimensionalityError, InvalidParameterError

Point = Sequence[float]
DistanceFunction = Callable[[Point, Point], float]

__all__ = [
    "Point",
    "DistanceFunction",
    "Metric",
    "euclidean",
    "chebyshev",
    "manhattan",
    "minkowski",
    "get_distance_function",
    "resolve_metric",
]


def _check_dims(p: Point, q: Point) -> None:
    if len(p) != len(q):
        raise DimensionalityError(
            f"points have different dimensionality: {len(p)} vs {len(q)}"
        )


def euclidean(p: Point, q: Point) -> float:
    """Return the Euclidean (L2) distance between two points."""
    _check_dims(p, q)
    total = 0.0
    for a, b in zip(p, q):
        diff = a - b
        total += diff * diff
    return math.sqrt(total)


def squared_euclidean(p: Point, q: Point) -> float:
    """Return the squared Euclidean distance (avoids the sqrt for comparisons)."""
    _check_dims(p, q)
    total = 0.0
    for a, b in zip(p, q):
        diff = a - b
        total += diff * diff
    return total


def chebyshev(p: Point, q: Point) -> float:
    """Return the maximum-coordinate (L-infinity / Chebyshev) distance."""
    _check_dims(p, q)
    best = 0.0
    for a, b in zip(p, q):
        diff = abs(a - b)
        if diff > best:
            best = diff
    return best


def manhattan(p: Point, q: Point) -> float:
    """Return the L1 (Manhattan) distance."""
    _check_dims(p, q)
    return sum(abs(a - b) for a, b in zip(p, q))


def minkowski(p: Point, q: Point, order: float) -> float:
    """Return the general Minkowski Lp distance of the given ``order`` >= 1."""
    if order < 1:
        raise InvalidParameterError(f"Minkowski order must be >= 1, got {order}")
    if math.isinf(order):
        return chebyshev(p, q)
    _check_dims(p, q)
    return sum(abs(a - b) ** order for a, b in zip(p, q)) ** (1.0 / order)


class Metric(Enum):
    """Named distance metrics accepted by the SGB operators.

    ``L2`` and ``LINF`` are the two metrics evaluated in the paper; ``L1`` is
    provided as an extension.  The enum value is the SQL keyword used by the
    extended ``GROUP BY ... DISTANCE-TO-ALL <metric> WITHIN eps`` syntax.
    """

    L2 = "L2"
    LINF = "LINF"
    L1 = "L1"

    @property
    def function(self) -> DistanceFunction:
        """Return the callable computing this metric."""
        return _METRIC_FUNCTIONS[self]

    def distance(self, p: Point, q: Point) -> float:
        """Compute the distance between ``p`` and ``q`` under this metric."""
        return self.function(p, q)


_METRIC_FUNCTIONS: dict[Metric, DistanceFunction] = {
    Metric.L2: euclidean,
    Metric.LINF: chebyshev,
    Metric.L1: manhattan,
}

_METRIC_ALIASES: dict[str, Metric] = {
    "l2": Metric.L2,
    "euclidean": Metric.L2,
    "ltwo": Metric.L2,
    "linf": Metric.LINF,
    "l_inf": Metric.LINF,
    "linfinity": Metric.LINF,
    "chebyshev": Metric.LINF,
    "maximum": Metric.LINF,
    "lone": Metric.L1,
    "l1": Metric.L1,
    "manhattan": Metric.L1,
}


def resolve_metric(metric: "Metric | str") -> Metric:
    """Resolve a :class:`Metric` from an enum member or a (case-insensitive) name.

    Accepts the SQL keywords used by the paper's syntax (``L2``, ``LINF``) and
    the aliases that appear in the TPC-H evaluation queries (``ltwo``,
    ``lone``).
    """
    if isinstance(metric, Metric):
        return metric
    if isinstance(metric, str):
        key = metric.strip().lower()
        if key in _METRIC_ALIASES:
            return _METRIC_ALIASES[key]
    raise InvalidParameterError(f"unknown distance metric: {metric!r}")


def get_distance_function(metric: "Metric | str") -> DistanceFunction:
    """Return the distance callable for a metric name or enum member."""
    return resolve_metric(metric).function
