"""SGB-Any: distance-to-any (connectivity) similarity grouping (paper Section 7).

A point joins a group when it is within ``eps`` of *at least one* member; a
point close to several groups causes those groups to merge.  The output is
therefore the set of connected components of the epsilon-neighbourhood graph.

Two strategies are provided, matching the paper's evaluation:

* ``ALL_PAIRS`` — compare the incoming point against every processed point
  (quadratic).
* ``INDEX``     — Procedure 8: an on-the-fly spatial index (``Points_IX``,
  an R-tree by default) answers the epsilon window query, and a Union-Find
  forest (Procedure 9 / ``MergeGroupsInsert``) tracks existing, new, and
  merged groups; O(n log n) on average.

For the L2 metric the window query is refined with an exact distance check
(the ``VerifyPoints`` step of Procedure 8).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet, ensure_finite, is_empty_batch
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import Rect
from repro.core.result import GroupingResult, canonicalize_groups
from repro.dstruct.union_find import UnionFind
from repro.exceptions import InvalidParameterError
from repro.spatial.base import SpatialIndex
from repro.spatial.rtree import RTree

try:  # optional: used to stage prior points for bulk verification
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

Point = Tuple[float, ...]

__all__ = ["SGBAnyStrategy", "SGBAnyGrouper", "sgb_any_grouping"]


def _default_index_factory() -> SpatialIndex:
    """Default spatial index; a named function so groupers stay picklable
    (streaming checkpoints serialise live sessions holding groupers)."""
    return RTree(max_entries=8)


class SGBAnyStrategy(Enum):
    """Neighbour discovery strategy used by SGB-Any."""

    ALL_PAIRS = "all-pairs"
    INDEX = "index"

    @staticmethod
    def parse(value: "SGBAnyStrategy | str") -> "SGBAnyStrategy":
        """Resolve a strategy from an enum member or its name."""
        if isinstance(value, SGBAnyStrategy):
            return value
        if isinstance(value, str):
            key = value.strip().lower().replace("_", "-")
            aliases = {
                "all-pairs": SGBAnyStrategy.ALL_PAIRS,
                "naive": SGBAnyStrategy.ALL_PAIRS,
                "index": SGBAnyStrategy.INDEX,
                "rtree": SGBAnyStrategy.INDEX,
                "on-the-fly-index": SGBAnyStrategy.INDEX,
            }
            if key in aliases:
                return aliases[key]
        raise InvalidParameterError(f"unknown SGB-Any strategy: {value!r}")


IndexFactory = Callable[[], SpatialIndex]


class SGBAnyGrouper:
    """Stateful SGB-Any operator: feed points one at a time, then finalise."""

    def __init__(
        self,
        eps: float,
        metric: "Metric | str" = Metric.L2,
        strategy: "SGBAnyStrategy | str" = SGBAnyStrategy.INDEX,
        index_factory: Optional[IndexFactory] = None,
    ) -> None:
        self.predicate = SimilarityPredicate(resolve_metric(metric), eps)
        self.eps = float(eps)
        self.strategy = SGBAnyStrategy.parse(strategy)
        #: True when the caller picked the access method (index ablations);
        #: add_batch then routes batch-internal discovery through it as well.
        self._explicit_index = index_factory is not None
        self._index_factory = index_factory or _default_index_factory
        self._points: List[Point] = []
        self._indices: List[int] = []
        self._point_by_index: dict[int, Point] = {}
        self._uf = UnionFind()
        self._point_index: Optional[SpatialIndex] = (
            self._index_factory() if self.strategy is SGBAnyStrategy.INDEX else None
        )
        #: Points below this position in ``_points`` are in ``_point_index``;
        #: batches defer indexing, and the tail is flushed lazily (STR
        #: bulk-loaded when the index is still empty, incrementally inserted
        #: otherwise) before the next probe needs it.
        self._indexed_upto = 0

    # ------------------------------------------------------------------
    # public incremental interface
    # ------------------------------------------------------------------

    def add(self, point: Sequence[float], index: Optional[int] = None) -> None:
        """Process one input point (Procedure 7 body)."""
        pt: Point = tuple(float(c) for c in point)
        ensure_finite(pt)
        if index is None:
            index = len(self._points)
        if index in self._point_by_index:
            raise InvalidParameterError(
                f"input row index {index} was already added to this grouper"
            )
        neighbours = self._find_neighbours(pt)
        self._uf.add(index)
        self._points.append(pt)
        self._indices.append(index)
        self._point_by_index[index] = pt
        # MergeGroupsInsert: union the point with every neighbouring group.
        for other in neighbours:
            self._uf.union(index, other)
        if self._point_index is not None:
            # _find_neighbours flushed any batch backlog, so the index covers
            # everything before this point; append it incrementally.
            self._point_index.insert(Rect.from_point(pt), index)
            self._indexed_upto = len(self._points)

    def add_all(self, points: Iterable[Sequence[float]]) -> None:
        """Process points one at a time in arrival order (scalar reference path)."""
        for point in points:
            self.add(point)

    def add_batch(self, points: "PointSet | Sequence[Sequence[float]]") -> None:
        """Process a whole batch of points with the vectorised pipeline.

        Semantically identical to calling :meth:`add` on every point in
        order — the epsilon-neighbourhood graph, and therefore the final
        connected components, are the same — but the work is done in bulk:
        the batch is normalised once into a :class:`PointSet`, batch-internal
        edges come from :meth:`PointSet.pairwise_within` (an eps-grid sweep),
        window hits against previously added points are verified in bulk,
        and the edges are applied with one batched Union-Find merge.  The
        point index is not updated eagerly; the unindexed tail is flushed
        (STR bulk-loaded, or incrementally inserted once the index exists)
        on the next probe that needs it.

        When the grouper was built with an explicit ``index_factory`` under
        the ``INDEX`` strategy, batch-internal edges are instead discovered
        through a bulk-loaded instance of that index (window query per point
        + exact verification) so index ablations measure their access method
        at batch scale too; the edge set — and hence the grouping — is the
        same either way.
        """
        if is_empty_batch(points):
            # Degenerate batch: a strict no-op — no PointSet normalisation,
            # no index bookkeeping, no Union-Find dispatch.  Streaming flushes
            # routinely produce empty micro-batches at epoch boundaries.
            return
        ps = PointSet.from_any(points)
        n = len(ps)
        if n == 0:
            return
        base = len(self._points)
        indices = range(base, base + n)
        for index in indices:
            if index in self._point_by_index:
                raise InvalidParameterError(
                    f"input row index {index} was already added to this grouper"
                )
        tuples = ps.to_tuples()
        self._uf.add_many(indices)
        # Edges between the batch and the points processed before it.
        if self._points:
            neighbour_lists = self._find_neighbours_many(tuples)
            self._uf.union_pairs(
                (index, other)
                for index, neighbours in zip(indices, neighbour_lists)
                for other in neighbours
            )
        # Batch-internal epsilon edges: columnar grid sweep by default, or the
        # caller's spatial index when one was explicitly chosen (ablations).
        if self._explicit_index and self.strategy is SGBAnyStrategy.INDEX:
            self._uf.union_pairs(self._batch_edges_indexed(tuples, base))
        else:
            self._uf.union_pairs(
                (base + i, base + j)
                for i, j in ps.pairwise_within(self.eps, self.predicate.metric)
            )
        self._points.extend(tuples)
        self._indices.extend(indices)
        for index, pt in zip(indices, tuples):
            self._point_by_index[index] = pt
        # The new tail stays unindexed until a probe calls _ensure_point_index.

    def _batch_edges_indexed(
        self, tuples: Sequence[Point], base: int
    ) -> Iterable[Tuple[int, int]]:
        """Batch-internal eps-edges via a bulk-loaded throwaway index.

        Exactly the edge set ``pairwise_within`` yields: the window query is a
        conservative filter and L2 hits are verified with the exact distance
        (LINF windows are exact already).  Used when the caller explicitly
        selected the access method, so the index-choice ablation exercises
        grid / kd-tree / R-tree on whole batches.
        """
        index = self._index_factory()
        index.load([Rect.from_point(pt) for pt in tuples], range(len(tuples)))
        windows = [Rect.from_point(pt, self.eps) for pt in tuples]
        linf = self.predicate.metric is Metric.LINF
        for i, hits in enumerate(index.search_many(windows)):
            later = [j for j in hits if j > i]
            if not later:
                continue
            if linf:
                verified = later
            else:
                mask = self.predicate.similar_many(
                    tuples[i], [tuples[j] for j in later]
                )
                verified = [j for j, ok in zip(later, mask) if ok]
            for j in verified:
                yield base + i, base + j

    def neighbours_many(
        self, points: "PointSet | Sequence[Sequence[float]]"
    ) -> List[List[int]]:
        """Return, per probe point, the added input-row indices within eps.

        This is the batched FindCandidateGroups probe (Procedure 8) exposed
        publicly: probes are answered with the grouper's access method (window
        query + exact verification for L2) *without* adding the probe points.
        External batch consumers use it to join incoming points against an
        already-grouped set through whatever index the grouper maintains
        (the columnar alternative is :meth:`PointSet.cross_within`, which the
        streaming subsystem's cross-epoch discovery is built on).
        """
        ps = PointSet.from_any(points)
        if len(ps) == 0:
            return []
        if not self._points:
            return [[] for _ in range(len(ps))]
        return self._find_neighbours_many(ps.to_tuples())

    def forest(self) -> "dict[int, int]":
        """Export the Union-Find forest built so far (element -> root).

        This is the shard result the parallel engine ships back from worker
        processes; see :meth:`repro.dstruct.union_find.UnionFind.export_forest`.
        """
        return self._uf.export_forest()

    def finalize(self) -> GroupingResult:
        """Return the grouping (connected components of the epsilon graph)."""
        groups = canonicalize_groups(self._uf.components().values())
        return GroupingResult(groups=groups, eliminated=[], points=list(self._points))

    @property
    def group_count(self) -> int:
        """Current number of groups (Union-Find components)."""
        return self._uf.component_count

    # ------------------------------------------------------------------
    # FindCandidateGroups (Procedure 8) — returns neighbouring point indices
    # ------------------------------------------------------------------

    def _find_neighbours(self, point: Point) -> List[int]:
        if self.strategy is SGBAnyStrategy.ALL_PAIRS:
            return [
                idx
                for idx, other in zip(self._indices, self._points)
                if self.predicate.similar(point, other)
            ]
        self._ensure_point_index()
        assert self._point_index is not None
        window = Rect.from_point(point, self.eps)
        hits = self._point_index.search(window)
        if self.predicate.metric is Metric.LINF:
            return hits
        # VerifyPoints: for L2 (and other metrics) the square window is only a
        # conservative filter; confirm with the exact distance.
        verified: List[int] = []
        for idx in hits:
            other = self._point_by_index[idx]
            if self.predicate.similar(point, other):
                verified.append(idx)
        return verified

    def _find_neighbours_many(self, points: Sequence[Point]) -> List[List[int]]:
        """Batched FindCandidateGroups: neighbour lists for many probes at once."""
        if self.strategy is SGBAnyStrategy.ALL_PAIRS:
            # Stage the prior points into one columnar block so similar_many
            # does not re-convert the whole list once per probe point.  The
            # points were validated when added, so no from_any revalidation.
            block: "Sequence[Point]" = self._points
            if _np is not None:
                block = _np.asarray(self._points, dtype=_np.float64)
            out: List[List[int]] = []
            for pt in points:
                mask = self.predicate.similar_many(pt, block)
                out.append([idx for idx, ok in zip(self._indices, mask) if ok])
            return out
        self._ensure_point_index()
        assert self._point_index is not None
        windows = [Rect.from_point(pt, self.eps) for pt in points]
        hit_lists = self._point_index.search_many(windows)
        if self.predicate.metric is Metric.LINF:
            return hit_lists
        out = []
        for pt, hits in zip(points, hit_lists):
            if not hits:
                out.append([])
                continue
            candidates = [self._point_by_index[idx] for idx in hits]
            mask = self.predicate.similar_many(pt, candidates)
            out.append([idx for idx, ok in zip(hits, mask) if ok])
        return out

    def _ensure_point_index(self) -> None:
        """Flush the unindexed tail left behind by ``add_batch`` calls.

        An empty R-tree takes the whole tail in one STR bulk load; a
        non-empty index absorbs it incrementally, so repeated batches cost
        the same O(k log n) as the scalar path rather than a full rebuild
        per batch.
        """
        if self._point_index is None or self._indexed_upto == len(self._points):
            return
        pending_points = self._points[self._indexed_upto :]
        pending_indices = self._indices[self._indexed_upto :]
        rects = [Rect.from_point(pt) for pt in pending_points]
        index = self._point_index
        if len(index) == 0:
            # Whole-input batch: one bulk load (STR-packed for the R-tree).
            index.load(rects, pending_indices)
        else:
            for rect, idx in zip(rects, pending_indices):
                index.insert(rect, idx)
        self._indexed_upto = len(self._points)


def sgb_any_grouping(
    points: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    strategy: "SGBAnyStrategy | str" = SGBAnyStrategy.INDEX,
    index_factory: Optional[IndexFactory] = None,
    batch: bool = True,
    workers: "Optional[int | str]" = None,
) -> GroupingResult:
    """Group ``points`` with the SGB-Any operator and return the result.

    Mirrors the SQL clause ``GROUP BY ... DISTANCE-TO-ANY <metric> WITHIN eps``.
    ``batch=False`` forces the scalar point-at-a-time reference path; the two
    paths produce identical results (enforced by the parity test suite).

    ``workers`` routes the batch path through the sharded parallel engine
    (``repro.engine``): ``N > 1`` forces up to N worker processes, while
    ``0`` / ``"auto"`` — or ``None`` with no numeric ``SGB_WORKERS`` in the
    environment — delegates the mode choice to the cost-based planner
    (:mod:`repro.engine.cost`), which goes parallel only when the statistics
    say it pays and records its choice on ``result.plan``.  The parallel
    result is identical to the serial one after canonical relabelling.  An
    explicit ``index_factory`` pins the run to the in-process path so index
    ablations measure the access method they name.
    """
    from repro.engine.cost import planner_delegated
    from repro.engine.planner import resolve_workers

    plannable = (
        batch
        and index_factory is None
        # An explicit non-default strategy pins the in-process path: the
        # engine's shard-local grouping is the INDEX/grid pipeline, and a
        # caller comparing strategies must measure the one they named.
        and SGBAnyStrategy.parse(strategy) is SGBAnyStrategy.INDEX
    )
    if plannable and planner_delegated(workers):
        # Cost-based route: statistics + calibrated formulas pick the mode.
        # Advisory about time only — every candidate is result-identical.
        from repro.engine.cost import plan_sgb_any
        from repro.engine.stats import collect_stats

        ps = PointSet.from_any(points)
        plan = plan_sgb_any(collect_stats(ps), PointSet._check_eps(eps))
        if plan.mode == "sharded":
            from repro.engine.workers import sgb_any_sharded

            result = sgb_any_sharded(
                ps, eps=eps, metric=metric, workers=plan.workers, shards=plan.shards
            )
        else:
            grouper = SGBAnyGrouper(eps=eps, metric=metric, strategy=strategy)
            grouper.add_batch(ps)
            result = grouper.finalize()
        result.plan = plan
        return result
    if plannable and resolve_workers(workers) > 1:
        from repro.engine.workers import sgb_any_sharded

        return sgb_any_sharded(points, eps=eps, metric=metric, workers=workers)
    grouper = SGBAnyGrouper(
        eps=eps, metric=metric, strategy=strategy, index_factory=index_factory
    )
    if batch:
        grouper.add_batch(points)
    else:
        grouper.add_all(points)
    return grouper.finalize()
