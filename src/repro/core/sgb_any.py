"""SGB-Any: distance-to-any (connectivity) similarity grouping (paper Section 7).

A point joins a group when it is within ``eps`` of *at least one* member; a
point close to several groups causes those groups to merge.  The output is
therefore the set of connected components of the epsilon-neighbourhood graph.

Two strategies are provided, matching the paper's evaluation:

* ``ALL_PAIRS`` — compare the incoming point against every processed point
  (quadratic).
* ``INDEX``     — Procedure 8: an on-the-fly spatial index (``Points_IX``,
  an R-tree by default) answers the epsilon window query, and a Union-Find
  forest (Procedure 9 / ``MergeGroupsInsert``) tracks existing, new, and
  merged groups; O(n log n) on average.

For the L2 metric the window query is refined with an exact distance check
(the ``VerifyPoints`` step of Procedure 8).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import Rect
from repro.core.result import GroupingResult
from repro.dstruct.union_find import UnionFind
from repro.exceptions import InvalidParameterError
from repro.spatial.base import SpatialIndex
from repro.spatial.rtree import RTree

Point = Tuple[float, ...]

__all__ = ["SGBAnyStrategy", "SGBAnyGrouper", "sgb_any_grouping"]


class SGBAnyStrategy(Enum):
    """Neighbour discovery strategy used by SGB-Any."""

    ALL_PAIRS = "all-pairs"
    INDEX = "index"

    @staticmethod
    def parse(value: "SGBAnyStrategy | str") -> "SGBAnyStrategy":
        """Resolve a strategy from an enum member or its name."""
        if isinstance(value, SGBAnyStrategy):
            return value
        if isinstance(value, str):
            key = value.strip().lower().replace("_", "-")
            aliases = {
                "all-pairs": SGBAnyStrategy.ALL_PAIRS,
                "naive": SGBAnyStrategy.ALL_PAIRS,
                "index": SGBAnyStrategy.INDEX,
                "rtree": SGBAnyStrategy.INDEX,
                "on-the-fly-index": SGBAnyStrategy.INDEX,
            }
            if key in aliases:
                return aliases[key]
        raise InvalidParameterError(f"unknown SGB-Any strategy: {value!r}")


IndexFactory = Callable[[], SpatialIndex]


class SGBAnyGrouper:
    """Stateful SGB-Any operator: feed points one at a time, then finalise."""

    def __init__(
        self,
        eps: float,
        metric: "Metric | str" = Metric.L2,
        strategy: "SGBAnyStrategy | str" = SGBAnyStrategy.INDEX,
        index_factory: Optional[IndexFactory] = None,
    ) -> None:
        self.predicate = SimilarityPredicate(resolve_metric(metric), eps)
        self.eps = float(eps)
        self.strategy = SGBAnyStrategy.parse(strategy)
        self._index_factory = index_factory or (lambda: RTree(max_entries=8))
        self._points: List[Point] = []
        self._indices: List[int] = []
        self._point_by_index: dict[int, Point] = {}
        self._uf = UnionFind()
        self._point_index: Optional[SpatialIndex] = (
            self._index_factory() if self.strategy is SGBAnyStrategy.INDEX else None
        )

    # ------------------------------------------------------------------
    # public incremental interface
    # ------------------------------------------------------------------

    def add(self, point: Sequence[float], index: Optional[int] = None) -> None:
        """Process one input point (Procedure 7 body)."""
        pt: Point = tuple(float(c) for c in point)
        if index is None:
            index = len(self._points)
        neighbours = self._find_neighbours(pt)
        self._uf.add(index)
        self._points.append(pt)
        self._indices.append(index)
        self._point_by_index[index] = pt
        # MergeGroupsInsert: union the point with every neighbouring group.
        for other in neighbours:
            self._uf.union(index, other)
        if self._point_index is not None:
            self._point_index.insert(Rect.from_point(pt), index)

    def add_all(self, points: Iterable[Sequence[float]]) -> None:
        """Process points in arrival order."""
        for point in points:
            self.add(point)

    def finalize(self) -> GroupingResult:
        """Return the grouping (connected components of the epsilon graph)."""
        components = self._uf.components()
        groups = [sorted(members) for members in components.values()]
        groups.sort(key=lambda members: members[0])
        return GroupingResult(groups=groups, eliminated=[], points=list(self._points))

    @property
    def group_count(self) -> int:
        """Current number of groups (Union-Find components)."""
        return self._uf.component_count

    # ------------------------------------------------------------------
    # FindCandidateGroups (Procedure 8) — returns neighbouring point indices
    # ------------------------------------------------------------------

    def _find_neighbours(self, point: Point) -> List[int]:
        if self.strategy is SGBAnyStrategy.ALL_PAIRS:
            return [
                idx
                for idx, other in zip(self._indices, self._points)
                if self.predicate.similar(point, other)
            ]
        assert self._point_index is not None
        window = Rect.from_point(point, self.eps)
        hits = self._point_index.search(window)
        if self.predicate.metric is Metric.LINF:
            return hits
        # VerifyPoints: for L2 (and other metrics) the square window is only a
        # conservative filter; confirm with the exact distance.
        verified: List[int] = []
        for idx in hits:
            other = self._point_by_index[idx]
            if self.predicate.similar(point, other):
                verified.append(idx)
        return verified


def sgb_any_grouping(
    points: Sequence[Sequence[float]],
    eps: float,
    metric: "Metric | str" = Metric.L2,
    strategy: "SGBAnyStrategy | str" = SGBAnyStrategy.INDEX,
    index_factory: Optional[IndexFactory] = None,
) -> GroupingResult:
    """Group ``points`` with the SGB-Any operator and return the result.

    Mirrors the SQL clause ``GROUP BY ... DISTANCE-TO-ANY <metric> WITHIN eps``.
    """
    grouper = SGBAnyGrouper(
        eps=eps, metric=metric, strategy=strategy, index_factory=index_factory
    )
    grouper.add_all(points)
    return grouper.finalize()
