"""Columnar point-set abstraction backing the batched SGB execution path.

The SGB operators historically processed one ``Tuple[float, ...]`` at a time.
A :class:`PointSet` holds a whole batch of d-dimensional points in columnar
form and exposes batched primitives:

* :meth:`PointSet.pairwise_within` — every index pair within ``eps`` under a
  metric (the epsilon-neighbourhood edges), found with a uniform eps-grid so
  neither backend ever materialises the full O(n^2) distance matrix.  This
  is the kernel behind the SGB-Any batch path.
* :meth:`PointSet.window_mask` — boolean membership mask for a window query.
* :meth:`PointSet.verify_within` — bulk exact-distance verification of index
  window hits against a probe point (the ``VerifyPoints`` step of Procedure
  8; the groupers route the equivalent check through
  ``SimilarityPredicate.similar_many``, which shares the same kernel).
* :meth:`PointSet.bbox` — minimum bounding rectangle of the batch.

``window_mask``/``verify_within``/``bbox`` are public building blocks for
external batch consumers (sharding, streaming — see ROADMAP) and share the
``pairwise_measures`` kernel with the predicate layer, so the eps decisions
agree bit-for-bit everywhere.

Two interchangeable backends exist: a NumPy array backend (used automatically
when ``numpy`` is importable) and a pure-Python list-of-tuples fallback, so
the library stays dependency-optional.  Both backends produce *bit-identical*
predicate decisions: the vectorised kernels accumulate coordinate terms in the
same order as the scalar loops in :mod:`repro.core.distance`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric, within_eps
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import Rect
from repro.exceptions import DimensionalityError, InvalidParameterError

try:  # NumPy is optional; the pure-Python backend covers its absence.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend tests
    _np = None

Point = Tuple[float, ...]

__all__ = [
    "PointSet",
    "PythonPointSet",
    "NumpyPointSet",
    "HAVE_NUMPY",
    "ensure_finite",
    "is_empty_batch",
]


def ensure_finite(pt: "Sequence[float]") -> None:
    """Reject NaN/inf coordinates with a uniform, clear error."""
    for c in pt:
        if not math.isfinite(c):
            raise InvalidParameterError(
                f"point {tuple(pt)!r} has a non-finite coordinate; "
                "NaN and infinity are not valid point coordinates"
            )


def is_empty_batch(points: object) -> bool:
    """True when ``points`` is a sized container holding zero points.

    Both groupers use this to make a degenerate ``add_batch`` a strict no-op
    — no :class:`PointSet` normalisation, no index bookkeeping — before any
    backend dispatch happens.
    """
    try:
        return len(points) == 0  # type: ignore[arg-type]
    except TypeError:
        return False

HAVE_NUMPY = _np is not None

#: Row-block size bounding the memory of the vectorised pair search
#: (``_BLOCK * bucket_size`` distances at a time).
_BLOCK = 512

#: Above this dimensionality ``pairwise_within`` switches from the eps-grid
#: sweep to blocked brute force: the grid visits up to 3^d neighbour offsets
#: per cell, which explodes combinatorially while the cells stop pruning
#: anything (curse of dimensionality).
_PAIRWISE_GRID_MAX_DIMS = 6


def _validate_tuples(points: Iterable[Sequence[float]]) -> List[Point]:
    """Normalise to a list of float tuples, checking dims and finiteness."""
    out: List[Point] = []
    dims: Optional[int] = None
    for p in points:
        pt = tuple(float(c) for c in p)
        if dims is None:
            dims = len(pt)
            if dims == 0:
                raise InvalidParameterError("points must have at least one dimension")
        elif len(pt) != dims:
            raise DimensionalityError(
                f"inconsistent point dimensionality: expected {dims}, got {len(pt)}"
            )
        ensure_finite(pt)
        out.append(pt)
    return out


class PointSet:
    """A batch of d-dimensional points stored column-friendly.

    Use the factories :meth:`from_any` / :meth:`from_columns` rather than the
    backend constructors; they auto-select the NumPy backend when available
    (``backend="python"`` forces the fallback, which the equivalence tests
    use to cross-check the two implementations).
    """

    # -- factories ---------------------------------------------------------

    @staticmethod
    def from_any(
        points: "PointSet | Sequence[Sequence[float]]",
        backend: Optional[str] = None,
    ) -> "PointSet":
        """Build a :class:`PointSet` from any reasonable point container.

        NumPy ``(n, d)`` arrays are adopted zero-copy when they are already
        ``float64``; other inputs are normalised once.  Non-finite coordinates
        (NaN / infinity) are rejected with :class:`InvalidParameterError`.
        """
        if isinstance(points, PointSet):
            if backend is None or points.backend == backend:
                return points
            if backend == "python":
                return PythonPointSet(points.to_tuples())
            return NumpyPointSet._from_validated_tuples(points.to_tuples())
        if backend is not None and backend not in ("python", "numpy"):
            raise InvalidParameterError(f"unknown PointSet backend: {backend!r}")
        use_numpy = HAVE_NUMPY if backend is None else backend == "numpy"
        if backend == "numpy" and not HAVE_NUMPY:
            raise InvalidParameterError("numpy backend requested but numpy is missing")
        if HAVE_NUMPY and isinstance(points, _np.ndarray):
            if points.ndim != 2:
                raise DimensionalityError(
                    f"point array must be 2-D (n, d), got shape {points.shape}"
                )
            if points.shape[0] > 0 and points.shape[1] == 0:
                raise InvalidParameterError("points must have at least one dimension")
            arr = _np.asarray(points, dtype=_np.float64)
            if arr.size and not bool(_np.isfinite(arr).all()):
                raise InvalidParameterError(
                    "point array has non-finite coordinates; "
                    "NaN and infinity are not valid point coordinates"
                )
            if use_numpy:
                return NumpyPointSet(arr)
            return PythonPointSet([tuple(row) for row in arr.tolist()])
        tuples = _validate_tuples(points)
        if use_numpy:
            return NumpyPointSet._from_validated_tuples(tuples)
        return PythonPointSet(tuples)

    @staticmethod
    def adopt_validated(
        tuples: "List[Point]", backend: Optional[str] = None
    ) -> "PointSet":
        """Adopt a list of already-validated float tuples without re-checking.

        For callers that hold tuples a previous :meth:`from_any` produced
        (the streaming window ring re-presents admitted points many times);
        skips the dimensionality/finiteness sweep that validation already
        performed.  Never hand this unvalidated data.
        """
        use_numpy = HAVE_NUMPY if backend is None else backend == "numpy"
        if use_numpy:
            if not HAVE_NUMPY:
                raise InvalidParameterError(
                    "numpy backend requested but numpy is missing"
                )
            return NumpyPointSet._from_validated_tuples(tuples)
        return PythonPointSet._from_validated(tuples)

    @staticmethod
    def concat(
        sets: "Sequence[PointSet]", backend: Optional[str] = None
    ) -> "PointSet":
        """Concatenate already-validated point sets without revalidation.

        The streaming window ring uses this to present several columnar
        epochs as one probe target; the members were validated when first
        admitted, so the concatenation is a pure structural merge (a single
        ``np.concatenate`` on the NumPy backend).
        """
        parts = [s for s in sets if len(s) > 0]
        if not parts:
            return PointSet.from_any([], backend=backend)
        dims = parts[0].dims
        for part in parts[1:]:
            if part.dims != dims:
                raise DimensionalityError(
                    f"cannot concat point sets of {dims} and {part.dims} dimensions"
                )
        if backend is None:
            backend = parts[0].backend
        if backend == "numpy":
            if not HAVE_NUMPY:
                raise InvalidParameterError(
                    "numpy backend requested but numpy is missing"
                )
            arrays = [
                part.array
                if isinstance(part, NumpyPointSet)
                else _np.asarray(part.to_tuples(), dtype=_np.float64)
                for part in parts
            ]
            return NumpyPointSet(arrays[0] if len(arrays) == 1 else _np.concatenate(arrays))
        out: List[Point] = []
        for part in parts:
            out.extend(part.to_tuples())
        return PythonPointSet._from_validated(out)

    @staticmethod
    def from_columns(
        columns: Sequence[Sequence[float]], backend: Optional[str] = None
    ) -> "PointSet":
        """Build a :class:`PointSet` from per-dimension column vectors."""
        if len(columns) == 0:
            raise InvalidParameterError("at least one column is required")
        n = len(columns[0])
        for col in columns[1:]:
            if len(col) != n:
                raise InvalidParameterError("columns must all have the same length")
        if HAVE_NUMPY and (backend is None or backend == "numpy"):
            arr = _np.column_stack(
                [_np.asarray(col, dtype=_np.float64) for col in columns]
            ) if n else _np.empty((0, len(columns)), dtype=_np.float64)
            if arr.size and not bool(_np.isfinite(arr).all()):
                raise InvalidParameterError(
                    "point columns have non-finite coordinates; "
                    "NaN and infinity are not valid point coordinates"
                )
            return NumpyPointSet(arr)
        return PointSet.from_any(list(zip(*columns)) if n else [], backend=backend)

    # -- abstract protocol -------------------------------------------------

    backend: str = ""

    def __len__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def dims(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def point(self, i: int) -> Point:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_tuples(self) -> List[Point]:  # pragma: no cover - overridden
        raise NotImplementedError

    def window_mask(self, rect: Rect) -> List[bool]:  # pragma: no cover
        raise NotImplementedError

    def verify_within(
        self,
        point: Sequence[float],
        eps: float,
        metric: "Metric | str" = Metric.L2,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:  # pragma: no cover - overridden
        raise NotImplementedError

    def pairwise_within(
        self, eps: float, metric: "Metric | str" = Metric.L2
    ) -> Iterator[Tuple[int, int]]:  # pragma: no cover - overridden
        raise NotImplementedError

    def cross_within(
        self,
        other: "PointSet | Sequence[Sequence[float]]",
        eps: float,
        metric: "Metric | str" = Metric.L2,
    ) -> Iterator[Tuple[int, int]]:  # pragma: no cover - overridden
        """Yield every ``(i, j)`` with ``self[i]`` within ``eps`` of ``other[j]``.

        The cross-set companion of :meth:`pairwise_within`: the same uniform
        eps-grid prunes the candidate pairs (falling back to blocked brute
        force past :data:`_PAIRWISE_GRID_MAX_DIMS` dimensions), and the same
        ``within_eps`` kernel makes the decisions, so the edge set agrees
        bit-for-bit with the scalar predicate.  This is the kernel behind the
        streaming subsystem's cross-epoch edge discovery: an arriving
        micro-batch (``other``) is joined against each older live epoch
        (``self``) without any per-tuple index probing.
        """
        raise NotImplementedError

    # -- shared conveniences ----------------------------------------------

    def __iter__(self) -> Iterator[Point]:
        for i in range(len(self)):
            yield self.point(i)

    def __getitem__(self, i: int) -> Point:
        return self.point(i)

    def bbox(self) -> Rect:
        """Return the minimum bounding rectangle of the set (non-empty only)."""
        if len(self) == 0:
            raise InvalidParameterError("cannot build a bounding box of zero points")
        return Rect.from_points(self.to_tuples())

    @staticmethod
    def _check_eps(eps: float) -> float:
        eps = float(eps)
        if eps <= 0:
            raise InvalidParameterError(f"eps must be positive, got {eps}")
        return eps


class PythonPointSet(PointSet):
    """Pure-Python fallback backend: a list of float tuples."""

    backend = "python"

    def __init__(self, points: Sequence[Sequence[float]]) -> None:
        self._points: List[Point] = _validate_tuples(points)

    @classmethod
    def _from_validated(cls, tuples: List[Point]) -> "PythonPointSet":
        """Adopt already-validated tuples without re-checking them."""
        out = cls.__new__(cls)
        out._points = tuples
        return out

    def __len__(self) -> int:
        return len(self._points)

    @property
    def dims(self) -> int:
        return len(self._points[0]) if self._points else 0

    def point(self, i: int) -> Point:
        return self._points[i]

    def to_tuples(self) -> List[Point]:
        return list(self._points)

    def bbox(self) -> Rect:
        if not self._points:
            raise InvalidParameterError("cannot build a bounding box of zero points")
        return Rect.from_points(self._points)

    def window_mask(self, rect: Rect) -> List[bool]:
        return [rect.contains_point(p) for p in self._points]

    def verify_within(
        self,
        point: Sequence[float],
        eps: float,
        metric: "Metric | str" = Metric.L2,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:
        predicate = SimilarityPredicate(resolve_metric(metric), self._check_eps(eps))
        pt = tuple(float(c) for c in point)
        idxs = range(len(self._points)) if candidates is None else candidates
        return [i for i in idxs if predicate.similar(pt, self._points[i])]

    def pairwise_within(
        self, eps: float, metric: "Metric | str" = Metric.L2
    ) -> Iterator[Tuple[int, int]]:
        eps = self._check_eps(eps)
        predicate = SimilarityPredicate(resolve_metric(metric), eps)
        pts = self._points
        if not pts:
            return
        d = len(pts[0])
        if d > _PAIRWISE_GRID_MAX_DIMS:
            for i in range(len(pts)):
                pi = pts[i]
                for j in range(i + 1, len(pts)):
                    if predicate.similar(pi, pts[j]):
                        yield i, j
            return
        buckets: Dict[Tuple[int, ...], List[int]] = {}
        for i, p in enumerate(pts):
            buckets.setdefault(tuple(math.floor(c / eps) for c in p), []).append(i)
        offsets = _half_space_offsets(d)
        for key, members in buckets.items():
            # Same-cell pairs.
            for a in range(len(members)):
                i = members[a]
                pi = pts[i]
                for b in range(a + 1, len(members)):
                    j = members[b]
                    if predicate.similar(pi, pts[j]):
                        yield i, j
            # Pairs with the lexicographically-greater neighbour cells.
            for off in offsets:
                other = buckets.get(tuple(k + o for k, o in zip(key, off)))
                if not other:
                    continue
                for i in members:
                    pi = pts[i]
                    for j in other:
                        if predicate.similar(pi, pts[j]):
                            yield i, j

    def cross_within(
        self,
        other: "PointSet | Sequence[Sequence[float]]",
        eps: float,
        metric: "Metric | str" = Metric.L2,
    ) -> Iterator[Tuple[int, int]]:
        eps = self._check_eps(eps)
        predicate = SimilarityPredicate(resolve_metric(metric), eps)
        probes = PointSet.from_any(other, backend="python").to_tuples()
        pts = self._points
        if not pts or not probes:
            return
        if len(probes[0]) != len(pts[0]):
            raise DimensionalityError(
                f"cross_within dimensionality mismatch: {len(pts[0])} vs "
                f"{len(probes[0])}"
            )
        d = len(pts[0])
        if d > _PAIRWISE_GRID_MAX_DIMS:
            for j, pj in enumerate(probes):
                for i, pi in enumerate(pts):
                    if predicate.similar(pi, pj):
                        yield i, j
            return
        buckets: Dict[Tuple[int, ...], List[int]] = {}
        for i, p in enumerate(pts):
            buckets.setdefault(tuple(math.floor(c / eps) for c in p), []).append(i)
        offsets = _neighbourhood_offsets(d)
        for j, pj in enumerate(probes):
            key = tuple(math.floor(c / eps) for c in pj)
            for off in offsets:
                members = buckets.get(tuple(k + o for k, o in zip(key, off)))
                if not members:
                    continue
                for i in members:
                    if predicate.similar(pts[i], pj):
                        yield i, j


class NumpyPointSet(PointSet):
    """NumPy-backed columnar backend (auto-selected when numpy imports)."""

    backend = "numpy"

    def __init__(self, array: "Any") -> None:
        if _np is None:  # pragma: no cover - guarded by the factory
            raise InvalidParameterError("numpy backend requested but numpy is missing")
        arr = _np.asarray(array, dtype=_np.float64)
        if arr.ndim != 2:
            raise DimensionalityError(
                f"point array must be 2-D (n, d), got shape {arr.shape}"
            )
        self._array = arr

    @classmethod
    def _from_validated_tuples(cls, tuples: List[Point]) -> "NumpyPointSet":
        if not tuples:
            return cls(_np.empty((0, 0), dtype=_np.float64))
        return cls(_np.asarray(tuples, dtype=_np.float64))

    @property
    def array(self) -> "Any":
        """The underlying ``(n, d)`` float64 array (shared, do not mutate)."""
        return self._array

    def __len__(self) -> int:
        return self._array.shape[0]

    @property
    def dims(self) -> int:
        return self._array.shape[1]

    def point(self, i: int) -> Point:
        return tuple(self._array[i].tolist())

    def to_tuples(self) -> List[Point]:
        return [tuple(row) for row in self._array.tolist()]

    def bbox(self) -> Rect:
        if self._array.shape[0] == 0:
            raise InvalidParameterError("cannot build a bounding box of zero points")
        return Rect(
            tuple(self._array.min(axis=0).tolist()),
            tuple(self._array.max(axis=0).tolist()),
        )

    def window_mask(self, rect: Rect) -> "Any":
        if self._array.shape[0] == 0:
            return _np.zeros(0, dtype=bool)
        if len(rect.low) != self.dims:
            raise DimensionalityError("window/point-set dimensionality mismatch")
        low = _np.asarray(rect.low)
        high = _np.asarray(rect.high)
        return ((self._array >= low) & (self._array <= high)).all(axis=1)

    def verify_within(
        self,
        point: Sequence[float],
        eps: float,
        metric: "Metric | str" = Metric.L2,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:
        eps = self._check_eps(eps)
        metric = resolve_metric(metric)
        if self._array.shape[0] == 0:
            return []
        probe = _np.asarray([tuple(float(c) for c in point)], dtype=_np.float64)
        if candidates is None:
            mask = within_eps(probe, self._array, metric, eps)[0]
            return _np.nonzero(mask)[0].tolist()
        cand = _np.asarray(list(candidates), dtype=_np.intp)
        if cand.size == 0:
            return []
        mask = within_eps(probe, self._array[cand], metric, eps)[0]
        return cand[mask].tolist()

    def pairwise_within(
        self, eps: float, metric: "Metric | str" = Metric.L2
    ) -> Iterator[Tuple[int, int]]:
        eps = self._check_eps(eps)
        metric = resolve_metric(metric)
        arr = self._array
        n = arr.shape[0]
        if n < 2:
            return
        if arr.shape[1] > _PAIRWISE_GRID_MAX_DIMS:
            # Blocked brute force: rows [start, start+block) against every
            # later row; still vectorised, no 3^d offset enumeration.
            for start in range(0, n - 1, _BLOCK):
                sub = _np.arange(start, min(start + _BLOCK, n))
                mask = within_eps(arr[sub], arr, metric, eps)
                gi, gj = _np.nonzero(mask)
                gi = sub[gi]
                keep = gi < gj
                for i, j in zip(gi[keep].tolist(), gj[keep].tolist()):
                    yield i, j
            return
        cells = _np.floor(arr / eps).astype(_np.int64)
        uniq, inverse = _np.unique(cells, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        order = _np.argsort(inverse, kind="stable")
        counts = _np.bincount(inverse, minlength=uniq.shape[0])
        splits = _np.split(order, _np.cumsum(counts)[:-1])
        bucket_of = {tuple(c): idx for c, idx in zip(uniq.tolist(), splits)}
        offsets = _half_space_offsets(arr.shape[1])
        for key, members in bucket_of.items():
            yield from self._cell_pairs(members, members, eps, metric, same=True)
            for off in offsets:
                other = bucket_of.get(tuple(k + o for k, o in zip(key, off)))
                if other is not None:
                    yield from self._cell_pairs(members, other, eps, metric, same=False)

    def cross_within(
        self,
        other: "PointSet | Sequence[Sequence[float]]",
        eps: float,
        metric: "Metric | str" = Metric.L2,
    ) -> Iterator[Tuple[int, int]]:
        eps = self._check_eps(eps)
        metric = resolve_metric(metric)
        probes_ps = PointSet.from_any(other, backend="numpy")
        assert isinstance(probes_ps, NumpyPointSet)
        arr = self._array
        parr = probes_ps._array
        if arr.shape[0] == 0 or parr.shape[0] == 0:
            return
        if arr.shape[1] != parr.shape[1]:
            raise DimensionalityError(
                f"cross_within dimensionality mismatch: {arr.shape[1]} vs "
                f"{parr.shape[1]}"
            )
        if arr.shape[1] > _PAIRWISE_GRID_MAX_DIMS:
            # Blocked brute force over the probe rows.
            for start in range(0, parr.shape[0], _BLOCK):
                block = parr[start : start + _BLOCK]
                mask = within_eps(block, arr, metric, eps)
                pj, si = _np.nonzero(mask)
                for i, j in zip(si.tolist(), (pj + start).tolist()):
                    yield i, j
            return
        # Bucket this set on the eps-grid, group the probes by their cell, and
        # verify each probe cell against the 3^d neighbouring buckets.
        cells = _np.floor(arr / eps).astype(_np.int64)
        uniq, inverse = _np.unique(cells, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        order = _np.argsort(inverse, kind="stable")
        counts = _np.bincount(inverse, minlength=uniq.shape[0])
        splits = _np.split(order, _np.cumsum(counts)[:-1])
        bucket_of = {tuple(c): idx for c, idx in zip(uniq.tolist(), splits)}
        pcells = _np.floor(parr / eps).astype(_np.int64)
        puniq, pinverse = _np.unique(pcells, axis=0, return_inverse=True)
        pinverse = pinverse.ravel()
        porder = _np.argsort(pinverse, kind="stable")
        pcounts = _np.bincount(pinverse, minlength=puniq.shape[0])
        psplits = _np.split(porder, _np.cumsum(pcounts)[:-1])
        offsets = _neighbourhood_offsets(arr.shape[1])
        for key, probe_idx in zip(puniq.tolist(), psplits):
            # One verification call per probe cell: concatenate the Moore
            # neighbourhood's buckets instead of checking them one by one.
            neighbours = [
                bucket
                for off in offsets
                if (bucket := bucket_of.get(tuple(k + o for k, o in zip(key, off))))
                is not None
            ]
            if not neighbours:
                continue
            members = (
                neighbours[0] if len(neighbours) == 1 else _np.concatenate(neighbours)
            )
            candidates = arr[members]
            for start in range(0, probe_idx.shape[0], _BLOCK):
                sub = probe_idx[start : start + _BLOCK]
                mask = within_eps(parr[sub], candidates, metric, eps)
                pj, si = _np.nonzero(mask)
                gi = members[si]
                gj = sub[pj]
                for i, j in zip(gi.tolist(), gj.tolist()):
                    yield i, j

    def _cell_pairs(self, a_idx, b_idx, eps: float, metric: Metric, same: bool):
        """Yield the within-eps (i, j) pairs between two index buckets, blocked."""
        arr = self._array
        pb = arr[b_idx]
        for start in range(0, a_idx.shape[0], _BLOCK):
            sub = a_idx[start : start + _BLOCK]
            mask = within_eps(arr[sub], pb, metric, eps)
            ai, bi = _np.nonzero(mask)
            gi = sub[ai]
            gj = b_idx[bi]
            if same:
                keep = gi < gj
                gi = gi[keep]
                gj = gj[keep]
            for i, j in zip(gi.tolist(), gj.tolist()):
                yield i, j


def _neighbourhood_offsets(d: int) -> List[Tuple[int, ...]]:
    """All cell offsets in {-1,0,1}^d, origin included.

    ``cross_within`` joins two *distinct* point sets, so there is no pair
    symmetry to exploit: every probe cell must look at its full Moore
    neighbourhood in the other set's grid.
    """
    out: List[Tuple[int, ...]] = [()]
    for _ in range(d):
        out = [prefix + (o,) for prefix in out for o in (-1, 0, 1)]
    return out


def _half_space_offsets(d: int) -> List[Tuple[int, ...]]:
    """Neighbour-cell offsets in {-1,0,1}^d that are lexicographically positive.

    Visiting only the positive half-space means every unordered cell pair is
    scanned exactly once (the origin offset, handled separately, covers
    same-cell pairs).
    """
    out: List[Tuple[int, ...]] = []

    def recurse(prefix: Tuple[int, ...]) -> None:
        if len(prefix) == d:
            if any(prefix) and prefix > (0,) * d:
                out.append(prefix)
            return
        for o in (-1, 0, 1):
            recurse(prefix + (o,))

    recurse(())
    return out
