"""Content fingerprints for point batches and grouping results.

The tiered result cache (:mod:`repro.storage.cache`) is *content-addressed*:
two runs over bit-identical input data with the same operator parameters map
to the same cache key, no matter which process, backend, or session produced
them.  The fingerprint of a batch is a BLAKE2b digest over its shape and the
little-endian IEEE-754 bytes of every coordinate — the same bytes regardless
of whether the batch lives in a NumPy array or a list of Python tuples, so
both :class:`~repro.core.pointset.PointSet` backends agree on every digest.

Mutable relational tables never re-hash their columns per query: they memoise
the digest keyed by their mutation ``version`` counter (see
:meth:`repro.minidb.table.Table.point_fingerprint`), which makes the version
counter the cache's invalidation token — any insert or truncate bumps it, the
memo misses, and the fresh content produces a fresh key.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence

from repro.core.pointset import PointSet

try:  # optional fast path; the struct-based packing covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend
    _np = None

__all__ = ["fingerprint_points", "fingerprint_columns", "fingerprint_bytes"]

#: Digest size in bytes; 16 (128 bits) is far beyond collision concerns for a
#: local result cache while keeping keys short enough for filenames.
_DIGEST_SIZE = 16


def fingerprint_bytes(*chunks: bytes) -> str:
    """Hex BLAKE2b digest over the concatenation of ``chunks``."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def _pack_rows(rows: Sequence[Sequence[float]], dims: int) -> bytes:
    """Row-major little-endian float64 bytes of ``rows``."""
    packer = struct.Struct("<%dd" % dims) if dims else None
    if packer is None:
        return b""
    return b"".join(packer.pack(*row) for row in rows)


def fingerprint_points(points: "PointSet | Sequence[Sequence[float]]") -> str:
    """Content fingerprint of a point batch.

    The digest covers ``(count, dims)`` and the row-major float64 coordinate
    bytes, so batches of different shapes can never collide through
    coincidentally equal flat payloads.  NumPy-backed sets hash their array
    buffer directly; the result is byte-identical to the struct-packed tuples
    of the pure-Python backend.
    """
    ps = points if isinstance(points, PointSet) else PointSet.from_any(points)
    n = len(ps)
    dims = ps.dims if n else 0
    header = struct.pack("<qq", n, dims)
    if n == 0:
        return fingerprint_bytes(header)
    array = getattr(ps, "array", None)
    if _np is not None and array is not None:
        payload = _np.ascontiguousarray(array, dtype="<f8").tobytes()
        return fingerprint_bytes(header, payload)
    return fingerprint_bytes(header, _pack_rows(ps.to_tuples(), dims))


def fingerprint_columns(columns: Sequence[Sequence[float]]) -> str:
    """Content fingerprint of column vectors, equal to the row-major digest.

    ``fingerprint_columns(cols) == fingerprint_points(zip(*cols))`` — the
    minidb executors buffer grouping attributes column-wise and must land on
    the same key a caller hashing the equivalent point rows would produce.
    """
    dims = len(columns)
    n = len(columns[0]) if dims else 0
    header = struct.pack("<qq", n, dims)
    if n == 0:
        return fingerprint_bytes(header)
    if _np is not None:
        stacked = _np.ascontiguousarray(
            _np.column_stack([_np.asarray(c, dtype="<f8") for c in columns])
        )
        return fingerprint_bytes(header, stacked.tobytes())
    rows = zip(*[[float(v) for v in column] for column in columns])
    return fingerprint_bytes(header, _pack_rows(list(rows), dims))
