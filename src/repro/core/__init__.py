"""Core SGB operators: distance metrics, predicates, SGB-All and SGB-Any.

The most convenient entry points are :func:`repro.core.sgb_all` and
:func:`repro.core.sgb_any`, which group plain point arrays.  The incremental
:class:`SGBAllGrouper` / :class:`SGBAnyGrouper` classes are what the
relational executor drives tuple-at-a-time.
"""

from repro.core.api import cluster_by, sgb_all, sgb_any, sgb_any_stream, sim_join
from repro.core.distance import Metric, chebyshev, euclidean, manhattan, minkowski
from repro.core.groups import Group
from repro.core.overlap import OverlapAction
from repro.core.pointset import PointSet
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import EpsAllRectangle, Rect
from repro.core.result import GroupingResult
from repro.core.sgb_all import SGBAllGrouper, SGBAllStrategy, sgb_all_grouping
from repro.core.sgb_any import SGBAnyGrouper, SGBAnyStrategy, sgb_any_grouping

__all__ = [
    "Metric",
    "OverlapAction",
    "PointSet",
    "SimilarityPredicate",
    "EpsAllRectangle",
    "Rect",
    "Group",
    "GroupingResult",
    "SGBAllGrouper",
    "SGBAllStrategy",
    "SGBAnyGrouper",
    "SGBAnyStrategy",
    "sgb_all",
    "sgb_any",
    "sgb_any_stream",
    "sim_join",
    "cluster_by",
    "sgb_all_grouping",
    "sgb_any_grouping",
    "euclidean",
    "chebyshev",
    "manhattan",
    "minkowski",
]
