"""Axis-aligned (hyper-)rectangles and the epsilon-All bounding rectangle.

Two kinds of rectangles appear in the SGB algorithms:

* A plain *minimum bounding rectangle* (:class:`Rect`) used by the R-tree and
  by the window queries of the indexed algorithms.
* The *epsilon-All bounding rectangle* (:class:`EpsAllRectangle`,
  Definition 5 in the paper): the region in which a new point is guaranteed
  (L-infinity) or likely (L2, conservative filter) to be within ``eps`` of
  every current member of a group.  It starts as a ``2*eps`` box centred on
  the first member and *shrinks* as members are added; it never shrinks below
  ``eps`` per side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import DimensionalityError, InvalidParameterError

Point = Sequence[float]

__all__ = ["Rect", "EpsAllRectangle", "point_rect", "union_rects"]


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned hyper-rectangle ``[low_i, high_i]`` per dimension.

    Immutable; all combination operations return new rectangles.
    """

    low: tuple[float, ...]
    high: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise DimensionalityError(
                f"low/high dimensionality mismatch: {len(self.low)} vs {len(self.high)}"
            )
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise InvalidParameterError(
                    f"rectangle has low > high on a dimension: {self.low} / {self.high}"
                )

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_point(point: Point, radius: float = 0.0) -> "Rect":
        """Build the box of half-side ``radius`` centred at ``point``."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius}")
        return Rect(
            tuple(c - radius for c in point),
            tuple(c + radius for c in point),
        )

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Build the minimum bounding rectangle of a non-empty point set."""
        points = list(points)
        if not points:
            raise InvalidParameterError("cannot build a rectangle from zero points")
        dims = len(points[0])
        low = [float("inf")] * dims
        high = [float("-inf")] * dims
        for p in points:
            if len(p) != dims:
                raise DimensionalityError("points with mixed dimensionality")
            for i, c in enumerate(p):
                if c < low[i]:
                    low[i] = c
                if c > high[i]:
                    high[i] = c
        return Rect(tuple(low), tuple(high))

    # -- geometry -------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.low)

    @property
    def center(self) -> tuple[float, ...]:
        """Centre point of the rectangle."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    @property
    def extents(self) -> tuple[float, ...]:
        """Side length in each dimension."""
        return tuple(hi - lo for lo, hi in zip(self.low, self.high))

    def area(self) -> float:
        """Return the (hyper-)volume of the rectangle."""
        result = 1.0
        for lo, hi in zip(self.low, self.high):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Return the sum of the side lengths (used by R-tree split heuristics)."""
        return sum(hi - lo for lo, hi in zip(self.low, self.high))

    def contains_point(self, point: Point) -> bool:
        """Return True if ``point`` lies inside (or on the border of) the rectangle."""
        low = self.low
        high = self.high
        if len(point) != len(low):
            raise DimensionalityError(
                f"point has {len(point)} dims, rectangle has {len(low)}"
            )
        for c, lo, hi in zip(point, low, high):
            if c < lo or c > hi:
                return False
        return True

    def contains_rect(self, other: "Rect") -> bool:
        """Return True if ``other`` is fully contained in this rectangle."""
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True if the two rectangles overlap (boundaries count)."""
        if other.dims != self.dims:
            raise DimensionalityError("rectangles with different dimensionality")
        for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high):
            if slo > ohi or olo > shi:
                return False
        return True

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the intersection rectangle, or None if they do not overlap."""
        if not self.intersects(other):
            return None
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        return Rect(low, high)

    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle containing both rectangles."""
        if other.dims != self.dims:
            raise DimensionalityError("rectangles with different dimensionality")
        return Rect(
            tuple(min(a, b) for a, b in zip(self.low, other.low)),
            tuple(max(a, b) for a, b in zip(self.high, other.high)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to include ``other`` (R-tree ChooseLeaf metric)."""
        return self.union(other).area() - self.area()

    def expand(self, point: Point) -> "Rect":
        """Return the smallest rectangle containing this rectangle and ``point``."""
        return self.union(Rect.from_point(point))

    def min_distance_to_point(self, point: Point) -> float:
        """Return the minimum Euclidean distance from ``point`` to the rectangle."""
        if len(point) != self.dims:
            raise DimensionalityError("point/rectangle dimensionality mismatch")
        total = 0.0
        for c, lo, hi in zip(point, self.low, self.high):
            if c < lo:
                d = lo - c
            elif c > hi:
                d = c - hi
            else:
                d = 0.0
            total += d * d
        return total ** 0.5


def point_rect(point: Point) -> Rect:
    """Return the degenerate rectangle covering exactly one point."""
    return Rect.from_point(point, 0.0)


def union_rects(rects: Iterable[Rect]) -> Rect:
    """Return the minimum bounding rectangle of a non-empty set of rectangles."""
    rects = list(rects)
    if not rects:
        raise InvalidParameterError("cannot union zero rectangles")
    result = rects[0]
    for r in rects[1:]:
        result = result.union(r)
    return result


class EpsAllRectangle:
    """The epsilon-All bounding rectangle of a group (paper Definition 5).

    Invariant maintained for the **L-infinity** metric: a point inside the
    rectangle is within ``eps`` of *every* member of the group.  For the
    **L2** metric the rectangle is only a conservative filter: a point
    *outside* the rectangle cannot possibly join the group, while a point
    inside still has to pass the convex-hull refinement.

    The rectangle for a single member ``p`` is the ``2*eps`` box centred at
    ``p``; adding a member intersects the current rectangle with the new
    member's box (rectangles are closed under intersection), which makes the
    rectangle shrink monotonically.  Its side length never drops below
    ``eps``... actually the geometric lower bound is reached when the group
    spans the full ``eps`` extent in that dimension; the intersection
    construction enforces this automatically.
    """

    __slots__ = ("eps", "_rect", "_count")

    def __init__(self, eps: float, first_point: Point) -> None:
        if eps <= 0:
            raise InvalidParameterError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._rect = Rect.from_point(first_point, self.eps)
        self._count = 1

    @property
    def rect(self) -> Rect:
        """Current admissible region for new members."""
        return self._rect

    @property
    def member_count(self) -> int:
        """Number of points folded into the rectangle so far."""
        return self._count

    def contains(self, point: Point) -> bool:
        """Constant-time membership filter (exact for L-infinity)."""
        return self._rect.contains_point(point)

    def add(self, point: Point) -> None:
        """Shrink the rectangle to account for a newly admitted member.

        The new admissible region is the intersection of the current region
        with the ``2*eps`` box centred at ``point``.
        """
        box = Rect.from_point(point, self.eps)
        shrunk = self._rect.intersection(box)
        if shrunk is None:
            # The caller admitted a point outside the admissible region (can
            # only happen through the L2 refinement path when the point is a
            # legitimate member anyway); clamp to the overlap-free degenerate
            # rectangle at the point so the filter stays conservative.
            shrunk = Rect.from_point(point, 0.0)
        self._rect = shrunk
        self._count += 1

    def window(self) -> Rect:
        """Return the rectangle itself (used as an R-tree entry for the group)."""
        return self._rect

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EpsAllRectangle(eps={self.eps}, rect={self._rect}, members={self._count})"
