"""SGB-All: distance-to-all (clique) similarity grouping (paper Section 6).

The module implements the full algorithmic framework of Procedure 1 with the
three interchangeable candidate/overlap discovery strategies the paper
evaluates:

* ``ALL_PAIRS``        — Procedure 2, exact distance checks against every
                         member of every group (quadratic).
* ``BOUNDS_CHECKING``  — Procedure 4, the epsilon-All bounding-rectangle
                         filter with a linear scan over the group rectangles.
* ``INDEX``            — Procedure 5, the bounding rectangles indexed in an
                         on-the-fly R-tree (``Groups_IX``) so candidate and
                         overlap groups are found with a window query.

For the L2 metric the rectangle filter is refined with the convex-hull test
of Procedure 6.  The three ``ON-OVERLAP`` semantics (JOIN-ANY, ELIMINATE,
FORM-NEW-GROUP) are handled by :func:`_process_grouping` / :func:`_process_overlap`,
mirroring Procedures 3 and the ProcessOverlap step.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.groups import Group
from repro.core.pointset import PointSet, ensure_finite, is_empty_batch
from repro.core.overlap import OverlapAction
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import Rect
from repro.core.result import GroupingResult
from repro.exceptions import InvalidParameterError
from repro.spatial.base import SpatialIndex
from repro.spatial.rtree import RTree

Point = Tuple[float, ...]

__all__ = ["SGBAllStrategy", "SGBAllGrouper", "sgb_all_grouping"]

#: Safety bound on the FORM-NEW-GROUP recursion; each round strictly shrinks
#: the deferred set, so real inputs never get close to this.
_MAX_RECURSION_ROUNDS = 10_000


class SGBAllStrategy(Enum):
    """Candidate/overlap discovery strategy used by SGB-All."""

    ALL_PAIRS = "all-pairs"
    BOUNDS_CHECKING = "bounds-checking"
    INDEX = "index"

    @staticmethod
    def parse(value: "SGBAllStrategy | str") -> "SGBAllStrategy":
        """Resolve a strategy from an enum member or its name."""
        if isinstance(value, SGBAllStrategy):
            return value
        if isinstance(value, str):
            key = value.strip().lower().replace("_", "-")
            aliases = {
                "all-pairs": SGBAllStrategy.ALL_PAIRS,
                "naive": SGBAllStrategy.ALL_PAIRS,
                "bounds-checking": SGBAllStrategy.BOUNDS_CHECKING,
                "bounds": SGBAllStrategy.BOUNDS_CHECKING,
                "index": SGBAllStrategy.INDEX,
                "rtree": SGBAllStrategy.INDEX,
                "on-the-fly-index": SGBAllStrategy.INDEX,
            }
            if key in aliases:
                return aliases[key]
        raise InvalidParameterError(f"unknown SGB-All strategy: {value!r}")


IndexFactory = Callable[[], SpatialIndex]


def _default_index_factory() -> SpatialIndex:
    """Default spatial index; a named function so groupers stay picklable."""
    return RTree(max_entries=8)


class SGBAllGrouper:
    """Stateful SGB-All operator: feed points one at a time, then finalise.

    The operator is deliberately incremental (``add`` / ``finalize``) so the
    relational executor can push tuples through it; :func:`sgb_all_grouping`
    wraps it for the common "group this array of points" use.
    """

    def __init__(
        self,
        eps: float,
        metric: "Metric | str" = Metric.L2,
        on_overlap: "OverlapAction | str" = OverlapAction.JOIN_ANY,
        strategy: "SGBAllStrategy | str" = SGBAllStrategy.INDEX,
        seed: int = 0,
        index_factory: Optional[IndexFactory] = None,
    ) -> None:
        self.predicate = SimilarityPredicate(resolve_metric(metric), eps)
        self.eps = float(eps)
        self.on_overlap = OverlapAction.parse(on_overlap)
        self.strategy = SGBAllStrategy.parse(strategy)
        self._rng = random.Random(seed)
        self._seed = seed
        self._index_factory = index_factory or _default_index_factory
        self._groups: List[Group] = []
        self._group_index: Optional[SpatialIndex] = (
            self._index_factory() if self.strategy is SGBAllStrategy.INDEX else None
        )
        self._next_gid = 0
        self._points: List[Point] = []
        #: Input row index of each entry of ``_points`` (arrival order); the
        #: frontier path uses it to map cross-batch edges back to row ids.
        self._point_indices: List[int] = []
        #: Live membership map (input index -> owning group), maintained by
        #: every insert/remove so the frontier path can resolve a neighbour
        #: edge to its group in O(1) instead of scanning group members.
        self._member_group: Dict[int, Group] = {}
        self._seen_indices: set[int] = set()
        self._deferred: List[Tuple[int, Point]] = []
        self._eliminated: List[int] = []
        self._deferred_flags: set[int] = set()
        self._eliminated_flags: set[int] = set()

    # ------------------------------------------------------------------
    # public incremental interface
    # ------------------------------------------------------------------

    def add(self, point: Sequence[float], index: Optional[int] = None) -> None:
        """Process one input point (paper Procedure 1 body).

        ``index`` is the input row identifier; it defaults to the arrival
        position and must be unique across the run.
        """
        pt: Point = tuple(float(c) for c in point)
        ensure_finite(pt)
        if index is None:
            index = len(self._points)
        if index in self._seen_indices:
            raise InvalidParameterError(
                f"input row index {index} was already added to this grouper"
            )
        self._seen_indices.add(index)
        self._points.append(pt)
        self._point_indices.append(index)
        self._process_point(index, pt)

    def add_all(self, points: Iterable[Sequence[float]]) -> None:
        """Process points one at a time in arrival order (scalar reference path)."""
        for point in points:
            self.add(point)

    def add_batch(
        self,
        points: "PointSet | Sequence[Sequence[float]]",
        frontier: bool = True,
    ) -> None:
        """Process a whole batch of points through the columnar pipeline.

        SGB-All's arbitration (JOIN-ANY randomness, group formation order)
        is inherently sequential, so the batch path keeps the per-point
        decision *sequence* of :meth:`add` — the results are bit-identical —
        but replaces the per-point candidate discovery with whole-frontier
        verification where the configuration allows it (see
        :meth:`_frontier_eligible`): one eps-grid sweep computes the exact
        within-eps adjacency of the entire batch up front
        (:meth:`PointSet.pairwise_within` within the batch,
        :meth:`PointSet.cross_within` against earlier points), and each
        point's candidate/overlap groups are then read off its neighbour
        set in O(degree) — no per-point index probe, no per-member distance
        re-checks.  Ineligible configurations (where the reference filter is
        deliberately approximate, so adjacency alone cannot reproduce its
        decisions) keep the legacy per-point batch loop; ``frontier=False``
        forces that loop everywhere, which the parity suite uses to compare
        the two paths.
        """
        if is_empty_batch(points):
            # Degenerate batch: a strict no-op — no PointSet normalisation
            # and no grouper state change (mirrors SGBAnyGrouper.add_batch).
            return
        ps = PointSet.from_any(points)
        if len(ps) == 0:
            return
        base = len(self._points)
        tuples = ps.to_tuples()
        # Check the whole index range up front so a collision cannot leave the
        # grouper half-mutated.
        for offset in range(len(tuples)):
            if base + offset in self._seen_indices:
                raise InvalidParameterError(
                    f"input row index {base + offset} was already added to this grouper"
                )
        neighbours = (
            self._batch_neighbours(ps, base)
            if frontier and self._frontier_eligible(ps.dims)
            else None
        )
        for offset, pt in enumerate(tuples):
            index = base + offset
            self._seen_indices.add(index)
            self._points.append(pt)
            self._point_indices.append(index)
            if neighbours is None:
                self._process_point(index, pt)
            else:
                self._process_point_frontier(index, pt, neighbours[offset])

    def _frontier_eligible(self, dims: int) -> bool:
        """True when per-point candidate decisions are pure adjacency functions.

        ALL_PAIRS decides candidacy with exact per-member distance checks;
        under LINF the epsilon-All rectangle *is* the distance-to-all region;
        under L2 in 2-d the convex-hull refinement makes the rectangle filter
        exact again.  Everywhere else (L1, L2 in >= 3-d) the bounds/index
        filters accept rectangle false positives by design, so the frontier
        cannot reproduce their decisions from the true adjacency and the
        per-point loop stays in charge.
        """
        if self.strategy is SGBAllStrategy.ALL_PAIRS:
            return True
        metric = self.predicate.metric
        return metric is Metric.LINF or (metric is Metric.L2 and dims == 2)

    def _batch_neighbours(self, ps: PointSet, base: int) -> List[Set[int]]:
        """Exact within-eps neighbour sets (as input row indices) per batch point.

        One pass of the eps-grid pairwise sweep inside the batch plus one
        cross sweep against every previously added point; both run the same
        ``within_eps`` kernel as the scalar predicate, so the adjacency is
        bit-identical to what per-point probing would discover.
        """
        metric = self.predicate.metric
        neighbours: List[Set[int]] = [set() for _ in range(len(ps))]
        for a, b in ps.pairwise_within(self.eps, metric):
            neighbours[a].add(base + b)
            neighbours[b].add(base + a)
        if self._points:
            prior = PointSet.from_any(self._points)
            for prior_pos, batch_pos in prior.cross_within(ps, self.eps, metric):
                neighbours[batch_pos].add(self._point_indices[prior_pos])
        return neighbours

    def _process_point_frontier(
        self, index: int, point: Point, neighbour_rows: Set[int]
    ) -> None:
        """Procedure 1 body with candidate discovery read off the frontier."""
        hits: Dict[int, int] = {}
        by_gid: Dict[int, Group] = {}
        for row in neighbour_rows:
            group = self._member_group.get(row)
            if group is None:
                continue
            hits[group.gid] = hits.get(group.gid, 0) + 1
            by_gid[group.gid] = group
        join_any = self.on_overlap is OverlapAction.JOIN_ANY
        candidates: List[Group] = []
        overlaps: List[Group] = []
        for gid in sorted(hits):
            group = by_gid[gid]
            if hits[gid] == len(group):
                candidates.append(group)
            elif not join_any:
                overlaps.append(group)
        self._process_grouping(index, point, candidates)
        if not join_any and overlaps:
            for group in overlaps:
                # Same decision `members_within` would make, in member order.
                touched = [idx for idx in group.indices if idx in neighbour_rows]
                self._strip_overlap(group, touched)

    def finalize(self) -> GroupingResult:
        """Run the deferred FORM-NEW-GROUP rounds and return the grouping."""
        self._resolve_deferred()
        groups = [list(g.indices) for g in self._groups if len(g) > 0]
        return GroupingResult(
            groups=groups,
            eliminated=sorted(self._eliminated),
            points=list(self._points),
        )

    @property
    def group_count(self) -> int:
        """Number of live groups built so far (before deferred resolution)."""
        return sum(1 for g in self._groups if len(g) > 0)

    # ------------------------------------------------------------------
    # Procedure 1: per-point processing
    # ------------------------------------------------------------------

    def _process_point(self, index: int, point: Point) -> None:
        candidates, overlaps = self._find_close_groups(point)
        self._process_grouping(index, point, candidates)
        if self.on_overlap is not OverlapAction.JOIN_ANY and overlaps:
            self._process_overlap(point, overlaps)

    # ------------------------------------------------------------------
    # FindCloseGroups: Procedures 2 / 4 / 5
    # ------------------------------------------------------------------

    def _find_close_groups(self, point: Point) -> Tuple[List[Group], List[Group]]:
        if self.strategy is SGBAllStrategy.ALL_PAIRS:
            candidates, overlaps = self._find_all_pairs(point)
        elif self.strategy is SGBAllStrategy.BOUNDS_CHECKING:
            candidates, overlaps = self._find_bounds(point, self._live_groups())
        else:
            candidates, overlaps = self._find_bounds(point, self._index_probe(point))
        # Normalise the discovery order (the index probe returns groups in
        # R-tree order) so arbitration and overlap processing behave the same
        # way for every strategy.
        candidates.sort(key=lambda g: g.gid)
        overlaps.sort(key=lambda g: g.gid)
        return candidates, overlaps

    def _live_groups(self) -> List[Group]:
        return [g for g in self._groups if len(g) > 0]

    def _index_probe(self, point: Point) -> List[Group]:
        assert self._group_index is not None
        window = Rect.from_point(point, self.eps)
        hits = self._group_index.search(window)
        return [g for g in hits if len(g) > 0]

    def _find_all_pairs(self, point: Point) -> Tuple[List[Group], List[Group]]:
        """Procedure 2: exact scan of every member of every group."""
        join_any = self.on_overlap is OverlapAction.JOIN_ANY
        candidates: List[Group] = []
        overlaps: List[Group] = []
        for group in self._live_groups():
            candidate_flag = True
            overlap_flag = False
            for member in group.points:
                if self.predicate.similar(point, member):
                    overlap_flag = True
                else:
                    candidate_flag = False
                    if join_any:
                        break
            if candidate_flag:
                candidates.append(group)
            elif not join_any and overlap_flag:
                overlaps.append(group)
        return candidates, overlaps

    def _find_bounds(
        self, point: Point, groups: Iterable[Group]
    ) -> Tuple[List[Group], List[Group]]:
        """Procedures 4/5: rectangle filter (+ L2 hull refinement) per group."""
        join_any = self.on_overlap is OverlapAction.JOIN_ANY
        use_hull = self.predicate.metric is Metric.L2 and len(point) == 2
        probe_box: Optional[Rect] = None
        candidates: List[Group] = []
        overlaps: List[Group] = []
        for group in groups:
            if group.rect_contains(point):
                if not use_hull or group.passes_hull_test(point, self.predicate):
                    candidates.append(group)
                    continue
                # L2 false positive: inside the rectangle but not within eps of
                # every member; it may still overlap some members.
                if not join_any and group.any_within(point, self.predicate):
                    overlaps.append(group)
                continue
            if join_any:
                continue
            if probe_box is None:
                probe_box = Rect.from_point(point, self.eps)
            if probe_box.intersects(group.eps_rect.rect) and group.any_within(
                point, self.predicate
            ):
                overlaps.append(group)
        return candidates, overlaps

    # ------------------------------------------------------------------
    # Procedure 3: ProcessGroupingALL
    # ------------------------------------------------------------------

    def _process_grouping(
        self, index: int, point: Point, candidates: List[Group]
    ) -> None:
        if not candidates:
            self._create_group(index, point)
            return
        if len(candidates) == 1:
            self._insert_into_group(candidates[0], index, point)
            return
        if self.on_overlap is OverlapAction.JOIN_ANY:
            chosen = self._rng.choice(candidates)
            self._insert_into_group(chosen, index, point)
        elif self.on_overlap is OverlapAction.ELIMINATE:
            self._eliminate(index)
        else:  # FORM_NEW_GROUP
            self._defer(index, point)

    def _create_group(self, index: int, point: Point) -> Group:
        group = Group(self._next_gid, self.eps, index, point)
        self._next_gid += 1
        self._groups.append(group)
        self._member_group[index] = group
        if self._group_index is not None:
            group.indexed_rect = group.eps_rect.rect
            self._group_index.insert(group.indexed_rect, group)
        return group

    def _insert_into_group(self, group: Group, index: int, point: Point) -> None:
        group.add(index, point)
        self._member_group[index] = group
        # The fresh rectangle only shrinks, so the (stale) indexed rectangle
        # stays a conservative cover; no R-tree update is needed here.

    def _eliminate(self, index: int) -> None:
        if index not in self._eliminated_flags:
            self._eliminated_flags.add(index)
            self._eliminated.append(index)

    def _defer(self, index: int, point: Point) -> None:
        if index not in self._deferred_flags:
            self._deferred_flags.add(index)
            self._deferred.append((index, point))

    # ------------------------------------------------------------------
    # ProcessOverlap (ELIMINATE / FORM-NEW-GROUP only)
    # ------------------------------------------------------------------

    def _process_overlap(self, point: Point, overlaps: List[Group]) -> None:
        for group in overlaps:
            touched = group.members_within(point, self.predicate)
            self._strip_overlap(group, touched)

    def _strip_overlap(self, group: Group, touched: List[int]) -> None:
        """Remove the overlapping members and eliminate/defer them."""
        if not touched:
            return
        removed = group.remove_indices(touched)
        for idx, pt in removed:
            self._member_group.pop(idx, None)
            if self.on_overlap is OverlapAction.ELIMINATE:
                self._eliminate(idx)
            else:  # FORM_NEW_GROUP
                self._defer(idx, pt)
        self._refresh_group_index_entry(group)

    def _refresh_group_index_entry(self, group: Group) -> None:
        """Re-register a group in the R-tree after its membership shrank."""
        if self._group_index is None or group.indexed_rect is None:
            return
        self._group_index.delete(group.indexed_rect, group)
        if len(group) == 0:
            group.indexed_rect = None
            return
        group.indexed_rect = group.eps_rect.rect
        self._group_index.insert(group.indexed_rect, group)

    # ------------------------------------------------------------------
    # FORM-NEW-GROUP deferred rounds
    # ------------------------------------------------------------------

    def _resolve_deferred(self) -> None:
        """Recursively group the deferred points (paper: SGB-All on S' until empty)."""
        rounds = 0
        pending = self._deferred
        self._deferred = []
        self._deferred_flags = set()
        while pending:
            rounds += 1
            if rounds > _MAX_RECURSION_ROUNDS:
                raise InvalidParameterError(
                    "FORM-NEW-GROUP recursion failed to converge"
                )
            sub = SGBAllGrouper(
                eps=self.eps,
                metric=self.predicate.metric,
                on_overlap=OverlapAction.FORM_NEW_GROUP,
                strategy=self.strategy,
                seed=self._seed,
                index_factory=self._index_factory,
            )
            for idx, pt in pending:
                sub.add(pt, index=idx)
            # Adopt the sub-round's groups; its own deferred set feeds the next round.
            for group in sub._groups:
                if len(group) > 0:
                    self._groups.append(group)
            pending = sub._deferred
        # Deferred points are never eliminated; they always end in some group.


def sgb_all_grouping(
    points: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    on_overlap: "OverlapAction | str" = OverlapAction.JOIN_ANY,
    strategy: "SGBAllStrategy | str" = SGBAllStrategy.INDEX,
    seed: int = 0,
    index_factory: Optional[IndexFactory] = None,
    batch: bool = True,
    frontier: bool = True,
    planner: bool = True,
) -> GroupingResult:
    """Group ``points`` with the SGB-All operator and return the result.

    Parameters mirror the SQL clause: ``eps`` is the ``WITHIN`` threshold,
    ``metric`` the ``DISTANCE-TO-ALL`` metric (``L2``/``LINF``), ``on_overlap``
    the ``ON-OVERLAP`` action, and ``strategy`` selects the paper's All-Pairs,
    Bounds-Checking, or on-the-fly Index algorithm.  ``batch=False`` forces
    the scalar point-at-a-time reference path, and ``frontier=False`` keeps
    the batch path but disables its whole-frontier candidate discovery; all
    three paths produce identical results (enforced by the parity test
    suite).

    With the default pipeline flags (``batch=True``, ``frontier=True``, no
    explicit index or strategy) the cost planner scores the scalar vs
    frontier candidates and records its advisory choice on ``result.plan``;
    explicitly pinned flags — or ``planner=False`` — bypass the planner so
    benchmarks measure the path they named.
    """
    grouper = SGBAllGrouper(
        eps=eps,
        metric=metric,
        on_overlap=on_overlap,
        strategy=strategy,
        seed=seed,
        index_factory=index_factory,
    )
    plan = None
    if (
        planner
        and batch
        and frontier
        and index_factory is None
        and SGBAllStrategy.parse(strategy) is SGBAllStrategy.INDEX
    ):
        from repro.engine.cost import plan_sgb_all
        from repro.engine.stats import collect_stats

        ps = PointSet.from_any(points)
        plan = plan_sgb_all(collect_stats(ps), grouper.eps)
        points = ps
    if batch and not (plan is not None and plan.mode == "scalar"):
        grouper.add_batch(points, frontier=frontier)
    elif plan is not None and plan.mode == "scalar":
        grouper.add_all(PointSet.from_any(points).to_tuples())
    else:
        grouper.add_all(points)
    result = grouper.finalize()
    result.plan = plan
    return result
