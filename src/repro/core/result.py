"""Result containers returned by the SGB algorithm layer.

The algorithm layer works on bare points (sequences of floats).  A
:class:`GroupingResult` maps every input row index to an output group (or to
"eliminated"), mirroring what the relational operator does when it feeds the
groups into aggregate functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.geometry.polygon import Polygon

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine.cost import PhysicalPlan

Point = Tuple[float, ...]

__all__ = ["GroupingResult", "canonicalize_groups"]

ELIMINATED = -1


def canonicalize_groups(member_lists: "Iterable[Iterable[int]]") -> List[List[int]]:
    """Normalise raw component member lists into the canonical SGB-Any order.

    Members ascend within a group and groups are ordered by their smallest
    member.  This is *the* labelling that makes results comparable across
    execution paths — the serial grouper and the sharded parallel engine both
    route through this helper, so the parallel == serial equivalence can
    never drift between two copies of the normalisation.
    """
    groups = [sorted(members) for members in member_lists]
    groups.sort(key=lambda members: members[0])
    return groups


@dataclass
class GroupingResult:
    """Outcome of an SGB-All / SGB-Any run over a list of points.

    Attributes
    ----------
    groups:
        One entry per output group: the list of *input row indices* that ended
        up in the group, in admission order.
    eliminated:
        Input row indices dropped by the ``ON-OVERLAP ELIMINATE`` semantics
        (always empty for SGB-Any and the other overlap actions).
    points:
        The input points, index-aligned with the original input.
    plan:
        The :class:`~repro.engine.cost.PhysicalPlan` the cost planner chose
        for this run, when the caller delegated the mode choice
        (``workers="auto"`` or no knob at all); ``None`` for forced modes.
        Purely informational — plans never change results.
    """

    groups: List[List[int]]
    eliminated: List[int] = field(default_factory=list)
    points: List[Point] = field(default_factory=list)
    plan: "Optional[PhysicalPlan]" = None

    # -- basic views -------------------------------------------------------

    @property
    def group_count(self) -> int:
        """Number of output groups."""
        return len(self.groups)

    def group_sizes(self) -> List[int]:
        """Return the size of every group (the paper's ``count(*)`` output)."""
        return [len(g) for g in self.groups]

    def labels(self) -> List[int]:
        """Return a per-input-row group label (``-1`` for eliminated rows)."""
        n = len(self.points)
        out = [ELIMINATED] * n
        for gid, members in enumerate(self.groups):
            for idx in members:
                out[idx] = gid
        return out

    def assignment(self) -> Dict[int, int]:
        """Return ``{input index -> group id}`` for every non-eliminated row."""
        return {
            idx: gid for gid, members in enumerate(self.groups) for idx in members
        }

    def group_points(self, gid: int) -> List[Point]:
        """Return the coordinates of the members of group ``gid``."""
        return [self.points[idx] for idx in self.groups[gid]]

    def group_polygon(self, gid: int) -> Polygon:
        """Return the convex-hull polygon of group ``gid`` (the ``ST_Polygon`` aggregate)."""
        return Polygon.from_points(self.group_points(gid))

    # -- validation helpers used by tests -----------------------------------

    def is_partition(self) -> bool:
        """Return True if every input row appears in exactly one group or is eliminated."""
        seen: set[int] = set()
        for members in self.groups:
            for idx in members:
                if idx in seen:
                    return False
                seen.add(idx)
        for idx in self.eliminated:
            if idx in seen:
                return False
            seen.add(idx)
        return len(seen) == len(self.points)

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        sizes = sorted(self.group_sizes(), reverse=True)
        preview = ", ".join(str(s) for s in sizes[:8])
        if len(sizes) > 8:
            preview += ", ..."
        return (
            f"{self.group_count} groups over {len(self.points)} points "
            f"({len(self.eliminated)} eliminated); sizes: [{preview}]"
        )

    @staticmethod
    def empty() -> "GroupingResult":
        """Return the result of grouping zero points."""
        return GroupingResult(groups=[], eliminated=[], points=[])
