"""The ON-OVERLAP arbitration semantics of SGB-All (paper Section 4.1).

When a point satisfies the distance-to-all membership criterion of more than
one existing group, the query's ``ON-OVERLAP`` clause decides what happens:

* ``JOIN_ANY``        — insert the point into one of the qualifying groups,
                        chosen (pseudo-)randomly;
* ``ELIMINATE``       — discard the point (and the already-grouped points it
                        overlaps with);
* ``FORM_NEW_GROUP``  — defer the point to a fresh grouping round that forms
                        new groups out of all deferred points.
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import InvalidParameterError

__all__ = ["OverlapAction"]


class OverlapAction(Enum):
    """Arbitration policy for points that qualify for multiple SGB-All groups."""

    JOIN_ANY = "JOIN-ANY"
    ELIMINATE = "ELIMINATE"
    FORM_NEW_GROUP = "FORM-NEW-GROUP"

    @staticmethod
    def parse(value: "OverlapAction | str") -> "OverlapAction":
        """Resolve an action from an enum member or SQL keyword (case-insensitive)."""
        if isinstance(value, OverlapAction):
            return value
        if isinstance(value, str):
            key = value.strip().upper().replace("_", "-")
            aliases = {
                "JOIN-ANY": OverlapAction.JOIN_ANY,
                "JOINANY": OverlapAction.JOIN_ANY,
                "ANY": OverlapAction.JOIN_ANY,
                "ELIMINATE": OverlapAction.ELIMINATE,
                "DROP": OverlapAction.ELIMINATE,
                "FORM-NEW-GROUP": OverlapAction.FORM_NEW_GROUP,
                "FORM-NEW": OverlapAction.FORM_NEW_GROUP,
                "NEW-GROUP": OverlapAction.FORM_NEW_GROUP,
            }
            if key in aliases:
                return aliases[key]
        raise InvalidParameterError(f"unknown ON-OVERLAP action: {value!r}")
