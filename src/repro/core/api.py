"""High-level convenience API for the SGB operators on plain point arrays.

These functions are the entry point recommended in the README: they accept
any sequence of numeric 2-d (or d-dimensional) points — lists, tuples, or a
numpy array — and return a :class:`~repro.core.result.GroupingResult`.

For SQL-level access (the paper's extended ``GROUP BY`` syntax interleaved
with joins, filters, and aggregates) use :class:`repro.minidb.Database`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.core.distance import Metric
from repro.core.overlap import OverlapAction
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult
from repro.core.sgb_all import IndexFactory, SGBAllStrategy, sgb_all_grouping
from repro.core.sgb_any import SGBAnyStrategy, sgb_any_grouping
from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.stream.session import WindowResult
    from repro.stream.window import WindowPolicy

__all__ = ["sgb_all", "sgb_any", "sgb_any_stream", "sim_join", "cluster_by"]


def _normalise_points(points: Sequence[Sequence[float]]) -> PointSet:
    """Normalise any point container into a :class:`PointSet`.

    NumPy arrays are adopted zero-copy (no per-point Python tuple
    materialisation); every input is checked once for consistent
    dimensionality and finite (non-NaN, non-infinite) coordinates.
    """
    return PointSet.from_any(points)


def _grouping_cache_key(
    points: PointSet,
    cache: object,
    kind: str,
    eps: float,
    metric: "Metric | str",
    strategy: str,
    on_overlap: Optional[str] = None,
    seed: int = 0,
):
    """Resolve the result cache and the batch's grouping key, or ``(None, None)``.

    Parameters that cannot be canonicalised (a bad eps or metric) simply
    disable caching for the call: the grouping itself then raises the proper
    validation error.
    """
    from repro.storage.cache import resolve_cache, sgb_all_key, sgb_any_key

    resolved = resolve_cache(cache)
    if resolved is None:
        return None, None
    from repro.core.distance import resolve_metric
    from repro.core.fingerprint import fingerprint_points

    try:
        metric_name = resolve_metric(metric).value
        eps_value = float(eps)
    except Exception:  # noqa: BLE001 - let the grouping surface the error
        return None, None
    fingerprint = fingerprint_points(points)
    if kind == "any":
        return resolved, sgb_any_key(
            fingerprint, eps_value, metric_name, strategy, points.backend
        )
    return resolved, sgb_all_key(
        fingerprint,
        eps_value,
        metric_name,
        strategy,
        str(on_overlap),
        int(seed),
        points.backend,
    )


def sgb_all(
    points: Sequence[Sequence[float]],
    eps: float,
    metric: "Metric | str" = Metric.L2,
    on_overlap: "OverlapAction | str" = OverlapAction.JOIN_ANY,
    strategy: "SGBAllStrategy | str" = SGBAllStrategy.INDEX,
    seed: int = 0,
    index_factory: Optional[IndexFactory] = None,
    batch: bool = True,
    frontier: bool = True,
    planner: bool = True,
    cache: object = None,
) -> GroupingResult:
    """Run the SGB-All (distance-to-all / clique) operator over ``points``.

    Parameters
    ----------
    points:
        Sequence of d-dimensional numeric points, processed in order.  A
        NumPy ``(n, d)`` array is consumed zero-copy.
    eps:
        Similarity threshold (the SQL ``WITHIN`` value); must be positive.
    metric:
        ``"L2"`` (Euclidean, default) or ``"LINF"`` (maximum distance).
    on_overlap:
        Arbitration for points qualifying for several groups: ``"JOIN-ANY"``,
        ``"ELIMINATE"``, or ``"FORM-NEW-GROUP"``.
    strategy:
        ``"all-pairs"``, ``"bounds-checking"``, or ``"index"`` (default; the
        paper's on-the-fly R-tree algorithm).
    seed:
        Seed for the pseudo-random choice made by ``JOIN-ANY``.
    index_factory:
        Optional callable returning an empty spatial index, used by the
        ``index`` strategy (defaults to an R-tree).
    batch:
        Route through the batched columnar pipeline (default).  ``False``
        forces the scalar point-at-a-time reference path; both produce
        identical results.
    frontier:
        Allow the batch path's whole-frontier candidate discovery (default).
        ``False`` keeps the legacy per-point batch loop; results are
        identical either way.
    planner:
        Let the cost planner pick scalar vs frontier from the batch's
        statistics (default; advisory about time only, recorded on
        ``result.plan``).  ``False`` pins exactly the path the flags name —
        the benchmark runners use this so measurements stay comparable
        across machines.
    cache:
        Result cache for repeated groupings of identical data: ``True`` (the
        process-wide default cache), a spill-directory path, or a
        :class:`repro.storage.ResultCache`; ``None`` defers to the
        ``SGB_CACHE`` environment variable and ``SGB_CACHE=off`` disables
        caching regardless.  Hits are bit-identical to recomputing (the
        advisory ``plan`` is not cached).

    Returns
    -------
    GroupingResult
        Group membership by input row index, plus any eliminated rows.
    """
    normalised = _normalise_points(points)
    resolved, key = _grouping_cache_key(
        normalised,
        cache,
        kind="all",
        eps=eps,
        metric=metric,
        strategy=SGBAllStrategy.parse(strategy).value,
        on_overlap=OverlapAction.parse(on_overlap).value,
        seed=seed,
    )
    if resolved is not None:
        hit = resolved.get_grouping(key)
        if hit is not None:
            return hit
    result = sgb_all_grouping(
        normalised,
        eps=eps,
        metric=metric,
        on_overlap=on_overlap,
        strategy=strategy,
        seed=seed,
        index_factory=index_factory,
        batch=batch,
        frontier=frontier,
        planner=planner,
    )
    if resolved is not None:
        resolved.put_grouping(key, result)
    return result


def sgb_any(
    points: Sequence[Sequence[float]],
    eps: float,
    metric: "Metric | str" = Metric.L2,
    strategy: "SGBAnyStrategy | str" = SGBAnyStrategy.INDEX,
    index_factory: Optional[IndexFactory] = None,
    batch: bool = True,
    workers: "Optional[int | str]" = None,
    cache: object = None,
) -> GroupingResult:
    """Run the SGB-Any (distance-to-any / connectivity) operator over ``points``.

    Groups are the connected components of the graph linking points within
    ``eps`` of each other under the chosen metric.  There is no overlap
    clause: overlapping groups merge by definition.  A NumPy ``(n, d)``
    array is consumed zero-copy; ``batch=False`` forces the scalar
    point-at-a-time reference path (identical results).

    ``workers`` controls the sharded parallel engine on the batch path:
    ``workers=N`` forces up to N worker processes (clamped to the machine's
    capacity with a warning), while ``0``/``"auto"`` — or ``None`` (the
    default) with the ``SGB_WORKERS`` environment variable unset or
    ``"auto"`` — *delegates to the cost planner*, which picks serial vs
    sharded execution and the shard fan-out from the input's cached
    statistics and records its choice on ``result.plan``.  Every mode
    returns group assignments identical to the serial and scalar paths.

    ``cache`` memoises the grouping under a content digest of the batch
    (see :func:`sgb_all`); worker counts are execution detail and never part
    of the key, so serial and sharded runs share entries.
    """
    normalised = _normalise_points(points)
    resolved, key = _grouping_cache_key(
        normalised,
        cache,
        kind="any",
        eps=eps,
        metric=metric,
        strategy=SGBAnyStrategy.parse(strategy).value,
    )
    if resolved is not None:
        hit = resolved.get_grouping(key)
        if hit is not None:
            return hit
    result = sgb_any_grouping(
        normalised,
        eps=eps,
        metric=metric,
        strategy=strategy,
        index_factory=index_factory,
        batch=batch,
        workers=workers,
    )
    if resolved is not None:
        resolved.put_grouping(key, result)
    return result


def sgb_any_stream(
    batches: "Iterable[Sequence[Sequence[float]] | tuple]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    window: "WindowPolicy | int" = None,  # type: ignore[assignment]
    slide: Optional[int] = None,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
) -> "Iterator[WindowResult]":
    """Group a continuous point stream over sliding or tumbling windows.

    ``batches`` is any iterable of micro-batches; each batch is a point
    container :func:`sgb_any` would accept (with a tick-based
    :class:`~repro.stream.window.WindowPolicy`, a ``(points, ticks)`` pair
    instead).  Yields one :class:`~repro.stream.session.WindowResult` per
    closed window: the grouping of the window's live points — bit-identical
    (after canonical relabelling) to a from-scratch :func:`sgb_any` over
    those points — plus the delta events since the previous window.

    Parameters
    ----------
    window:
        Count-window size (an int), or a
        :class:`~repro.stream.window.WindowPolicy` for tick-based / explicit
        policies.
    slide:
        Count-window slide; omitted means tumbling.  The size must be a
        multiple of the slide so eviction always drops whole epochs.
    workers:
        Per-flush sharding through ``repro.engine``, resolved exactly like
        :func:`sgb_any`'s ``workers``; with one worker (the default) flushes
        read the incrementally maintained forest instead of regrouping.
    backend:
        Optional ``PointSet`` backend override (``"python"`` forces the
        pure-Python columnar kernels).
    """
    from repro.stream.session import stream_groups

    return stream_groups(
        batches,
        eps,
        metric=metric,
        window=window,
        slide=slide,
        workers=workers,
        backend=backend,
    )


def sim_join(
    left: Sequence[Sequence[float]],
    right: Sequence[Sequence[float]],
    eps: Optional[float] = None,
    k: Optional[int] = None,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
    cache: object = None,
) -> "list[tuple[int, int]]":
    """Similarity-join two point relations; returns ``(left, right)`` index pairs.

    Pass ``eps`` for an epsilon-join (every cross pair within the threshold,
    in lexicographic order) or ``k`` for a kNN-join (each left point with its
    k nearest right points, distance ties broken by ascending right index);
    exactly one of the two must be given.  ``workers`` resolves exactly like
    :func:`sgb_any`'s: a numeric value forces the sharded engine, while
    ``"auto"``/``0``/unset delegates the serial-vs-sharded choice to the
    cost planner — either way the result is bit-identical to the serial
    join.  ``cache`` memoises the pair list under content digests of both
    relations (see :func:`sgb_all`).

    SQL-level access is the ``FROM a SIMILARITY JOIN b ON DISTANCE(...)
    WITHIN eps`` / ``KNN k`` clause of :class:`repro.minidb.Database`; see
    :mod:`repro.join` for the underlying subsystem.
    """
    from repro.join.api import sim_join as _sim_join

    return _sim_join(
        left,
        right,
        eps=eps,
        k=k,
        metric=metric,
        workers=workers,
        backend=backend,
        cache=cache,
    )


def cluster_by(
    points: Sequence[Sequence[float]],
    eps: float,
    metric: "Metric | str" = Metric.L2,
    semantics: str = "any",
    **kwargs,
) -> GroupingResult:
    """Convenience wrapper mirroring the related-work ``CLUSTER BY`` construct.

    ``semantics="any"`` gives connectivity clustering (SGB-Any, the behaviour
    of ``CLUSTER BY`` with a DBSCAN-like grouping); ``semantics="all"`` gives
    clique grouping (SGB-All with ``JOIN-ANY``).
    """
    kind = semantics.strip().lower()
    if kind == "any":
        return sgb_any(points, eps, metric=metric, **kwargs)
    if kind == "all":
        return sgb_all(points, eps, metric=metric, **kwargs)
    raise InvalidParameterError(f"unknown cluster_by semantics: {semantics!r}")
