"""Convex-hull refinement for the L2 metric (paper Section 6.4, Procedure 6).

The epsilon-All bounding rectangle is exact for the L-infinity metric but only
conservative for L2: a point inside the rectangle can still be more than
``eps`` (Euclidean) away from some group member — the grey "false positive"
region of Figure 7b.  The refinement uses the group's convex hull:

* a point inside the hull is a true member (the hull diameter is at most
  ``eps`` by the SGB-All invariant, so every member is within ``eps``);
* a point outside the hull only needs to be checked against the *farthest*
  hull vertex: if that vertex is within ``eps`` then so is every member.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.core.predicates import SimilarityPredicate
from repro.geometry.convex_hull import farthest_point, point_in_convex_polygon

__all__ = ["convex_hull_test"]


def convex_hull_test(
    point: Sequence[float],
    hull: Sequence[Tuple[float, float]],
    predicate: SimilarityPredicate,
) -> bool:
    """Return True if ``point`` is within ``eps`` of every point enclosed by ``hull``.

    Implements Procedure 6: the point is accepted if it lies inside the hull,
    or if its distance to the farthest hull vertex is within the threshold.
    """
    if not hull:
        return True
    if point_in_convex_polygon(point, hull):
        return True
    farthest = farthest_point(point, hull)
    return math.dist((float(point[0]), float(point[1])), farthest) <= predicate.eps
