"""Group bookkeeping shared by the SGB-All algorithm variants.

A :class:`Group` owns the points admitted so far, their original input
indices, the epsilon-All bounding rectangle used by the bounds-checking /
indexed filters, and a lazily rebuilt convex hull used by the L2 refinement
step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.distance import Metric
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import EpsAllRectangle, Rect
from repro.geometry.convex_hull import convex_hull

try:  # optional: membership checks fall back to scalar loops without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

Point = Tuple[float, ...]

__all__ = ["Group"]

#: Below this member count the scalar loops beat the cost of staging the
#: members into a NumPy block, so the vectorised path only kicks in past it.
_VECTOR_MIN_MEMBERS = 32


class Group:
    """One output group under construction during SGB-All processing."""

    __slots__ = (
        "gid",
        "points",
        "indices",
        "eps_rect",
        "indexed_rect",
        "_hull",
        "_hull_dirty",
        "_coords",
        "_coords_dirty",
    )

    def __init__(self, gid: int, eps: float, index: int, point: Point) -> None:
        self.gid = gid
        self.points: List[Point] = [point]
        self.indices: List[int] = [index]
        self.eps_rect = EpsAllRectangle(eps, point)
        #: Rectangle currently registered in the group R-tree (indexed variant).
        self.indexed_rect: Optional[Rect] = None
        self._hull: Optional[List[Tuple[float, float]]] = None
        self._hull_dirty = True
        #: Lazily maintained columnar copy of ``points`` for bulk verification.
        self._coords = None
        self._coords_dirty = True

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Group(gid={self.gid}, size={len(self.points)})"

    # -- membership maintenance -------------------------------------------

    def add(self, index: int, point: Point) -> None:
        """Admit ``point`` (input row ``index``) and shrink the bounding rectangle."""
        self.points.append(point)
        self.indices.append(index)
        self.eps_rect.add(point)
        self._hull_dirty = True
        self._coords_dirty = True

    def remove_indices(self, to_remove: Sequence[int]) -> List[Tuple[int, Point]]:
        """Remove the listed input indices; return the removed (index, point) pairs.

        Rebuilds the epsilon-All rectangle from the remaining members so the
        bounds filter stays tight after ELIMINATE / FORM-NEW-GROUP deletions.
        """
        removal = set(to_remove)
        removed: List[Tuple[int, Point]] = []
        kept_points: List[Point] = []
        kept_indices: List[int] = []
        for idx, pt in zip(self.indices, self.points):
            if idx in removal:
                removed.append((idx, pt))
            else:
                kept_indices.append(idx)
                kept_points.append(pt)
        self.points = kept_points
        self.indices = kept_indices
        if kept_points:
            rebuilt = EpsAllRectangle(self.eps_rect.eps, kept_points[0])
            for pt in kept_points[1:]:
                rebuilt.add(pt)
            self.eps_rect = rebuilt
        self._hull_dirty = True
        self._coords_dirty = True
        return removed

    # -- membership tests ---------------------------------------------------

    def rect_contains(self, point: Point) -> bool:
        """Constant-time epsilon-All rectangle filter."""
        return self.eps_rect.contains(point)

    def _member_block(self):
        """Return the cached ``(n, d)`` member array, or None for small groups.

        The vectorised membership checks produce bit-identical decisions to
        the scalar loops (see ``SimilarityPredicate.similar_many``), so both
        the scalar and batched SGB paths share them transparently.
        """
        if _np is None or len(self.points) < _VECTOR_MIN_MEMBERS:
            return None
        if self._coords_dirty or self._coords is None:
            self._coords = _np.asarray(self.points, dtype=_np.float64)
            self._coords_dirty = False
        return self._coords

    def all_within(self, point: Point, predicate: SimilarityPredicate) -> bool:
        """Exact distance-to-all test against every member."""
        block = self._member_block()
        if block is None:
            return predicate.similar_to_all(point, self.points)
        return bool(predicate.similar_many(point, block).all())

    def any_within(self, point: Point, predicate: SimilarityPredicate) -> bool:
        """Exact distance-to-any test against the members."""
        block = self._member_block()
        if block is None:
            return predicate.similar_to_any(point, self.points)
        return bool(predicate.similar_many(point, block).any())

    def members_within(self, point: Point, predicate: SimilarityPredicate) -> List[int]:
        """Return the input indices of members within ``eps`` of ``point``."""
        block = self._member_block()
        if block is None:
            return [
                idx
                for idx, member in zip(self.indices, self.points)
                if predicate.similar(point, member)
            ]
        mask = predicate.similar_many(point, block)
        return [idx for idx, ok in zip(self.indices, mask) if ok]

    def hull(self) -> List[Tuple[float, float]]:
        """Return the (cached) 2-d convex hull of the group's members."""
        if self._hull_dirty or self._hull is None:
            self._hull = convex_hull(self.points)
            self._hull_dirty = False
        return self._hull

    def passes_hull_test(self, point: Point, predicate: SimilarityPredicate) -> bool:
        """L2 refinement (Procedure 6): exact membership using the convex hull.

        Only meaningful for 2-d points under the L2 metric; other
        configurations fall back to the exact all-members check.
        """
        if predicate.metric is not Metric.L2 or len(point) != 2:
            return self.all_within(point, predicate)
        from repro.core.hull_filter import convex_hull_test

        return convex_hull_test(point, self.hull(), predicate)
