"""Similarity predicates (paper Definition 2).

A similarity predicate ``xi_{delta,eps}(p, q)`` is true when the metric
distance between ``p`` and ``q`` is at most ``eps``.  The predicate object
also exposes the squared-threshold fast path used for L2 so the inner loops
of the SGB algorithms avoid the square root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.distance import (
    DistanceFunction,
    Metric,
    resolve_metric,
    squared_euclidean,
    within_eps,
)
from repro.exceptions import DimensionalityError, InvalidParameterError

try:  # optional: similar_many falls back to a scalar loop without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

Point = Sequence[float]

__all__ = ["SimilarityPredicate"]


@dataclass(frozen=True)
class SimilarityPredicate:
    """Boolean predicate: ``distance(p, q) <= eps`` under a chosen metric."""

    metric: Metric
    eps: float
    _distance: DistanceFunction = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise InvalidParameterError(
                f"similarity threshold eps must be positive, got {self.eps}"
            )
        metric = resolve_metric(self.metric)
        object.__setattr__(self, "metric", metric)
        object.__setattr__(self, "_distance", metric.function)

    @staticmethod
    def create(metric: "Metric | str", eps: float) -> "SimilarityPredicate":
        """Build a predicate from a metric name (``"L2"``, ``"LINF"``) or enum."""
        return SimilarityPredicate(resolve_metric(metric), eps)

    def distance(self, p: Point, q: Point) -> float:
        """Return the metric distance between ``p`` and ``q``."""
        return self._distance(p, q)

    def similar(self, p: Point, q: Point) -> bool:
        """Return True if ``p`` and ``q`` are within ``eps`` of each other."""
        if self.metric is Metric.L2:
            return squared_euclidean(p, q) <= self.eps * self.eps
        return self._distance(p, q) <= self.eps

    def similar_many(self, p: Point, candidates: "Sequence[Point]") -> "Sequence[bool]":
        """Return one boolean per candidate: is it within ``eps`` of ``p``?

        The vectorised path accepts a NumPy ``(n, d)`` array zero-copy and
        accumulates coordinate terms in the same order as :meth:`similar`,
        so each decision is bit-identical to the scalar call.  Without NumPy
        this is a plain loop over :meth:`similar`.
        """
        if _np is not None:
            block = _np.asarray(candidates, dtype=_np.float64)
            if block.shape[0] == 0:
                return []
            if block.ndim != 2:
                raise DimensionalityError("candidates must form a 2-D (n, d) block")
            probe = _np.asarray([tuple(float(c) for c in p)], dtype=_np.float64)
            return within_eps(probe, block, self.metric, self.eps)[0]
        return [self.similar(p, q) for q in candidates]

    def similar_to_all(self, p: Point, others: "Sequence[Point]") -> bool:
        """Return True if ``p`` is within ``eps`` of *every* point in ``others``."""
        return all(self.similar(p, q) for q in others)

    def similar_to_any(self, p: Point, others: "Sequence[Point]") -> bool:
        """Return True if ``p`` is within ``eps`` of *at least one* point in ``others``."""
        return any(self.similar(p, q) for q in others)

    def __call__(self, p: Point, q: Point) -> bool:
        return self.similar(p, q)
