"""Scalar and aggregate function registries for the engine.

Aggregates follow the classic accumulator protocol (``init`` / ``step`` /
``final``) used by the hash-aggregate and SGB operators.  Besides the SQL
standard aggregates the registry includes the two functions the paper's
application queries rely on:

* ``array_agg`` / ``list_id`` — collect the values of a column per group
  (Query 3's list of user ids);
* ``st_polygon`` — the convex-hull polygon of the group's grouping attributes
  (Query 1's MANET coverage area).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import AggregateError
from repro.geometry.polygon import Polygon

__all__ = [
    "SCALAR_FUNCTIONS",
    "AGGREGATE_FUNCTIONS",
    "Aggregate",
    "create_aggregate",
    "is_aggregate_function",
]


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": _null_safe(abs),
    "round": _null_safe(lambda x, digits=0: round(x, int(digits))),
    "floor": _null_safe(math.floor),
    "ceil": _null_safe(math.ceil),
    "sqrt": _null_safe(math.sqrt),
    "power": _null_safe(lambda x, y: x ** y),
    "ln": _null_safe(math.log),
    "length": _null_safe(len),
    "lower": _null_safe(lambda s: str(s).lower()),
    "upper": _null_safe(lambda s: str(s).upper()),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "greatest": _null_safe(max),
    "least": _null_safe(min),
}


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------


class Aggregate:
    """Accumulator protocol: ``step`` consumes values, ``final`` returns the result.

    ``step_many`` / ``step_count`` are the bulk entry points the columnar SGB
    replay uses; the defaults delegate to ``step`` so custom aggregates stay
    correct, and the built-ins override them where a tighter loop (or an O(1)
    count bump) gives the same result.

    Aggregates whose accumulation decomposes over any partition of the input
    set ``mergeable = True`` and implement the ``partial`` / ``absorb`` pair:
    ``partial`` exports a picklable snapshot of the accumulated state, and
    ``absorb`` folds such a snapshot into another accumulator.  The sharded
    SGB push-down relies on this to aggregate inside worker processes and
    ship only the per-group states back to the coordinator.
    """

    name = "aggregate"
    #: True when partial()/absorb() decompose the aggregate over partitions.
    mergeable = False

    def step(self, value: Any) -> None:
        raise NotImplementedError

    def step_many(self, values: Any) -> None:
        """Consume a whole column slice, preserving ``step``'s per-value order."""
        for value in values:
            self.step(value)

    def step_count(self, n: int) -> None:
        """Consume ``n`` constant steps (the ``count(*)`` replay path)."""
        for _ in range(n):
            self.step(1)

    def final(self) -> Any:
        raise NotImplementedError

    def partial(self) -> Any:
        """Export the accumulated state as a picklable value (mergeable only)."""
        raise AggregateError(f"aggregate {self.name!r} has no partial state")

    def absorb(self, state: Any) -> None:
        """Fold a :meth:`partial` snapshot into this accumulator (mergeable only)."""
        raise AggregateError(f"aggregate {self.name!r} cannot absorb partial state")


class _CountStar(Aggregate):
    name = "count(*)"
    mergeable = True

    def __init__(self) -> None:
        self.count = 0

    def step(self, value: Any) -> None:
        self.count += 1

    def step_many(self, values: Any) -> None:
        self.count += len(values)

    def step_count(self, n: int) -> None:
        self.count += n

    def final(self) -> int:
        return self.count

    def partial(self) -> int:
        return self.count

    def absorb(self, state: int) -> None:
        self.count += state


class _Count(Aggregate):
    name = "count"
    mergeable = True

    def __init__(self) -> None:
        self.count = 0

    def step(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def step_many(self, values: Any) -> None:
        self.count += sum(1 for value in values if value is not None)

    def step_count(self, n: int) -> None:
        self.count += n

    def final(self) -> int:
        return self.count

    def partial(self) -> int:
        return self.count

    def absorb(self, state: int) -> None:
        self.count += state


class _Sum(Aggregate):
    name = "sum"
    mergeable = True

    def __init__(self) -> None:
        self.total: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def step_many(self, values: Any) -> None:
        total = self.total
        for value in values:
            if value is not None:
                total = value if total is None else total + value
        self.total = total

    def final(self) -> Any:
        return self.total

    def partial(self) -> Any:
        return self.total

    def absorb(self, state: Any) -> None:
        if state is None:
            return
        self.total = state if self.total is None else self.total + state


class _Avg(Aggregate):
    name = "avg"
    mergeable = True

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def step(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def step_many(self, values: Any) -> None:
        total = self.total
        count = self.count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self.total = total
        self.count = count

    def final(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def partial(self) -> tuple:
        return (self.total, self.count)

    def absorb(self, state: tuple) -> None:
        total, count = state
        self.total += total
        self.count += count


class _Min(Aggregate):
    name = "min"
    mergeable = True

    def __init__(self) -> None:
        self.value: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def step_many(self, values: Any) -> None:
        best = self.value
        for value in values:
            if value is not None and (best is None or value < best):
                best = value
        self.value = best

    def final(self) -> Any:
        return self.value

    def partial(self) -> Any:
        return self.value

    def absorb(self, state: Any) -> None:
        self.step(state)


class _Max(Aggregate):
    name = "max"
    mergeable = True

    def __init__(self) -> None:
        self.value: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def step_many(self, values: Any) -> None:
        best = self.value
        for value in values:
            if value is not None and (best is None or value > best):
                best = value
        self.value = best

    def final(self) -> Any:
        return self.value

    def partial(self) -> Any:
        return self.value

    def absorb(self, state: Any) -> None:
        self.step(state)


class _ArrayAgg(Aggregate):
    name = "array_agg"

    def __init__(self) -> None:
        self.values: List[Any] = []

    def step(self, value: Any) -> None:
        self.values.append(value)

    def step_many(self, values: Any) -> None:
        self.values.extend(values)

    def final(self) -> List[Any]:
        return list(self.values)


class _StdDev(Aggregate):
    name = "stddev"

    def __init__(self) -> None:
        self.values: List[float] = []

    def step(self, value: Any) -> None:
        if value is not None:
            self.values.append(float(value))

    def final(self) -> Optional[float]:
        n = len(self.values)
        if n < 2:
            return None
        mean = sum(self.values) / n
        return math.sqrt(sum((v - mean) ** 2 for v in self.values) / (n - 1))


class _STPolygon(Aggregate):
    """Collect 2-d points and return their convex-hull :class:`Polygon`."""

    name = "st_polygon"
    arity = 2

    def __init__(self) -> None:
        self.points: List[tuple[float, float]] = []

    def step(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (tuple, list)) or len(value) != 2:
            raise AggregateError("st_polygon expects two numeric arguments per row")
        if value[0] is None or value[1] is None:
            return
        self.points.append((float(value[0]), float(value[1])))

    def final(self) -> Optional[Polygon]:
        if not self.points:
            return None
        return Polygon.from_points(self.points)


_AGGREGATE_FACTORIES: Dict[str, Callable[[], Aggregate]] = {
    "count": _Count,
    "sum": _Sum,
    "avg": _Avg,
    "average": _Avg,
    "min": _Min,
    "max": _Max,
    "array_agg": _ArrayAgg,
    "list_id": _ArrayAgg,
    "stddev": _StdDev,
    "st_polygon": _STPolygon,
}

AGGREGATE_FUNCTIONS = frozenset(_AGGREGATE_FACTORIES)

#: Aggregates whose step consumes a tuple of all argument values per row.
MULTI_ARG_AGGREGATES = frozenset({"st_polygon"})


def is_aggregate_function(name: str) -> bool:
    """Return True if ``name`` refers to a registered aggregate."""
    return name.lower() in _AGGREGATE_FACTORIES


def create_aggregate(name: str, star: bool = False) -> Aggregate:
    """Instantiate a fresh accumulator for the named aggregate."""
    key = name.lower()
    if key == "count" and star:
        return _CountStar()
    if key not in _AGGREGATE_FACTORIES:
        raise AggregateError(f"unknown aggregate function {name!r}")
    return _AGGREGATE_FACTORIES[key]()
