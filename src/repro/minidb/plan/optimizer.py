"""Plan-level analysis helpers (predicate pushdown, equi-join extraction).

These routines implement the little query optimisation the engine needs:

* WHERE clauses are split into conjuncts (:func:`split_conjuncts`);
* each conjunct is attributed to the FROM sources it references
  (:func:`expression_sources`) so single-source predicates are pushed below
  joins;
* ``a = b`` conjuncts spanning exactly two sources become hash-join keys
  (:func:`extract_equi_join`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import PlanningError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    InSet,
    InSubquery,
    IsNull,
    UnaryOp,
)
from repro.minidb.schema import Schema

__all__ = [
    "split_conjuncts",
    "conjoin",
    "collect_column_refs",
    "expression_sources",
    "extract_equi_join",
]


def split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Split an expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Combine conjuncts back into a single AND expression (None when empty)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def collect_column_refs(expr: Expression, found: Optional[List[ColumnRef]] = None) -> List[ColumnRef]:
    """Collect every column reference in an expression tree."""
    if found is None:
        found = []
    if isinstance(expr, ColumnRef):
        found.append(expr)
    for child in expr.children():
        collect_column_refs(child, found)
    if isinstance(expr, (InSubquery,)):
        # Do not descend into the subquery: its references belong to its own scope.
        pass
    return found


def expression_sources(
    expr: Expression, source_schemas: Sequence[Schema]
) -> Set[int]:
    """Return the indexes of the FROM sources the expression references.

    Raises :class:`~repro.exceptions.PlanningError` when a reference cannot be
    resolved against any source (unknown column) — ambiguity across sources is
    also an error for unqualified names.
    """
    sources: Set[int] = set()
    for ref in collect_column_refs(expr):
        hits = [
            i
            for i, schema in enumerate(source_schemas)
            if schema.has_column(ref.name, ref.qualifier)
        ]
        if not hits:
            raise PlanningError(f"unknown column reference {ref.display()!r}")
        if len(hits) > 1:
            raise PlanningError(f"ambiguous column reference {ref.display()!r}")
        sources.add(hits[0])
    return sources


def extract_equi_join(
    conjunct: Expression, source_schemas: Sequence[Schema]
) -> Optional[Tuple[int, Expression, int, Expression]]:
    """If ``conjunct`` is ``exprA = exprB`` across two distinct sources, return them.

    The result is ``(source_a, expr_a, source_b, expr_b)``; ``None`` when the
    conjunct is not an equi-join between exactly two sources.
    """
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    try:
        left_sources = expression_sources(conjunct.left, source_schemas)
        right_sources = expression_sources(conjunct.right, source_schemas)
    except PlanningError:
        return None
    if len(left_sources) != 1 or len(right_sources) != 1:
        return None
    left_source = next(iter(left_sources))
    right_source = next(iter(right_sources))
    if left_source == right_source:
        return None
    return left_source, conjunct.left, right_source, conjunct.right


def rewrite_expression(
    expr: Expression, mapping: Dict[Expression, Expression]
) -> Expression:
    """Structurally replace sub-expressions according to ``mapping``.

    Used by the planner to substitute aggregate calls and group-key
    expressions with references to the aggregate operator's output columns.
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            rewrite_expression(expr.left, mapping),
            rewrite_expression(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rewrite_expression(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(rewrite_expression(a, mapping) for a in expr.args),
            expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            rewrite_expression(expr.expr, mapping),
            tuple(rewrite_expression(v, mapping) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, InSet):
        return InSet(rewrite_expression(expr.expr, mapping), expr.values, expr.negated)
    if isinstance(expr, Between):
        return Between(
            rewrite_expression(expr.expr, mapping),
            rewrite_expression(expr.low, mapping),
            rewrite_expression(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(rewrite_expression(expr.expr, mapping), expr.negated)
    return expr
