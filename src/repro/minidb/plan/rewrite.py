"""Cost-driven logical plan rewrites (filter placement, join reordering).

The planner (:mod:`repro.minidb.plan.planner`) builds the plan exactly as the
SQL arrived: left-deep joins in FROM order, filters where the WHERE clause put
them.  This module runs *between* that logical planning step and execution and
reshapes the tree when the cost model says a different shape is cheaper:

**Rule A — filter placement.**  Each conjunct of a ``Filter`` sinks as deep as
it soundly can: through ``Rename`` and bare-column ``Project`` wrappers (the
derived-table shells), into the matching input of hash and nested-loop joins
(always a win — fewer rows probed, never more), and into the inputs of an
eps similarity join *when* :func:`repro.engine.cost.filter_placement_gain`
prices the early filter pass cheaper than the larger join (otherwise the
conjunct is deliberately deferred above the join and the trace says so).
kNN joins only accept left-side pushes — filtering the right side would
change each row's neighbour set, and SGB subqueries accept none — every SGB
output column is a group centroid or aggregate, so any predicate on them
must see the finished groups.

**Rule B — join reordering.**  A spine of hash joins, nested-loop joins and
eps similarity joins over three or more leaves is re-sequenced greedily by
estimated intermediate cardinality (histogram-overlap selectivity from the
derived :class:`~repro.engine.stats.PointStats`, eps-pair estimates for
similarity joins).  Bit-identity with the original left-deep plan is restored
mechanically: every leaf is tagged with its row index (:class:`TagRows`), the
reordered join runs, and a final :class:`RestoreOrder` sorts on the original
leaves' row ids — the exact enumeration order of the original plan, because
all three join operators emit pairs lexicographically in (left position,
right position) — and projects the tags away.  A reordering is applied only
when its estimated intermediate volume undercuts the original order by a
clear margin, so plans never churn on estimation noise.

Every applied (or deliberately skipped) rewrite is recorded as one trace
string; ``EXPLAIN`` prints the trace and ``result.rewrites`` carries it to
callers, including over HTTP.  ``SGB_OPTIMIZER=off`` (or
``Database(optimizer=False)``) bypasses this module entirely — the
paper-figure runners pin the un-rewritten reference path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import PlanningError
from repro.minidb.exec.aggregate import HashAggregate
from repro.minidb.exec.join import SimilarityJoin
from repro.minidb.exec.operators import (
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Rename,
    RestoreOrder,
    SeqScan,
    Sort,
    TagRows,
)
from repro.minidb.exec.sgb import SGBAggregate
from repro.minidb.exec.statics import (
    estimated_subtree_rows,
    predicate_selectivity,
    trace_point_stats,
    trace_relation_stats,
)
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.minidb.plan.optimizer import (
    conjoin,
    collect_column_refs,
    expression_sources,
    extract_equi_join,
    rewrite_expression,
    split_conjuncts,
)

__all__ = ["ENV_OPTIMIZER", "optimizer_enabled", "optimize_plan"]

#: Environment kill switch; any of ``off``/``0``/``false``/``no`` disables
#: the rewrite layer regardless of the session's ``optimizer=`` setting.
ENV_OPTIMIZER = "SGB_OPTIMIZER"

#: A reordering must beat the original order's estimated intermediate
#: volume by this factor before it is applied (the rid tag/sort machinery
#: is cheap but not free, and estimates are noisy).
_REORDER_MARGIN = 0.9

#: Selectivity assumed for pool conjuncts the histograms cannot price.
_DEFAULT_JOIN_SELECTIVITY = 0.25

#: Cardinality assumed for a leaf without any estimate.
_DEFAULT_LEAF_ROWS = 1000


def optimizer_enabled(setting: bool = True) -> bool:
    """True when the rewrite layer should run.

    ``SGB_OPTIMIZER=off`` always wins (mirrors ``SGB_CACHE``); otherwise the
    session's ``Database(optimizer=)`` setting decides.
    """
    env = os.environ.get(ENV_OPTIMIZER, "").strip().lower()
    if env in ("off", "0", "false", "no"):
        return False
    return bool(setting)


def optimize_plan(
    plan: PhysicalOperator,
) -> Tuple[PhysicalOperator, List[str]]:
    """Apply the rewrite rules; return the new plan and its rule trace.

    The trace lists one human-readable line per applied rewrite (and per
    deliberate deferral that the cost model decided); an empty trace means
    the plan came back untouched.
    """
    trace: List[str] = []
    plan = _place_filters(plan, trace)
    plan = _reorder_joins(plan, trace)
    return plan, trace


# ---------------------------------------------------------------------------
# generic tree rebuilding
# ---------------------------------------------------------------------------


def _with_children(
    node: PhysicalOperator, children: Sequence[PhysicalOperator]
) -> PhysicalOperator:
    """Rebuild ``node`` over new children (identity when nothing changed).

    Types this function cannot rebuild are left untouched — their subtrees
    are opaque to the rewrite rules.
    """
    old = node.children()
    if len(old) == len(children) and all(a is b for a, b in zip(old, children)):
        return node
    if isinstance(node, Filter):
        return Filter(children[0], node.predicate)
    if isinstance(node, Rename):
        return Rename(
            children[0], node.qualifier, [c.name for c in node.schema.columns]
        )
    if isinstance(node, Project):
        return Project(
            children[0],
            node.expressions,
            [c.name for c in node.schema.columns],
            [c.dtype for c in node.schema.columns],
        )
    if isinstance(node, HashJoin):
        return HashJoin(
            children[0],
            children[1],
            node.left_keys,
            node.right_keys,
            residual=node.residual,
        )
    if isinstance(node, NestedLoopJoin):
        return NestedLoopJoin(children[0], children[1], condition=node.condition)
    if isinstance(node, SimilarityJoin):
        return SimilarityJoin(
            children[0],
            children[1],
            node.left_exprs,
            node.right_exprs,
            metric=node.metric,
            eps=node.eps,
            k=node.k,
            workers=node.workers,
            cache=node.cache,
        )
    if isinstance(node, Sort):
        return Sort(children[0], node.keys, node.ascending)
    if isinstance(node, Limit):
        return Limit(children[0], node.limit)
    if isinstance(node, Distinct):
        return Distinct(children[0])
    if isinstance(node, TagRows):
        return TagRows(children[0], node.rid_name)
    if isinstance(node, RestoreOrder):
        return RestoreOrder(children[0], node.rid_positions, node.output_positions)
    if isinstance(node, SGBAggregate):
        offset = 1 if node.window is not None else 0
        key_names = [
            c.name
            for c in node.schema.columns[offset : offset + len(node.key_exprs)]
        ]
        return SGBAggregate(
            children[0],
            node.key_exprs,
            key_names,
            node.aggregates,
            kind=node.kind,
            metric=node.metric,
            eps=node.eps,
            on_overlap=node.on_overlap,
            strategy=node.strategy,
            seed=node.seed,
            workers=node.workers,
            window=node.window,
            slide=node.slide,
            cache=node.cache,
        )
    if isinstance(node, HashAggregate):
        n_keys = len(node.group_exprs)
        return HashAggregate(
            children[0],
            node.group_exprs,
            [c.name for c in node.schema.columns[:n_keys]],
            node.aggregates,
            group_types=[c.dtype for c in node.schema.columns[:n_keys]],
        )
    return node


def _expr_text(expr: Expression) -> str:
    """Compact rendering of an expression for trace lines."""
    if isinstance(expr, ColumnRef):
        return expr.display()
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, BinaryOp):
        return f"{_expr_text(expr.left)} {expr.op} {_expr_text(expr.right)}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op} {_expr_text(expr.operand)}"
    if isinstance(expr, Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_expr_text(expr.expr)} {word} "
            f"{_expr_text(expr.low)} AND {_expr_text(expr.high)}"
        )
    if isinstance(expr, IsNull):
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_expr_text(expr.expr)} {word}"
    return str(expr)


# ---------------------------------------------------------------------------
# Rule A: filter placement
# ---------------------------------------------------------------------------


def _place_filters(node: PhysicalOperator, trace: List[str]) -> PhysicalOperator:
    """Bottom-up pass sinking Filter conjuncts toward the leaves."""
    node = _with_children(
        node, [_place_filters(child, trace) for child in node.children()]
    )
    if not isinstance(node, Filter):
        return node
    child = node.child
    remaining: List[Expression] = []
    moved = False
    for conjunct in split_conjuncts(node.predicate):
        sunk = _sink_conjunct(conjunct, child, trace)
        if sunk is None:
            remaining.append(conjunct)
            continue
        child, landing = sunk
        moved = True
        trace.append(f"filter-pushdown: ({_expr_text(conjunct)}) -> {landing}")
    if not moved:
        return node
    predicate = conjoin(remaining)
    return Filter(child, predicate) if predicate is not None else child


def _sink_conjunct(
    conjunct: Expression, node: PhysicalOperator, trace: List[str]
) -> Optional[Tuple[PhysicalOperator, str]]:
    """Place ``conjunct`` somewhere inside ``node``'s subtree, if sound.

    Returns ``(new_subtree, landing_description)``; ``None`` means the
    conjunct must stay above ``node``.
    """
    if isinstance(node, Filter):
        below = _sink_conjunct(conjunct, node.child, trace)
        if below is None:
            return None
        inner, landing = below
        return Filter(inner, node.predicate), landing
    if isinstance(node, Rename):
        remapped = _remap_through_rename(conjunct, node)
        if remapped is None:
            return None
        below = _sink_conjunct(remapped, node.child, trace)
        if below is None:
            inner: PhysicalOperator = Filter(node.child, remapped)
            landing = f"below {node.describe()}"
        else:
            inner, landing = below
        rebuilt = Rename(
            inner, node.qualifier, [c.name for c in node.schema.columns]
        )
        return rebuilt, landing
    if isinstance(node, Project):
        remapped = _remap_through_project(conjunct, node)
        if remapped is None:
            return None
        below = _sink_conjunct(remapped, node.child, trace)
        if below is None:
            inner = Filter(node.child, remapped)
            landing = f"below {node.describe()}"
        else:
            inner, landing = below
        rebuilt = Project(
            inner,
            node.expressions,
            [c.name for c in node.schema.columns],
            [c.dtype for c in node.schema.columns],
        )
        return rebuilt, landing
    if isinstance(node, (HashJoin, NestedLoopJoin)):
        side = _join_side(conjunct, node)
        if side is None:
            return None
        which, operand = side
        below = _sink_conjunct(conjunct, operand, trace)
        if below is None:
            new_operand: PhysicalOperator = Filter(operand, conjunct)
            landing = f"into {which} input of {type(node).__name__}"
        else:
            new_operand, landing = below
        if which == "left":
            rebuilt = _with_children(node, [new_operand, node.right])
        else:
            rebuilt = _with_children(node, [node.left, new_operand])
        return rebuilt, landing
    if isinstance(node, SimilarityJoin):
        return _sink_into_similarity_join(conjunct, node, trace)
    return None


def _remap_through_rename(
    conjunct: Expression, node: Rename
) -> Optional[Expression]:
    """Re-express a conjunct over the Rename's child columns."""
    mapping: Dict[Expression, Expression] = {}
    child_schema = node.child.schema
    for ref in collect_column_refs(conjunct):
        if not node.schema.has_column(ref.name, ref.qualifier):
            return None
        position = node.schema.index_of(ref.name, ref.qualifier)
        column = child_schema.columns[position]
        mapping[ref] = ColumnRef(column.name, column.qualifier)
    return rewrite_expression(conjunct, mapping)


def _remap_through_project(
    conjunct: Expression, node: Project
) -> Optional[Expression]:
    """Re-express a conjunct over the Project's input, when every referenced
    output column is a bare pass-through of an input column."""
    mapping: Dict[Expression, Expression] = {}
    for ref in collect_column_refs(conjunct):
        if not node.schema.has_column(ref.name, ref.qualifier):
            return None
        source = node.expressions[node.schema.index_of(ref.name, ref.qualifier)]
        if not isinstance(source, ColumnRef):
            return None
        mapping[ref] = source
    return rewrite_expression(conjunct, mapping)


def _join_side(
    conjunct: Expression, node: PhysicalOperator
) -> Optional[Tuple[str, PhysicalOperator]]:
    """The single join input a conjunct's references resolve into, if any."""
    n_left = len(node.left.schema)
    positions = []
    for ref in collect_column_refs(conjunct):
        if not node.schema.has_column(ref.name, ref.qualifier):
            return None
        positions.append(node.schema.index_of(ref.name, ref.qualifier))
    if all(p < n_left for p in positions):
        return "left", node.left
    if positions and all(p >= n_left for p in positions):
        return "right", node.right
    return None


def _sink_into_similarity_join(
    conjunct: Expression, node: SimilarityJoin, trace: List[str]
) -> Optional[Tuple[PhysicalOperator, str]]:
    side = _join_side(conjunct, node)
    if side is None:
        return None
    which, operand = side
    if node.k is not None:
        if which == "right":
            # Filtering the right side of a kNN join changes every left
            # row's neighbour set — never sound.
            return None
        # Left-side pushes are always profitable for kNN: every removed
        # left row is one index probe saved, and no other row's neighbours
        # depend on it.
        landing = "into left input of kNN join"
    else:
        from repro.engine.cost import filter_placement_gain

        dims = len(node.left_exprs)
        side_exprs = node.left_exprs if which == "left" else node.right_exprs
        other_exprs = node.right_exprs if which == "left" else node.left_exprs
        other_node = node.right if which == "left" else node.left
        side_stats = trace_point_stats(operand, side_exprs, dims)
        other_stats = trace_point_stats(other_node, other_exprs, dims)
        selectivity = predicate_selectivity(operand, conjunct)
        gain = filter_placement_gain(
            side_stats, other_stats, node.eps, selectivity
        )
        if gain <= 0.0:
            trace.append(
                f"filter-deferral: ({_expr_text(conjunct)}) kept above "
                f"eps-join (est gain {gain:.6f}s)"
            )
            return None
        landing = (
            f"into {which} input of eps-join (est gain {gain:.6f}s, "
            f"selectivity {selectivity:.3f})"
        )
    below = _sink_conjunct(conjunct, operand, trace)
    new_operand = below[0] if below is not None else Filter(operand, conjunct)
    if which == "left":
        rebuilt = _with_children(node, [new_operand, node.right])
    else:
        rebuilt = _with_children(node, [node.left, new_operand])
    return rebuilt, landing


# ---------------------------------------------------------------------------
# Rule B: join reordering
# ---------------------------------------------------------------------------


def _is_spine_join(node: PhysicalOperator) -> bool:
    """Joins the reorderer may decompose.

    kNN joins are excluded: their output is ordered by distance rank, not by
    right-row position, so a rid sort cannot restore it — a kNN subtree is
    an opaque leaf instead.
    """
    if isinstance(node, (HashJoin, NestedLoopJoin)):
        return True
    return isinstance(node, SimilarityJoin) and node.eps is not None


def _reorder_joins(node: PhysicalOperator, trace: List[str]) -> PhysicalOperator:
    if _is_spine_join(node):
        reordered = _try_reorder_spine(node, trace)
        if reordered is not None:
            return reordered
    return _with_children(
        node, [_reorder_joins(child, trace) for child in node.children()]
    )


def _decompose_spine(
    node: PhysicalOperator,
    leaves: List[PhysicalOperator],
    pool: List[Expression],
    sims: Dict[int, SimilarityJoin],
) -> None:
    """Flatten a left-deep join spine into leaves + conjunct pool + sim clauses."""
    if isinstance(node, HashJoin):
        _decompose_spine(node.left, leaves, pool, sims)
        leaves.append(node.right)
        for left_key, right_key in zip(node.left_keys, node.right_keys):
            pool.append(BinaryOp("=", left_key, right_key))
        if node.residual is not None:
            pool.extend(split_conjuncts(node.residual))
        return
    if isinstance(node, NestedLoopJoin):
        _decompose_spine(node.left, leaves, pool, sims)
        leaves.append(node.right)
        if node.condition is not None:
            pool.extend(split_conjuncts(node.condition))
        return
    if isinstance(node, SimilarityJoin) and node.eps is not None:
        _decompose_spine(node.left, leaves, pool, sims)
        leaves.append(node.right)
        sims[len(leaves) - 1] = node
        return
    leaves.append(node)


def _leaf_label(node: PhysicalOperator, index: int) -> str:
    """A short name for a join leaf (alias of the scan it wraps)."""
    current: Optional[PhysicalOperator] = node
    while current is not None:
        if isinstance(current, SeqScan):
            return current.alias
        if isinstance(current, Rename) and current.qualifier:
            return current.qualifier
        children = current.children()
        current = children[0] if children else None
    return f"leaf{index}"


def _pool_selectivity(
    conjunct: Expression,
    leaves: List[PhysicalOperator],
    leaf_schemas: List,
) -> float:
    """Estimated selectivity of one pool conjunct over the cross product."""
    equi = extract_equi_join(conjunct, leaf_schemas)
    if equi is not None:
        source_a, expr_a, source_b, expr_b = equi
        if isinstance(expr_a, ColumnRef) and isinstance(expr_b, ColumnRef):
            stats_a = trace_relation_stats(leaves[source_a], [expr_a])
            stats_b = trace_relation_stats(leaves[source_b], [expr_b])
            if stats_a is not None and stats_b is not None:
                if stats_a.count == 0 or stats_b.count == 0:
                    return 0.0
                return max(
                    0.0, min(1.0, stats_a.cross_pair_fraction(stats_b, 0, 0.0))
                )
        return _DEFAULT_JOIN_SELECTIVITY
    if not collect_column_refs(conjunct):
        return 1.0
    return _DEFAULT_JOIN_SELECTIVITY


def _sim_selectivity(node: SimilarityJoin) -> float:
    """Per-pair selectivity of one eps similarity clause."""
    dims = len(node.left_exprs)
    left_stats = trace_point_stats(node.left, node.left_exprs, dims)
    right_stats = trace_point_stats(node.right, node.right_exprs, dims)
    n_pairs = max(1, left_stats.count * right_stats.count)
    est = left_stats.estimated_join_pairs(right_stats, node.eps)
    return max(0.0, min(1.0, est / n_pairs))


def _order_cost(
    order: List[int],
    sizes: List[float],
    pool_refs: List[Set[int]],
    pool_sel: List[float],
    sims: Dict[int, SimilarityJoin],
    sim_prereqs: Dict[int, Set[int]],
    sim_sel: Dict[int, float],
) -> Optional[float]:
    """Total estimated intermediate row volume of one join order.

    ``None`` when the order is infeasible (a similarity right side entering
    before the leaves its left coordinates reference).
    """
    chosen: Set[int] = set()
    placed: Set[int] = set()
    current = 0.0
    total = 0.0
    for step, index in enumerate(order):
        if index in sims and not sim_prereqs[index] <= chosen:
            return None
        if step == 0:
            if index in sims:
                return None
            current = sizes[index]
        else:
            current = current * sizes[index]
            if index in sims:
                current *= sim_sel[index]
            for c, refs in enumerate(pool_refs):
                if c in placed:
                    continue
                if refs <= chosen | {index} and index in refs:
                    current *= pool_sel[c]
                    placed.add(c)
        chosen.add(index)
        total += current
    return total


def _greedy_order(
    sizes: List[float],
    pool_refs: List[Set[int]],
    pool_sel: List[float],
    sims: Dict[int, SimilarityJoin],
    sim_prereqs: Dict[int, Set[int]],
    sim_sel: Dict[int, float],
) -> Optional[List[int]]:
    """Greedily sequence the leaves by estimated intermediate cardinality."""
    m = len(sizes)
    chosen: List[int] = []
    chosen_set: Set[int] = set()
    placed: Set[int] = set()
    current = 0.0
    while len(chosen) < m:
        best: Optional[Tuple[float, int, Set[int]]] = None
        for index in range(m):
            if index in chosen_set:
                continue
            if index in sims:
                if not chosen:
                    continue
                if not sim_prereqs[index] <= chosen_set:
                    continue
            if not chosen:
                estimate = sizes[index]
                newly: Set[int] = set()
            else:
                estimate = current * sizes[index]
                if index in sims:
                    estimate *= sim_sel[index]
                newly = set()
                for c, refs in enumerate(pool_refs):
                    if c in placed:
                        continue
                    if refs <= chosen_set | {index} and index in refs:
                        estimate *= pool_sel[c]
                        newly.add(c)
            if best is None or (estimate, index) < (best[0], best[1]):
                best = (estimate, index, newly)
        if best is None:
            return None
        current = best[0]
        chosen.append(best[1])
        chosen_set.add(best[1])
        placed |= best[2]
    return chosen


def _try_reorder_spine(
    node: PhysicalOperator, trace: List[str]
) -> Optional[PhysicalOperator]:
    """Reorder one join spine, or ``None`` to leave it to generic recursion."""
    leaves: List[PhysicalOperator] = []
    pool: List[Expression] = []
    sims: Dict[int, SimilarityJoin] = {}
    _decompose_spine(node, leaves, pool, sims)
    m = len(leaves)
    if m < 3:
        return None
    leaf_schemas = [leaf.schema for leaf in leaves]
    try:
        pool_refs = [expression_sources(c, leaf_schemas) for c in pool]
        sim_prereqs = {
            index: set().union(
                *(
                    expression_sources(e, leaf_schemas)
                    for e in sim.left_exprs
                )
            )
            for index, sim in sims.items()
        }
    except PlanningError:
        return None
    if any(index in refs for index, refs in sim_prereqs.items()):
        return None  # a sim clause referencing its own right side: bail out
    pool_sel = [_pool_selectivity(c, leaves, leaf_schemas) for c in pool]
    sim_sel = {index: _sim_selectivity(sim) for index, sim in sims.items()}
    sizes = [
        float(estimated_subtree_rows(leaf) or _DEFAULT_LEAF_ROWS)
        for leaf in leaves
    ]
    identity = list(range(m))
    original_cost = _order_cost(
        identity, sizes, pool_refs, pool_sel, sims, sim_prereqs, sim_sel
    )
    order = _greedy_order(sizes, pool_refs, pool_sel, sims, sim_prereqs, sim_sel)
    if order is None or order == identity or original_cost is None:
        return None
    new_cost = _order_cost(
        order, sizes, pool_refs, pool_sel, sims, sim_prereqs, sim_sel
    )
    if new_cost is None or new_cost > original_cost * _REORDER_MARGIN:
        return None
    # Optimize inside each leaf subtree before rebuilding the spine.
    leaves = [_reorder_joins(leaf, trace) for leaf in leaves]
    rebuilt = _rebuild_spine(leaves, order, pool, pool_refs, sims)
    labels = [_leaf_label(leaf, i) for i, leaf in enumerate(leaves)]
    trace.append(
        "join-reorder: ["
        + ", ".join(labels)
        + "] -> ["
        + ", ".join(labels[i] for i in order)
        + f"] (est volume {original_cost:.0f} -> {new_cost:.0f} rows)"
    )
    return rebuilt


def _rebuild_spine(
    leaves: List[PhysicalOperator],
    order: List[int],
    pool: List[Expression],
    pool_refs: List[Set[int]],
    sims: Dict[int, SimilarityJoin],
) -> PhysicalOperator:
    """Left-deep join over ``leaves`` in ``order``, rid-tagged and re-sorted.

    Each leaf is tagged with its row index under the unique name ``#ridI``
    (``I`` = original FROM position); the trailing :class:`RestoreOrder`
    sorts on the rids in original significance order and projects the
    original concatenated column layout back out.
    """
    leaf_schemas = [leaf.schema for leaf in leaves]
    tagged = [
        TagRows(leaf, f"#rid{index}") for index, leaf in enumerate(leaves)
    ]
    plan: PhysicalOperator = tagged[order[0]]
    chosen: Set[int] = {order[0]}
    placed: Set[int] = set()
    for index in order[1:]:
        applicable: List[int] = []
        for c, refs in enumerate(pool_refs):
            if c in placed:
                continue
            if refs <= chosen | {index} and index in refs:
                applicable.append(c)
                placed.add(c)
        if index in sims:
            sim = sims[index]
            plan = SimilarityJoin(
                plan,
                tagged[index],
                sim.left_exprs,
                sim.right_exprs,
                metric=sim.metric,
                eps=sim.eps,
                k=None,
                workers=sim.workers,
                cache=sim.cache,
            )
            residual = [pool[c] for c in applicable]
            predicate = conjoin(residual)
            if predicate is not None:
                plan = Filter(plan, predicate)
        else:
            left_keys: List[Expression] = []
            right_keys: List[Expression] = []
            residual = []
            for c in applicable:
                equi = extract_equi_join(pool[c], leaf_schemas)
                if equi is not None:
                    source_a, expr_a, source_b, expr_b = equi
                    if source_a in chosen and source_b == index:
                        left_keys.append(expr_a)
                        right_keys.append(expr_b)
                        continue
                    if source_b in chosen and source_a == index:
                        left_keys.append(expr_b)
                        right_keys.append(expr_a)
                        continue
                residual.append(pool[c])
            if left_keys:
                plan = HashJoin(
                    plan,
                    tagged[index],
                    left_keys,
                    right_keys,
                    residual=conjoin(residual),
                )
            else:
                plan = NestedLoopJoin(
                    plan, tagged[index], condition=conjoin(residual)
                )
        chosen.add(index)
    # Positions in the rebuilt concat schema are arithmetic: the tagged leaf
    # at step s starts at the total width of the tagged leaves before it.
    starts: Dict[int, int] = {}
    offset = 0
    for index in order:
        starts[index] = offset
        offset += len(leaf_schemas[index]) + 1
    rid_positions = [
        starts[index] + len(leaf_schemas[index]) for index in range(len(leaves))
    ]
    output_positions: List[int] = []
    for index in range(len(leaves)):
        output_positions.extend(
            starts[index] + column for column in range(len(leaf_schemas[index]))
        )
    return RestoreOrder(plan, rid_positions, output_positions)
