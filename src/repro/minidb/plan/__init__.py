"""Query planning: statement AST -> physical operator tree."""

from repro.minidb.plan.planner import Planner, PlannerSettings
from repro.minidb.plan.optimizer import (
    collect_column_refs,
    expression_sources,
    split_conjuncts,
)

__all__ = [
    "Planner",
    "PlannerSettings",
    "split_conjuncts",
    "collect_column_refs",
    "expression_sources",
]
