"""Query planning: statement AST -> physical operator tree (+ rewrites)."""

from repro.minidb.plan.planner import Planner, PlannerSettings
from repro.minidb.plan.optimizer import (
    collect_column_refs,
    expression_sources,
    split_conjuncts,
)
from repro.minidb.plan.rewrite import (
    ENV_OPTIMIZER,
    optimize_plan,
    optimizer_enabled,
)

__all__ = [
    "Planner",
    "PlannerSettings",
    "split_conjuncts",
    "collect_column_refs",
    "expression_sources",
    "ENV_OPTIMIZER",
    "optimize_plan",
    "optimizer_enabled",
]
