"""The planner: turn a parsed statement into a physical operator tree.

Responsibilities:

* resolve FROM sources (base tables and derived tables) against the catalog;
* rewrite uncorrelated ``IN (SELECT ...)`` predicates into membership tests
  against a materialised value set;
* push single-source predicates below the joins and turn equi-join conjuncts
  into hash joins (left-deep, in FROM order);
* plan standard GROUP BY queries onto :class:`HashAggregate` and similarity
  group-by queries onto :class:`SGBAggregate`;
* substitute aggregate calls / group keys in the SELECT list and HAVING
  clause with references to the aggregate operator's output columns;
* add DISTINCT / ORDER BY / LIMIT decorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.distance import resolve_metric
from repro.core.overlap import OverlapAction
from repro.exceptions import PlanningError
from repro.minidb.catalog import Catalog
from repro.minidb.exec.aggregate import AggregateSpec, HashAggregate
from repro.minidb.exec.operators import (
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Rename,
    SeqScan,
    Sort,
)
from repro.minidb.exec.join import SimilarityJoin
from repro.minidb.exec.sgb import SGBAggregate
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    InSet,
    InSubquery,
    IsNull,
    Literal,
    Star,
    UnaryOp,
    compile_expression,
    contains_aggregate,
    expression_name,
    extract_aggregates,
)
from repro.minidb.plan.optimizer import (
    conjoin,
    expression_sources,
    extract_equi_join,
    rewrite_expression,
    split_conjuncts,
)
from repro.minidb.schema import Schema
from repro.minidb.sql.ast import (
    GroupBySpec,
    SGBSpec,
    SelectItem,
    SelectStatement,
    SimilarityJoinClause,
    SubquerySource,
    TableSource,
)
from repro.minidb.types import DataType, infer_type

__all__ = ["Planner", "PlannerSettings"]


@dataclass
class PlannerSettings:
    """Session-level knobs the planner consults.

    ``sgb_strategy`` selects the algorithm used by similarity group-by nodes
    (``"all-pairs"``, ``"bounds-checking"``, or ``"index"``); ``sgb_seed``
    seeds the JOIN-ANY arbitration so plans are reproducible; ``sgb_workers``
    is the session default for the SGB clause's ``WORKERS`` option (``None``
    defers to the ``SGB_WORKERS`` environment variable, then serial);
    ``cache`` is the result-cache knob handed to the similarity operators
    (resolved at execution time by :func:`repro.storage.resolve_cache`, so
    ``SGB_CACHE=off`` always wins); ``optimizer`` enables the cost-driven
    logical rewrite layer (:mod:`repro.minidb.plan.rewrite` — checked by
    ``Database`` after planning, with ``SGB_OPTIMIZER=off`` always winning).
    """

    sgb_strategy: str = "index"
    sgb_seed: int = 0
    sgb_workers: "Optional[int | str]" = None
    cache: object = None
    optimizer: bool = True
    extra: Dict[str, object] = field(default_factory=dict)


class Planner:
    """Plans SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog, settings: Optional[PlannerSettings] = None) -> None:
        self.catalog = catalog
        self.settings = settings or PlannerSettings()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan_select(self, stmt: SelectStatement) -> PhysicalOperator:
        """Return the physical plan for a SELECT statement."""
        plan = self._plan_from_where(stmt)
        plan = self._plan_aggregation_and_projection(stmt, plan)
        if stmt.distinct:
            plan = Distinct(plan)
        plan = self._plan_order_limit(stmt, plan)
        return plan

    # ------------------------------------------------------------------
    # FROM / WHERE
    # ------------------------------------------------------------------

    def _plan_from_where(self, stmt: SelectStatement) -> PhysicalOperator:
        sources = [self._plan_source(item) for item in stmt.from_items]
        if not sources:
            raise PlanningError("SELECT without FROM is not supported")

        conjuncts = split_conjuncts(stmt.where)
        for condition in stmt.join_conditions:
            conjuncts.extend(split_conjuncts(condition))
        conjuncts = [self._rewrite_in_subqueries(c) for c in conjuncts]

        schemas = [op.schema for op in sources]

        # Push single-source conjuncts down to their source.
        remaining: List[Expression] = []
        for conjunct in conjuncts:
            try:
                refs = expression_sources(conjunct, schemas)
            except PlanningError:
                remaining.append(conjunct)
                continue
            if len(refs) == 1:
                index = next(iter(refs))
                sources[index] = Filter(sources[index], conjunct)
                schemas[index] = sources[index].schema
            else:
                remaining.append(conjunct)

        # Left-deep joins in FROM order, preferring hash joins on equi-conjuncts.
        # A source joined with SIMILARITY JOIN gets the distance-pairing
        # operator instead; its WHERE conjuncts were pushed below it already
        # and the cross-source ones become post-join filters.
        similarity = dict(stmt.similarity_joins)
        plan = sources[0]
        joined = {0}
        for next_index in range(1, len(sources)):
            clause = similarity.get(next_index)
            if clause is not None:
                plan = self._plan_similarity_join(plan, sources[next_index], clause)
            else:
                plan, remaining = self._join_next(
                    plan, joined, sources, schemas, next_index, remaining
                )
            joined.add(next_index)

        # Whatever could not be attached to a join becomes a post-join filter.
        for conjunct in remaining:
            plan = Filter(plan, conjunct)
        return plan

    def _plan_source(self, item) -> PhysicalOperator:
        if isinstance(item, TableSource):
            table = self.catalog.get_table(item.name)
            return SeqScan(table, alias=item.alias)
        if isinstance(item, SubquerySource):
            child = self.plan_select(item.query)
            return Rename(child, qualifier=item.alias)
        raise PlanningError(f"unsupported FROM item {item!r}")

    def _join_next(
        self,
        plan: PhysicalOperator,
        joined: set,
        sources: List[PhysicalOperator],
        schemas: List[Schema],
        next_index: int,
        conjuncts: List[Expression],
    ) -> Tuple[PhysicalOperator, List[Expression]]:
        right = sources[next_index]
        applicable: List[Expression] = []
        deferred: List[Expression] = []
        for conjunct in conjuncts:
            try:
                refs = expression_sources(conjunct, schemas)
            except PlanningError:
                deferred.append(conjunct)
                continue
            if refs and refs <= joined | {next_index} and next_index in refs:
                applicable.append(conjunct)
            else:
                deferred.append(conjunct)

        left_keys: List[Expression] = []
        right_keys: List[Expression] = []
        residual: List[Expression] = []
        for conjunct in applicable:
            equi = extract_equi_join(conjunct, schemas)
            if equi is not None:
                source_a, expr_a, source_b, expr_b = equi
                if source_a in joined and source_b == next_index:
                    left_keys.append(expr_a)
                    right_keys.append(expr_b)
                    continue
                if source_b in joined and source_a == next_index:
                    left_keys.append(expr_b)
                    right_keys.append(expr_a)
                    continue
            residual.append(conjunct)

        if left_keys:
            join: PhysicalOperator = HashJoin(
                plan, right, left_keys, right_keys, residual=conjoin(residual)
            )
        else:
            join = NestedLoopJoin(plan, right, condition=conjoin(residual))
        return join, deferred

    def _plan_similarity_join(
        self,
        plan: PhysicalOperator,
        right: PhysicalOperator,
        clause: SimilarityJoinClause,
    ) -> PhysicalOperator:
        """Validate one SIMILARITY JOIN clause and build its operator.

        Checks: a positive numeric WITHIN threshold or a positive integer
        KNN count, a metric the core supports, coordinate expressions that
        resolve against their own side (left half against everything joined
        so far, right half against the joined source), and a non-negative
        WORKERS count.
        """
        metric = resolve_metric(clause.metric).value
        eps: Optional[float] = None
        k: Optional[int] = None
        if clause.eps is not None:
            eps_value = self._constant_value(clause.eps)
            if (
                not isinstance(eps_value, (int, float))
                or isinstance(eps_value, bool)
                or eps_value <= 0
            ):
                raise PlanningError(
                    f"WITHIN threshold must be a positive numeric constant, "
                    f"got {eps_value!r}"
                )
            eps = float(eps_value)
        else:
            assert clause.k is not None  # the parser guarantees one of the two
            k = self._positive_int(clause.k, "KNN")
        workers: "Optional[int | str]" = self.settings.sgb_workers
        if clause.workers is not None:
            workers_value = self._constant_value(clause.workers)
            if (
                not isinstance(workers_value, int)
                or isinstance(workers_value, bool)
                or workers_value < 0
            ):
                raise PlanningError(
                    f"WORKERS must be a non-negative integer constant, "
                    f"got {workers_value!r}"
                )
            workers = workers_value
        for expr in clause.left_exprs:
            if not self._resolvable(expr, plan.schema):
                raise PlanningError(
                    f"SIMILARITY JOIN coordinate {expr!r} does not resolve "
                    "against the left side; DISTANCE(...) lists the left "
                    "side's coordinates first, then the right side's"
                )
        for expr in clause.right_exprs:
            if not self._resolvable(expr, right.schema):
                raise PlanningError(
                    f"SIMILARITY JOIN coordinate {expr!r} does not resolve "
                    "against the joined source; DISTANCE(...) lists the left "
                    "side's coordinates first, then the right side's"
                )
        return SimilarityJoin(
            plan,
            right,
            clause.left_exprs,
            clause.right_exprs,
            metric=metric,
            eps=eps,
            k=k,
            workers=workers,
            cache=self.settings.cache,
        )

    # ------------------------------------------------------------------
    # IN (SELECT ...) rewriting
    # ------------------------------------------------------------------

    def _rewrite_in_subqueries(self, expr: Expression) -> Expression:
        if isinstance(expr, InSubquery):
            values = self._materialise_subquery_values(expr.subquery)
            return InSet(
                self._rewrite_in_subqueries(expr.expr), frozenset(values), expr.negated
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._rewrite_in_subqueries(expr.left),
                self._rewrite_in_subqueries(expr.right),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._rewrite_in_subqueries(expr.operand))
        if isinstance(expr, (InList, Between, IsNull, FuncCall)):
            return rewrite_expression(expr, {})
        return expr

    def _materialise_subquery_values(self, subquery: SelectStatement) -> List[object]:
        plan = self.plan_select(subquery)
        if len(plan.schema) != 1:
            raise PlanningError("IN subquery must return exactly one column")
        return [row[0] for row in plan.rows()]

    # ------------------------------------------------------------------
    # aggregation & projection
    # ------------------------------------------------------------------

    def _plan_aggregation_and_projection(
        self, stmt: SelectStatement, plan: PhysicalOperator
    ) -> PhysicalOperator:
        items = self._expand_stars(stmt.items, plan.schema)
        has_aggregates = any(contains_aggregate(item.expr) for item in items) or (
            stmt.having is not None and contains_aggregate(stmt.having)
        )
        if stmt.group_by is None and not has_aggregates:
            if len(items) == 1 and isinstance(items[0].expr, Star):
                return plan
            return self._project(items, plan)
        return self._plan_aggregate(stmt, items, plan)

    def _expand_stars(
        self, items: Sequence[SelectItem], schema: Schema
    ) -> List[SelectItem]:
        expanded: List[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star) and len(items) > 1:
                for column in schema.columns:
                    expanded.append(
                        SelectItem(ColumnRef(column.name, column.qualifier), None)
                    )
            else:
                expanded.append(item)
        return expanded

    def _project(
        self, items: Sequence[SelectItem], plan: PhysicalOperator
    ) -> PhysicalOperator:
        expressions: List[Expression] = []
        names: List[str] = []
        types: List[DataType] = []
        for item in items:
            if isinstance(item.expr, Star):
                for i, column in enumerate(plan.schema.columns):
                    expressions.append(ColumnRef(column.name, column.qualifier))
                    names.append(column.name)
                    types.append(column.dtype)
                continue
            expressions.append(item.expr)
            names.append(item.alias or expression_name(item.expr))
            types.append(self._infer_type(item.expr, plan.schema))
        names = _deduplicate(names)
        return Project(plan, expressions, names, types)

    def _plan_aggregate(
        self,
        stmt: SelectStatement,
        items: Sequence[SelectItem],
        plan: PhysicalOperator,
    ) -> PhysicalOperator:
        group_by = stmt.group_by or GroupBySpec(keys=())
        key_exprs = list(group_by.keys)

        # Collect every aggregate call appearing in the SELECT list or HAVING.
        agg_calls: List[FuncCall] = []
        for item in items:
            extract_aggregates(item.expr, agg_calls)
        if stmt.having is not None:
            extract_aggregates(stmt.having, agg_calls)
        if not agg_calls and group_by.sgb is None and not key_exprs:
            raise PlanningError("GROUP BY query without aggregates or keys")

        key_names = _deduplicate(
            [expression_name(expr) for expr in key_exprs] or []
        )
        agg_specs = [
            AggregateSpec(
                func=call.name,
                args=call.args,
                star=call.star,
                output_name=f"agg_{i}",
            )
            for i, call in enumerate(agg_calls)
        ]

        if group_by.sgb is not None:
            aggregate_op = self._plan_sgb_aggregate(group_by, key_exprs, key_names, agg_specs, plan)
        else:
            key_types = [self._infer_type(e, plan.schema) for e in key_exprs]
            aggregate_op = HashAggregate(
                plan, key_exprs, key_names, agg_specs, group_types=key_types
            )

        # Build the substitution used to rewrite SELECT / HAVING expressions.
        mapping: Dict[Expression, Expression] = {}
        for name, expr in zip(key_names, key_exprs):
            mapping[expr] = ColumnRef(name)
        for spec, call in zip(agg_specs, agg_calls):
            mapping[call] = ColumnRef(spec.output_name)

        result: PhysicalOperator = aggregate_op
        if stmt.having is not None:
            result = Filter(result, rewrite_expression(stmt.having, mapping))

        expressions: List[Expression] = []
        names: List[str] = []
        types: List[DataType] = []
        for item in items:
            rewritten = rewrite_expression(item.expr, mapping)
            expressions.append(rewritten)
            names.append(item.alias or expression_name(item.expr))
            types.append(self._infer_type(rewritten, result.schema))
        names = _deduplicate(names)
        return Project(result, expressions, names, types)

    def _plan_sgb_aggregate(
        self,
        group_by: GroupBySpec,
        key_exprs: List[Expression],
        key_names: List[str],
        agg_specs: List[AggregateSpec],
        plan: PhysicalOperator,
    ) -> PhysicalOperator:
        sgb = group_by.sgb
        assert sgb is not None
        eps_value = self._constant_value(sgb.eps)
        if not isinstance(eps_value, (int, float)) or eps_value <= 0:
            raise PlanningError(
                f"WITHIN threshold must be a positive numeric constant, got {eps_value!r}"
            )
        metric = resolve_metric(sgb.metric).value
        on_overlap = (
            OverlapAction.parse(sgb.on_overlap).value if sgb.on_overlap else None
        )
        workers: "Optional[int | str]" = self.settings.sgb_workers
        if sgb.workers is not None:
            workers_value = self._constant_value(sgb.workers)
            if not isinstance(workers_value, int) or isinstance(workers_value, bool) or workers_value < 0:
                raise PlanningError(
                    f"WORKERS must be a non-negative integer constant, got {workers_value!r}"
                )
            workers = workers_value
        window, slide = self._window_spec(sgb)
        return SGBAggregate(
            plan,
            key_exprs,
            key_names,
            agg_specs,
            kind=sgb.kind,
            metric=metric,
            eps=float(eps_value),
            on_overlap=on_overlap,
            strategy=self.settings.sgb_strategy,
            seed=self.settings.sgb_seed,
            workers=workers,
            window=window,
            slide=slide,
            cache=self.settings.cache,
        )

    def _window_spec(self, sgb: "SGBSpec") -> "tuple[Optional[int], Optional[int]]":
        """Validate the ``WINDOW n [SLIDE m]`` option of a similarity clause."""
        if sgb.window is None:
            if sgb.slide is not None:  # unreachable via the parser; belt-and-braces
                raise PlanningError("SLIDE requires a WINDOW clause")
            return None, None
        if sgb.kind != "any":
            raise PlanningError(
                "WINDOW requires DISTANCE-TO-ANY: the streaming subsystem has no "
                "order-dependent overlap arbitration to replay"
            )
        from repro.core.sgb_all import SGBAllStrategy

        if SGBAllStrategy.parse(self.settings.sgb_strategy) is SGBAllStrategy.ALL_PAIRS:
            # The streaming session always runs the grid/index pipeline;
            # silently substituting it for a requested all-pairs ablation
            # would make strategy measurements through WINDOW meaningless.
            raise PlanningError(
                "WINDOW cannot run under the all-pairs strategy: the streaming "
                "subsystem groups through the grid/index pipeline only"
            )
        window = self._positive_int(sgb.window, "WINDOW")
        slide: Optional[int] = None
        if sgb.slide is not None:
            slide = self._positive_int(sgb.slide, "SLIDE")
            if slide > window:
                raise PlanningError(
                    f"SLIDE ({slide}) must not exceed the WINDOW size ({window})"
                )
            if window % slide != 0:
                raise PlanningError(
                    f"WINDOW size ({window}) must be a multiple of SLIDE ({slide}) "
                    "so expiry always drops whole epochs"
                )
        return window, slide

    def _positive_int(self, expr: Expression, what: str) -> int:
        value = self._constant_value(expr)
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise PlanningError(
                f"{what} must be a positive integer constant, got {value!r}"
            )
        return value

    @staticmethod
    def _constant_value(expr: Expression) -> object:
        """Evaluate a constant expression (WITHIN thresholds)."""
        empty_schema = Schema([])
        try:
            return compile_expression(expr, empty_schema)(())
        except Exception as exc:  # noqa: BLE001 - surfaced as a planning error
            raise PlanningError(f"expected a constant expression, got {expr!r}") from exc

    # ------------------------------------------------------------------
    # ORDER BY / LIMIT
    # ------------------------------------------------------------------

    def _plan_order_limit(
        self, stmt: SelectStatement, plan: PhysicalOperator
    ) -> PhysicalOperator:
        if stmt.order_by:
            keys: List[Expression] = []
            ascending: List[bool] = []
            for order in stmt.order_by:
                expr = order.expr
                if isinstance(expr, Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                    if not 0 <= position < len(plan.schema):
                        raise PlanningError(
                            f"ORDER BY position {expr.value} is out of range"
                        )
                    column = plan.schema.column_at(position)
                    expr = ColumnRef(column.name, column.qualifier)
                keys.append(expr)
                ascending.append(order.ascending)
            plan = self._place_sort(plan, keys, ascending)
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _place_sort(
        self,
        plan: PhysicalOperator,
        keys: List[Expression],
        ascending: List[bool],
    ) -> PhysicalOperator:
        """Attach the Sort either above or below the final projection.

        SQL allows ordering by columns that are not part of the SELECT list
        (``SELECT id FROM t ORDER BY x``).  When a key does not resolve
        against the projected schema but does resolve against the
        projection's input, the sort is placed below the projection (which
        preserves row order), otherwise on top.
        """
        adapted = [self._adapt_to_schema(k, plan.schema) for k in keys]
        if all(self._resolvable(k, plan.schema) for k in adapted):
            return Sort(plan, adapted, ascending)
        if isinstance(plan, Project):
            child = plan.child
            child_keys: List[Expression] = []
            for key in keys:
                candidate = self._adapt_to_schema(key, child.schema)
                if self._resolvable(candidate, child.schema):
                    child_keys.append(candidate)
                    continue
                # The key may reference a SELECT alias: substitute the
                # projected expression it names.
                if isinstance(key, ColumnRef) and plan.schema.has_column(key.name):
                    index = plan.schema.index_of(key.name)
                    child_keys.append(plan.expressions[index])
                    continue
                raise PlanningError(f"cannot resolve ORDER BY expression {key!r}")
            sorted_child = Sort(child, child_keys, ascending)
            names = [c.name for c in plan.schema.columns]
            types = [c.dtype for c in plan.schema.columns]
            return Project(sorted_child, plan.expressions, names, types)
        raise PlanningError("cannot resolve ORDER BY expression against the output")

    def _resolvable(self, expr: Expression, schema: Schema) -> bool:
        """Return True if every column reference in ``expr`` resolves in ``schema``."""
        for ref in [e for e in _walk(expr) if isinstance(e, ColumnRef)]:
            if not schema.has_column(ref.name, ref.qualifier):
                return False
        return True

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------

    def _adapt_to_schema(self, expr: Expression, schema: Schema) -> Expression:
        """Strip qualifiers that no longer exist after projection.

        ``ORDER BY r1.x`` after a projection that exposes only the unqualified
        output column ``x`` should still resolve; the qualifier is dropped when
        the qualified lookup fails but the bare name resolves.
        """
        if isinstance(expr, ColumnRef):
            if expr.qualifier and not schema.has_column(expr.name, expr.qualifier):
                if schema.has_column(expr.name):
                    return ColumnRef(expr.name)
            return expr
        mapping: Dict[Expression, Expression] = {}
        for ref in [e for e in _walk(expr) if isinstance(e, ColumnRef)]:
            adapted = self._adapt_to_schema(ref, schema)
            if adapted is not ref:
                mapping[ref] = adapted
        return rewrite_expression(expr, mapping) if mapping else expr

    def _infer_type(self, expr: Expression, schema: Schema) -> DataType:
        if isinstance(expr, ColumnRef) and schema.has_column(expr.name, expr.qualifier):
            return schema.column_at(schema.index_of(expr.name, expr.qualifier)).dtype
        if isinstance(expr, Literal):
            return infer_type(expr.value)
        if isinstance(expr, FuncCall) and expr.name.lower() == "count":
            return DataType.INT
        return DataType.FLOAT


def _walk(expr: Expression):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _deduplicate(names: Sequence[str]) -> List[str]:
    """Make output column names unique by suffixing duplicates."""
    seen: Dict[str, int] = {}
    out: List[str] = []
    for name in names:
        key = name.lower()
        if key in seen:
            seen[key] += 1
            out.append(f"{name}_{seen[key]}")
        else:
            seen[key] = 0
            out.append(name)
    return out
