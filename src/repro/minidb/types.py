"""Column data types and value coercion for the in-memory engine."""

from __future__ import annotations

import datetime as dt
from enum import Enum
from typing import Any, Optional

from repro.exceptions import SchemaError

__all__ = ["DataType", "coerce_value", "python_type_of"]


class DataType(Enum):
    """SQL column types supported by the engine."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    DATE = "DATE"
    BOOL = "BOOL"

    @staticmethod
    def parse(name: str) -> "DataType":
        """Resolve a type from a SQL type name (with common aliases)."""
        key = name.strip().upper()
        aliases = {
            "INT": DataType.INT,
            "INTEGER": DataType.INT,
            "BIGINT": DataType.INT,
            "SMALLINT": DataType.INT,
            "FLOAT": DataType.FLOAT,
            "REAL": DataType.FLOAT,
            "DOUBLE": DataType.FLOAT,
            "DOUBLE PRECISION": DataType.FLOAT,
            "DECIMAL": DataType.FLOAT,
            "NUMERIC": DataType.FLOAT,
            "TEXT": DataType.TEXT,
            "VARCHAR": DataType.TEXT,
            "CHAR": DataType.TEXT,
            "STRING": DataType.TEXT,
            "DATE": DataType.DATE,
            "BOOL": DataType.BOOL,
            "BOOLEAN": DataType.BOOL,
        }
        if key in aliases:
            return aliases[key]
        raise SchemaError(f"unknown column type: {name!r}")


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to the Python representation of ``dtype``.

    ``None`` (SQL NULL) passes through unchanged.  Raises
    :class:`~repro.exceptions.SchemaError` when the value cannot represent the
    declared type.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(f"cannot store non-integral {value!r} in INT column")
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype is DataType.TEXT:
            return str(value)
        if dtype is DataType.BOOL:
            return bool(value)
        if dtype is DataType.DATE:
            if isinstance(value, dt.date) and not isinstance(value, dt.datetime):
                return value
            if isinstance(value, dt.datetime):
                return value.date()
            if isinstance(value, str):
                return dt.date.fromisoformat(value)
            raise SchemaError(f"cannot store {value!r} in DATE column")
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {dtype.value}: {exc}") from exc
    raise SchemaError(f"unsupported data type {dtype!r}")


def python_type_of(dtype: DataType) -> Optional[type]:
    """Return the Python type a coerced value of ``dtype`` will have."""
    return {
        DataType.INT: int,
        DataType.FLOAT: float,
        DataType.TEXT: str,
        DataType.DATE: dt.date,
        DataType.BOOL: bool,
    }.get(dtype)


def infer_type(value: Any) -> DataType:
    """Infer the engine type of a Python value (used for computed columns)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, dt.date):
        return DataType.DATE
    return DataType.TEXT
