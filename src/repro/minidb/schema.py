"""Schemas: ordered, optionally qualified column descriptors.

A :class:`Schema` describes the row layout produced by a table or by any
operator in a physical plan.  Column lookup supports both qualified
(``alias.column``) and unqualified (``column``) references; unqualified
lookups must be unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CatalogError, SchemaError
from repro.minidb.types import DataType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and an optional relation qualifier."""

    name: str
    dtype: DataType
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        """Return ``qualifier.name`` when qualified, else just the name."""
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def renamed(self, qualifier: Optional[str]) -> "Column":
        """Return a copy of the column under a new qualifier."""
        return Column(self.name, self.dtype, qualifier)


class Schema:
    """An ordered collection of columns with name-based resolution."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: List[Column] = list(columns)
        self._by_name: dict[str, List[int]] = {}
        self._by_qualified: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            self._by_name.setdefault(col.name.lower(), []).append(i)
            if col.qualifier:
                key = f"{col.qualifier.lower()}.{col.name.lower()}"
                if key in self._by_qualified:
                    raise SchemaError(f"duplicate qualified column {key!r}")
                self._by_qualified[key] = i

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def from_pairs(
        pairs: Iterable[Tuple[str, "DataType | str"]], qualifier: Optional[str] = None
    ) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        columns = []
        for name, dtype in pairs:
            if isinstance(dtype, str):
                dtype = DataType.parse(dtype)
            columns.append(Column(name.lower(), dtype, qualifier))
        return Schema(columns)

    def with_qualifier(self, qualifier: Optional[str]) -> "Schema":
        """Return a copy of the schema with every column under ``qualifier``."""
        return Schema([c.renamed(qualifier.lower() if qualifier else None) for c in self.columns])

    def concat(self, other: "Schema") -> "Schema":
        """Return the schema of the concatenation of two rows (join output)."""
        return Schema(self.columns + other.columns)

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def names(self) -> List[str]:
        """Return the (unqualified) column names in order."""
        return [c.name for c in self.columns]

    def index_of(self, name: str, qualifier: Optional[str] = None) -> int:
        """Resolve a column reference to its position in the row.

        Raises :class:`~repro.exceptions.CatalogError` if the reference is
        unknown or ambiguous.
        """
        if qualifier:
            key = f"{qualifier.lower()}.{name.lower()}"
            if key in self._by_qualified:
                return self._by_qualified[key]
            raise CatalogError(f"unknown column {qualifier}.{name}")
        hits = self._by_name.get(name.lower(), [])
        if not hits:
            raise CatalogError(f"unknown column {name!r}")
        if len(hits) > 1:
            raise CatalogError(f"ambiguous column reference {name!r}")
        return hits[0]

    def has_column(self, name: str, qualifier: Optional[str] = None) -> bool:
        """Return True if the reference resolves to exactly one column."""
        try:
            self.index_of(name, qualifier)
            return True
        except CatalogError:
            return False

    def column_at(self, index: int) -> Column:
        """Return the column descriptor at ``index``."""
        return self.columns[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cols = ", ".join(f"{c.qualified_name}:{c.dtype.value}" for c in self.columns)
        return f"Schema({cols})"
