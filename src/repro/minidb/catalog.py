"""The catalog: the mapping from table names to heap tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.exceptions import CatalogError
from repro.minidb.schema import Schema
from repro.minidb.table import Table
from repro.minidb.types import DataType

__all__ = ["Catalog"]


class Catalog:
    """Holds every table of a :class:`repro.minidb.Database`."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Iterable[Tuple[str, "DataType | str"]],
        persistent: bool = False,
    ) -> Table:
        """Create an empty table; raises if the name is already in use.

        ``persistent`` marks the table for the durable catalog (written by
        ``Database.save()`` when the database is bound to a storage path).
        """
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        schema = Schema.from_pairs(columns, qualifier=key)
        table = Table(key, schema, persistent=persistent)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; raises if it does not exist."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def get_table(self, name: str) -> Table:
        """Return the table called ``name``."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        """Return True if a table called ``name`` exists."""
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        """Return the sorted list of table names."""
        return sorted(self._tables)
