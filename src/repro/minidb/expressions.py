"""Expression AST shared by the parser, planner, and executor.

Expressions are plain dataclasses produced by the parser.  The planner
*compiles* an expression against the schema of its input operator into a
Python closure ``row -> value`` (:func:`compile_expression`), which is what
the Volcano operators evaluate per row.  Aggregate function calls are never
compiled directly — the planner extracts them first
(:func:`extract_aggregates`) and replaces them with references to the
aggregate operator's output columns.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError, PlanningError
from repro.minidb.functions import SCALAR_FUNCTIONS, is_aggregate_function
from repro.minidb.schema import Schema

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "BinaryOp",
    "UnaryOp",
    "FuncCall",
    "InList",
    "InSubquery",
    "InSet",
    "Between",
    "IsNull",
    "IntervalLiteral",
    "compile_expression",
    "extract_aggregates",
    "expression_name",
    "contains_aggregate",
]


class Expression:
    """Base class for every expression node."""

    def children(self) -> Sequence["Expression"]:
        """Return the child expressions (used by tree walks)."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (number, string, date, boolean, NULL)."""

    value: Any


@dataclass(frozen=True)
class IntervalLiteral(Expression):
    """An ``INTERVAL '<n>' <unit>`` literal; units: day, month, year."""

    amount: int
    unit: str


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference."""

    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        """Return the SQL-ish text of the reference."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` argument of ``count(*)`` (or a bare ``SELECT *`` item)."""


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or NOT."""

    op: str
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expression):
    """A function call; may be a scalar function or an aggregate."""

    name: str
    args: Tuple[Expression, ...] = field(default_factory=tuple)
    star: bool = False

    def children(self) -> Sequence[Expression]:
        return self.args

    @property
    def is_aggregate(self) -> bool:
        """Return True when the call refers to an aggregate function."""
        return is_aggregate_function(self.name)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    expr: Expression
    values: Tuple[Expression, ...]
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr, *self.values)


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — the planner materialises the subquery."""

    expr: Expression
    subquery: Any  # SelectStatement; typed as Any to avoid a circular import
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr,)


@dataclass(frozen=True)
class InSet(Expression):
    """Planner-produced membership test against a pre-materialised value set.

    The planner rewrites ``expr IN (SELECT ...)`` into this node after
    executing the (uncorrelated) subquery once.
    """

    expr: Expression
    values: frozenset
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr,)


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr, self.low, self.high)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    expr: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr,)


# ---------------------------------------------------------------------------
# tree utilities
# ---------------------------------------------------------------------------


def contains_aggregate(expr: Expression) -> bool:
    """Return True if the expression tree contains an aggregate function call."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return True
    return any(contains_aggregate(child) for child in expr.children())


def extract_aggregates(expr: Expression, found: Optional[List[FuncCall]] = None) -> List[FuncCall]:
    """Collect every aggregate :class:`FuncCall` in the expression tree (depth-first)."""
    if found is None:
        found = []
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        if expr not in found:
            found.append(expr)
        return found
    for child in expr.children():
        extract_aggregates(child, found)
    return found


def expression_name(expr: Expression) -> str:
    """Return a reasonable output column name for an unaliased select item."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        return expr.name.lower()
    if isinstance(expr, Literal):
        return "literal"
    return "expr"


# ---------------------------------------------------------------------------
# value helpers used by compiled closures
# ---------------------------------------------------------------------------


def _add_months(date: dt.date, months: int) -> dt.date:
    month_index = date.month - 1 + months
    year = date.year + month_index // 12
    month = month_index % 12 + 1
    day = min(
        date.day,
        [31, 29 if year % 4 == 0 and (year % 100 != 0 or year % 400 == 0) else 28,
         31, 30, 31, 30, 31, 31, 30, 31, 30, 31][month - 1],
    )
    return dt.date(year, month, day)


def _interval_days(amount: int, unit: str) -> Optional[int]:
    unit = unit.lower().rstrip("s")
    if unit == "day":
        return amount
    if unit == "week":
        return amount * 7
    return None


def _apply_arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    # Date arithmetic -------------------------------------------------------
    if isinstance(left, dt.date) and isinstance(right, _IntervalValue):
        return right.add_to(left, 1 if op == "+" else -1)
    if isinstance(right, dt.date) and isinstance(left, _IntervalValue) and op == "+":
        return left.add_to(right, 1)
    if isinstance(left, dt.date) and isinstance(right, dt.date):
        if op == "-":
            return (left - right).days
        raise ExecutionError(f"unsupported date operation: date {op} date")
    if isinstance(left, dt.date) and isinstance(right, (int, float)):
        delta = dt.timedelta(days=int(right))
        return left + delta if op == "+" else left - delta
    # Plain arithmetic -------------------------------------------------------
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _apply_compare(op: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op in ("!=", "<>"):
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


class _IntervalValue:
    """Runtime value of an INTERVAL literal."""

    __slots__ = ("amount", "unit")

    def __init__(self, amount: int, unit: str) -> None:
        self.amount = amount
        self.unit = unit.lower().rstrip("s")

    def add_to(self, date: dt.date, sign: int) -> dt.date:
        days = _interval_days(self.amount, self.unit)
        if days is not None:
            return date + dt.timedelta(days=sign * days)
        if self.unit == "month":
            return _add_months(date, sign * self.amount)
        if self.unit == "year":
            return _add_months(date, sign * 12 * self.amount)
        raise ExecutionError(f"unsupported interval unit {self.unit!r}")


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

RowFunction = Callable[[tuple], Any]


def compile_expression(expr: Expression, schema: Schema) -> RowFunction:
    """Compile ``expr`` into a ``row -> value`` closure bound to ``schema``.

    Aggregate calls and subqueries must have been rewritten away by the
    planner before compilation; encountering one here is a planning bug.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, IntervalLiteral):
        value = _IntervalValue(expr.amount, expr.unit)
        return lambda row: value

    if isinstance(expr, ColumnRef):
        index = schema.index_of(expr.name, expr.qualifier)
        return lambda row: row[index]

    if isinstance(expr, Star):
        raise PlanningError("'*' can only appear inside count(*)")

    if isinstance(expr, UnaryOp):
        operand = compile_expression(expr.operand, schema)
        if expr.op == "-":
            return lambda row: None if operand(row) is None else -operand(row)
        if expr.op.upper() == "NOT":
            def _not(row: tuple) -> Optional[bool]:
                value = operand(row)
                return None if value is None else not value
            return _not
        raise PlanningError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, BinaryOp):
        left = compile_expression(expr.left, schema)
        right = compile_expression(expr.right, schema)
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        if op in ("+", "-", "*", "/", "%"):
            return lambda row: _apply_arith(op, left(row), right(row))
        if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            return lambda row: _apply_compare(op, left(row), right(row))
        if op == "AND":
            def _and(row: tuple) -> Optional[bool]:
                lv = left(row)
                if lv is False:
                    return False
                rv = right(row)
                if rv is False:
                    return False
                if lv is None or rv is None:
                    return None
                return True
            return _and
        if op == "OR":
            def _or(row: tuple) -> Optional[bool]:
                lv = left(row)
                if lv is True:
                    return True
                rv = right(row)
                if rv is True:
                    return True
                if lv is None or rv is None:
                    return None
                return False
            return _or
        raise PlanningError(f"unknown binary operator {expr.op!r}")

    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise PlanningError(
                f"aggregate {expr.name!r} is not allowed in this context"
            )
        name = expr.name.lower()
        if name not in SCALAR_FUNCTIONS:
            raise PlanningError(f"unknown function {expr.name!r}")
        fn = SCALAR_FUNCTIONS[name]
        arg_fns = [compile_expression(arg, schema) for arg in expr.args]
        return lambda row: fn(*[arg(row) for arg in arg_fns])

    if isinstance(expr, InList):
        target = compile_expression(expr.expr, schema)
        value_fns = [compile_expression(v, schema) for v in expr.values]
        negated = expr.negated

        def _in_list(row: tuple) -> Optional[bool]:
            value = target(row)
            if value is None:
                return None
            members = {fn(row) for fn in value_fns}
            result = value in members
            return not result if negated else result

        return _in_list

    if isinstance(expr, Between):
        target = compile_expression(expr.expr, schema)
        low = compile_expression(expr.low, schema)
        high = compile_expression(expr.high, schema)
        negated = expr.negated

        def _between(row: tuple) -> Optional[bool]:
            value = target(row)
            lo, hi = low(row), high(row)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return not result if negated else result

        return _between

    if isinstance(expr, IsNull):
        target = compile_expression(expr.expr, schema)
        negated = expr.negated
        return lambda row: (target(row) is not None) if negated else (target(row) is None)

    if isinstance(expr, InSet):
        target = compile_expression(expr.expr, schema)
        members = expr.values
        negated = expr.negated

        def _in_set(row: tuple) -> Optional[bool]:
            value = target(row)
            if value is None:
                return None
            result = value in members
            return not result if negated else result

        return _in_set

    if isinstance(expr, InSubquery):
        raise PlanningError(
            "IN (SELECT ...) must be rewritten by the planner before compilation"
        )

    raise PlanningError(f"cannot compile expression {expr!r}")
