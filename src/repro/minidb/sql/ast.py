"""Statement-level AST nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.minidb.expressions import Expression

__all__ = [
    "Statement",
    "SelectStatement",
    "SelectItem",
    "FromItem",
    "TableSource",
    "SubquerySource",
    "GroupBySpec",
    "SGBSpec",
    "SimilarityJoinClause",
    "OrderItem",
    "CreateTableStatement",
    "InsertStatement",
    "DropTableStatement",
    "ExplainStatement",
]


class Statement:
    """Base class of every parsed statement."""


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list: an expression plus an optional alias."""

    expr: Expression
    alias: Optional[str] = None


class FromItem:
    """Base class of FROM sources."""

    alias: Optional[str]


@dataclass(frozen=True)
class TableSource(FromItem):
    """A base table reference with an optional alias."""

    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class SubquerySource(FromItem):
    """A derived table ``(SELECT ...) AS alias``."""

    query: "SelectStatement"
    alias: Optional[str] = None


@dataclass(frozen=True)
class SGBSpec:
    """The similarity clause attached to a GROUP BY.

    ``kind`` is ``"all"`` (DISTANCE-TO-ALL) or ``"any"`` (DISTANCE-TO-ANY);
    ``metric`` is the SQL metric keyword (``L2``/``LINF``/...); ``eps`` is the
    WITHIN threshold expression; ``on_overlap`` carries the ON-OVERLAP action
    keyword for SGB-All; ``workers`` is the optional WORKERS count expression
    routing SGB-Any through the sharded parallel engine; ``window`` and
    ``slide`` carry the ``WINDOW n [SLIDE m]`` option that streams the input
    through the windowed incremental subsystem (SGB-Any only).
    """

    kind: str
    metric: str
    eps: Expression
    on_overlap: Optional[str] = None
    workers: Optional[Expression] = None
    window: Optional[Expression] = None
    slide: Optional[Expression] = None


@dataclass(frozen=True)
class SimilarityJoinClause:
    """The ``ON DISTANCE(...) WITHIN eps | KNN k`` clause of a SIMILARITY JOIN.

    ``left_exprs``/``right_exprs`` are the two halves of the ``DISTANCE``
    call's argument list (the join attributes of each side, one expression
    per dimension); ``metric`` is the SQL metric keyword (``L2``/``LINF``/
    ...).  Exactly one of ``eps`` (the WITHIN threshold expression) and ``k``
    (the KNN count expression) is set; ``workers`` is the optional WORKERS
    count routing the eps-join through the sharded parallel engine.
    """

    left_exprs: Tuple[Expression, ...]
    right_exprs: Tuple[Expression, ...]
    metric: str
    eps: Optional[Expression] = None
    k: Optional[Expression] = None
    workers: Optional[Expression] = None


@dataclass(frozen=True)
class GroupBySpec:
    """GROUP BY keys plus the optional similarity clause."""

    keys: Tuple[Expression, ...]
    sgb: Optional[SGBSpec] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A SELECT query (possibly used as a derived table or IN subquery).

    ``similarity_joins`` records each SIMILARITY JOIN as ``(source_index,
    clause)``, where ``source_index`` is the joined source's position in
    ``from_items``; plain joins keep using ``join_conditions``.
    """

    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...] = ()
    join_conditions: Tuple[Expression, ...] = ()
    where: Optional[Expression] = None
    group_by: Optional[GroupBySpec] = None
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    similarity_joins: Tuple[Tuple[int, SimilarityJoinClause], ...] = ()


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    """``CREATE TABLE name (col type, ...) [PERSISTENT]``.

    ``persistent`` marks the table for the durable catalog; executing it
    requires the database to be bound to a storage path
    (:meth:`repro.minidb.Database.open`).
    """

    name: str
    columns: Tuple[Tuple[str, str], ...]
    persistent: bool = False


@dataclass(frozen=True)
class InsertStatement(Statement):
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Expression, ...], ...] = ()


@dataclass(frozen=True)
class DropTableStatement(Statement):
    """``DROP TABLE name``."""

    name: str


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN SELECT ...``: show the chosen physical plan, don't run it.

    The wrapped query is planned exactly as execution would plan it —
    including the cost-based mode choices of the similarity operators — and
    the plan tree is returned as rows, one line per row, with each
    operator's estimated cost annotations.
    """

    query: SelectStatement
