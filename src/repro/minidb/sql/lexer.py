"""SQL tokenizer.

Besides ordinary SQL tokens the lexer recognises the hyphenated compound
keywords introduced by the similarity group-by syntax
(``DISTANCE-TO-ALL``, ``ON-OVERLAP``, ``JOIN-ANY``, ``FORM-NEW-GROUP``, ...)
so the parser can treat them as single keywords instead of subtraction
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import List, Optional

from repro.exceptions import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(Enum):
    """Lexical categories."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: Optional[str] = None) -> bool:
        """Return True if the token has the given type (and value, if provided)."""
        if self.type is not type_:
            return False
        return value is None or self.value.upper() == value.upper()


_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "IS", "NULL", "TRUE", "FALSE",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "USING",
    "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "DROP", "DELETE", "EXPLAIN",
    "PERSISTENT",
    "DISTINCT", "ASC", "DESC", "DATE", "INTERVAL", "CASE", "WHEN", "THEN",
    "ELSE", "END", "WITHIN", "OVERLAP", "ELIMINATE", "LIKE", "EXISTS",
    # Similarity group-by keywords (single-word forms).
    "L2", "LINF", "LONE", "LTWO", "WORKERS", "WINDOW", "SLIDE",
    # Similarity join keywords.
    "SIMILARITY", "KNN",
}

#: Hyphenated compound keywords of the SGB grammar, longest first.
_COMPOUND_KEYWORDS = [
    "DISTANCE-TO-ALL",
    "DISTANCE-TO-ANY",
    "DISTANCE-ALL",
    "DISTANCE-ANY",
    "ON-OVERLAP",
    "JOIN-ANY",
    "FORM-NEW-GROUP",
    "FORM-NEW",
]

_OPERATOR_CHARS = {"=", "<", ">", "!", "+", "-", "*", "/", "%"}
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!="}
_PUNCTUATION = {"(", ")", ",", ".", ";"}


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` and return the token list terminated by an EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        # Whitespace ---------------------------------------------------------
        if ch.isspace():
            i += 1
            continue
        # Comments ------------------------------------------------------------
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            while i < n and sql[i] != "\n":
                i += 1
            continue
        # Strings --------------------------------------------------------------
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            if j >= n:
                raise SqlSyntaxError("unterminated string literal", position=i)
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        # Numbers ---------------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            # scientific notation
            if j < n and sql[j] in "eE":
                k = j + 1
                if k < n and sql[k] in "+-":
                    k += 1
                if k < n and sql[k].isdigit():
                    while k < n and sql[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        # Identifiers / keywords ---------------------------------------------
        if ch.isalpha() or ch == "_" or ch == '"':
            if ch == '"':
                j = i + 1
                while j < n and sql[j] != '"':
                    j += 1
                if j >= n:
                    raise SqlSyntaxError("unterminated quoted identifier", position=i)
                tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1 : j], i))
                i = j + 1
                continue
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            # Try to extend into a hyphenated compound keyword.
            compound, end = _match_compound(sql, i, j, upper)
            if compound is not None:
                tokens.append(Token(TokenType.KEYWORD, compound, i))
                i = end
                continue
            if upper in _KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        # Operators --------------------------------------------------------------
        if ch in _OPERATOR_CHARS:
            two = sql[i : i + 2]
            if two in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, two, i))
                i += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            continue
        # Punctuation -------------------------------------------------------------
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _match_compound(sql: str, start: int, word_end: int, first_word: str):
    """Try to extend the identifier at ``start`` into a compound SGB keyword.

    Returns ``(keyword, end_index)`` on success and ``(None, word_end)``
    otherwise.
    """
    candidates = [kw for kw in _COMPOUND_KEYWORDS if kw.split("-")[0] == first_word]
    if not candidates:
        return None, word_end
    best: Optional[str] = None
    best_end = word_end
    for keyword in sorted(candidates, key=len, reverse=True):
        length = len(keyword)
        segment = sql[start : start + length]
        if segment.upper() != keyword:
            continue
        end = start + length
        # The match must end at a word boundary.
        if end < len(sql) and (sql[end].isalnum() or sql[end] == "_"):
            continue
        best = keyword
        best_end = end
        break
    if best is None:
        return None, word_end
    return best, best_end
