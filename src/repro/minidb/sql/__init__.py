"""SQL front-end: lexer, statement AST, and recursive-descent parser.

The grammar is a pragmatic subset of SQL plus the paper's similarity
group-by extensions (``DISTANCE-TO-ALL`` / ``DISTANCE-TO-ANY`` / ``WITHIN`` /
``ON-OVERLAP``).
"""

from repro.minidb.sql.ast import (
    CreateTableStatement,
    DropTableStatement,
    FromItem,
    GroupBySpec,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    SGBSpec,
    Statement,
    SubquerySource,
    TableSource,
)
from repro.minidb.sql.lexer import Token, TokenType, tokenize
from repro.minidb.sql.parser import Parser, parse_sql

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "Parser",
    "parse_sql",
    "Statement",
    "SelectStatement",
    "SelectItem",
    "FromItem",
    "TableSource",
    "SubquerySource",
    "GroupBySpec",
    "SGBSpec",
    "OrderItem",
    "CreateTableStatement",
    "InsertStatement",
    "DropTableStatement",
]
