"""Recursive-descent SQL parser with the similarity group-by extensions."""

from __future__ import annotations

import datetime as dt
from typing import List, Optional, Tuple

from repro.exceptions import SqlSyntaxError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.minidb.sql.ast import (
    CreateTableStatement,
    DropTableStatement,
    ExplainStatement,
    FromItem,
    GroupBySpec,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    SGBSpec,
    SimilarityJoinClause,
    Statement,
    SubquerySource,
    TableSource,
)
from repro.minidb.sql.lexer import Token, TokenType, tokenize

__all__ = ["Parser", "parse_sql"]

_METRIC_KEYWORDS = {"L2", "LINF", "LONE", "LTWO", "L1"}
_OVERLAP_KEYWORDS = {"JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP", "FORM-NEW"}
_SGB_ALL_KEYWORDS = {"DISTANCE-TO-ALL", "DISTANCE-ALL"}
_SGB_ANY_KEYWORDS = {"DISTANCE-TO-ANY", "DISTANCE-ANY"}


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement and return its AST."""
    return Parser(sql).parse_statement()


class Parser:
    """A hand-written recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens: List[Token] = tokenize(sql)
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        return self._peek().matches(type_, value)

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value.upper() in {
            k.upper() for k in keywords
        }

    def _accept(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self._check_keyword(*keywords):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.matches(type_, value):
            expected = value or type_.name
            raise SqlSyntaxError(
                f"expected {expected!r} but found {token.value!r}",
                position=token.position,
            )
        return self._advance()

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._peek()
        if not self._check_keyword(*keywords):
            raise SqlSyntaxError(
                f"expected one of {keywords} but found {token.value!r}",
                position=token.position,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Non-reserved keywords may be used as identifiers in a pinch.
        if token.type is TokenType.KEYWORD and token.value.upper() not in {
            "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
        }:
            self._advance()
            return token.value
        raise SqlSyntaxError(
            f"expected identifier but found {token.value!r}", position=token.position
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse a single statement and require the input to be fully consumed."""
        statement = self._parse_statement_body()
        self._accept(TokenType.PUNCTUATION, ";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input at {token.value!r}", position=token.position
            )
        return statement

    def _parse_statement_body(self) -> Statement:
        if self._check_keyword("EXPLAIN"):
            return self._parse_explain()
        if self._check_keyword("SELECT"):
            return self.parse_select()
        if self._check_keyword("CREATE"):
            return self._parse_create_table()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("DROP"):
            return self._parse_drop_table()
        token = self._peek()
        raise SqlSyntaxError(
            f"unsupported statement starting with {token.value!r}",
            position=token.position,
        )

    # -- EXPLAIN ----------------------------------------------------------

    def _parse_explain(self) -> ExplainStatement:
        self._expect_keyword("EXPLAIN")
        token = self._peek()
        if not self._check_keyword("SELECT"):
            raise SqlSyntaxError(
                "EXPLAIN supports only SELECT statements",
                position=token.position,
            )
        return ExplainStatement(query=self.parse_select())

    # -- CREATE TABLE -----------------------------------------------------

    def _parse_create_table(self) -> CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect(TokenType.PUNCTUATION, "(")
        columns: List[Tuple[str, str]] = []
        while True:
            col_name = self._expect_identifier()
            col_type = self._expect_identifier()
            # Swallow optional type parameters, e.g. VARCHAR(32) or NUMERIC(10, 2).
            if self._accept(TokenType.PUNCTUATION, "("):
                depth = 1
                while depth > 0:
                    token = self._advance()
                    if token.type is TokenType.EOF:
                        raise SqlSyntaxError("unterminated type parameters")
                    if token.matches(TokenType.PUNCTUATION, "("):
                        depth += 1
                    elif token.matches(TokenType.PUNCTUATION, ")"):
                        depth -= 1
            columns.append((col_name, col_type))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        self._expect(TokenType.PUNCTUATION, ")")
        persistent = bool(self._accept_keyword("PERSISTENT"))
        return CreateTableStatement(
            name=name, columns=tuple(columns), persistent=persistent
        )

    # -- INSERT -----------------------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: List[str] = []
        if self._accept(TokenType.PUNCTUATION, "("):
            while True:
                columns.append(self._expect_identifier())
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
            self._expect(TokenType.PUNCTUATION, ")")
        self._expect_keyword("VALUES")
        rows: List[Tuple[Expression, ...]] = []
        while True:
            self._expect(TokenType.PUNCTUATION, "(")
            values: List[Expression] = []
            while True:
                values.append(self.parse_expression())
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
            self._expect(TokenType.PUNCTUATION, ")")
            rows.append(tuple(values))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return InsertStatement(table=table, columns=tuple(columns), rows=tuple(rows))

    # -- DROP TABLE ---------------------------------------------------------

    def _parse_drop_table(self) -> DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return DropTableStatement(name=self._expect_identifier())

    # -- SELECT --------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        """Parse a SELECT statement (also used for derived tables and subqueries)."""
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = self._parse_select_items()

        from_items: List[FromItem] = []
        join_conditions: List[Expression] = []
        similarity_joins: List[Tuple[int, SimilarityJoinClause]] = []
        if self._accept_keyword("FROM"):
            from_items, join_conditions, similarity_joins = self._parse_from_clause()

        where = self.parse_expression() if self._accept_keyword("WHERE") else None

        group_by: Optional[GroupBySpec] = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_group_by()

        having = self.parse_expression() if self._accept_keyword("HAVING") else None

        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self._accept_keyword("ASC"):
                    ascending = True
                elif self._accept_keyword("DESC"):
                    ascending = False
                order_by.append(OrderItem(expr=expr, ascending=ascending))
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            limit = int(float(token.value))

        return SelectStatement(
            items=tuple(items),
            from_items=tuple(from_items),
            join_conditions=tuple(join_conditions),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
            similarity_joins=tuple(similarity_joins),
        )

    def _parse_select_items(self) -> List[SelectItem]:
        items: List[SelectItem] = []
        while True:
            if self._check(TokenType.OPERATOR, "*"):
                self._advance()
                items.append(SelectItem(expr=Star(), alias=None))
            else:
                expr = self.parse_expression()
                alias = None
                if self._accept_keyword("AS"):
                    alias = self._expect_identifier()
                elif self._peek().type is TokenType.IDENTIFIER:
                    alias = self._advance().value
                items.append(SelectItem(expr=expr, alias=alias))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return items

    def _parse_from_clause(
        self,
    ) -> Tuple[List[FromItem], List[Expression], List[Tuple[int, SimilarityJoinClause]]]:
        sources: List[FromItem] = [self._parse_from_source()]
        conditions: List[Expression] = []
        similarity: List[Tuple[int, SimilarityJoinClause]] = []
        while True:
            if self._accept(TokenType.PUNCTUATION, ","):
                sources.append(self._parse_from_source())
                continue
            if self._check_keyword("SIMILARITY"):
                self._advance()
                self._expect_keyword("JOIN")
                sources.append(self._parse_from_source())
                similarity.append(
                    (len(sources) - 1, self._parse_similarity_join_clause())
                )
                continue
            if self._check_keyword("JOIN", "INNER", "LEFT", "CROSS"):
                is_cross = bool(self._accept_keyword("CROSS"))
                self._accept_keyword("INNER")
                self._accept_keyword("LEFT")
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                sources.append(self._parse_from_source())
                if not is_cross and self._accept_keyword("ON"):
                    conditions.append(self.parse_expression())
                continue
            break
        return sources, conditions, similarity

    def _parse_similarity_join_clause(self) -> SimilarityJoinClause:
        """Parse ``ON DISTANCE(coords...) [metric] WITHIN eps | KNN k ...``.

        The ``DISTANCE`` argument list holds the two sides' join attributes
        back to back (first half left, second half right); the metric may be
        named either before the WITHIN/KNN keyword or after the threshold via
        ``USING``, mirroring the similarity group-by clause.  An optional
        trailing ``WORKERS n`` routes the eps-join through the sharded
        engine.
        """
        self._expect_keyword("ON")
        on_token = self._peek()
        condition = self.parse_expression()
        if (
            not isinstance(condition, FuncCall)
            or condition.name != "distance"
            or condition.star
        ):
            raise SqlSyntaxError(
                "SIMILARITY JOIN requires an ON DISTANCE(...) condition",
                position=on_token.position,
            )
        args = condition.args
        if len(args) < 2 or len(args) % 2 != 0:
            raise SqlSyntaxError(
                "DISTANCE(...) in a SIMILARITY JOIN needs an even number of "
                "arguments: the left side's coordinates followed by the "
                f"right side's, got {len(args)}",
                position=on_token.position,
            )
        metric = self._parse_optional_metric()
        eps: Optional[Expression] = None
        k: Optional[Expression] = None
        if self._accept_keyword("WITHIN"):
            eps = self.parse_expression()
        elif self._accept_keyword("KNN"):
            k = self.parse_expression()
        else:
            token = self._peek()
            raise SqlSyntaxError(
                f"expected WITHIN or KNN after DISTANCE(...) but found "
                f"{token.value!r}",
                position=token.position,
            )
        if self._accept_keyword("USING"):
            metric = self._parse_required_metric()
        if metric is None:
            metric = "L2"
        workers: Optional[Expression] = None
        if self._accept_keyword("WORKERS"):
            workers = self.parse_expression()
        half = len(args) // 2
        return SimilarityJoinClause(
            left_exprs=args[:half],
            right_exprs=args[half:],
            metric=metric,
            eps=eps,
            k=k,
            workers=workers,
        )

    def _parse_from_source(self) -> FromItem:
        if self._accept(TokenType.PUNCTUATION, "("):
            query = self.parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            alias = self._parse_optional_alias()
            return SubquerySource(query=query, alias=alias)
        name = self._expect_identifier()
        alias = self._parse_optional_alias()
        return TableSource(name=name, alias=alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        if self._peek().type is TokenType.IDENTIFIER:
            return self._advance().value
        return None

    # -- GROUP BY (standard + SGB) ---------------------------------------------

    def _parse_group_by(self) -> GroupBySpec:
        keys: List[Expression] = [self.parse_expression()]
        while self._accept(TokenType.PUNCTUATION, ","):
            keys.append(self.parse_expression())
        sgb = self._parse_sgb_clause()
        if sgb is not None:
            keys = self._split_prose_and_keys(keys)
        return GroupBySpec(keys=tuple(keys), sgb=sgb)

    @staticmethod
    def _split_prose_and_keys(keys: List[Expression]) -> List[Expression]:
        """Tolerate the prose style ``GROUP BY lat and long DISTANCE-TO-ANY ...``.

        The expression parser reads ``lat and long`` as a boolean AND; when a
        similarity clause follows, split such conjunctions of bare column
        references back into separate grouping keys (paper Example 2).
        """
        split: List[Expression] = []
        for key in keys:
            parts = [key]
            while (
                len(parts) == 1
                and isinstance(parts[0], BinaryOp)
                and parts[0].op.upper() == "AND"
            ):
                node = parts[0]
                parts = [node.left, node.right]
            if all(isinstance(p, ColumnRef) for p in parts):
                split.extend(parts)
            else:
                split.append(key)
        return split

    def _parse_sgb_clause(self) -> Optional[SGBSpec]:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            return None
        keyword = token.value.upper()
        if keyword in _SGB_ALL_KEYWORDS:
            kind = "all"
        elif keyword in _SGB_ANY_KEYWORDS:
            kind = "any"
        else:
            return None
        self._advance()

        metric = self._parse_optional_metric()
        self._expect_keyword("WITHIN")
        eps = self.parse_expression()
        if self._accept_keyword("USING"):
            metric = self._parse_required_metric()
        if metric is None:
            metric = "L2"

        on_overlap: Optional[str] = None
        if kind == "all":
            if self._accept_keyword("ON-OVERLAP"):
                on_overlap = self._parse_overlap_action()
            elif self._check_keyword("ON") and self._peek(1).matches(
                TokenType.KEYWORD, "OVERLAP"
            ):
                self._advance()
                self._advance()
                on_overlap = self._parse_overlap_action()
            else:
                on_overlap = "JOIN-ANY"
        workers: Optional[Expression] = None
        window: Optional[Expression] = None
        slide: Optional[Expression] = None
        while True:
            if workers is None and self._accept_keyword("WORKERS"):
                workers = self.parse_expression()
            elif window is None and self._accept_keyword("WINDOW"):
                window = self.parse_expression()
                if self._accept_keyword("SLIDE"):
                    slide = self.parse_expression()
            else:
                break
        return SGBSpec(
            kind=kind,
            metric=metric,
            eps=eps,
            on_overlap=on_overlap,
            workers=workers,
            window=window,
            slide=slide,
        )

    def _parse_optional_metric(self) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value.upper() in _METRIC_KEYWORDS:
            self._advance()
            return token.value.upper()
        return None

    def _parse_required_metric(self) -> str:
        token = self._peek()
        if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            value = token.value.upper()
            if value in _METRIC_KEYWORDS or value in {"EUCLIDEAN", "CHEBYSHEV"}:
                self._advance()
                return value
        raise SqlSyntaxError(
            f"expected a distance metric but found {token.value!r}",
            position=token.position,
        )

    def _parse_overlap_action(self) -> str:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value.upper() in _OVERLAP_KEYWORDS:
            self._advance()
            return token.value.upper()
        # Accept the two-word spelling "JOIN ANY".
        if token.matches(TokenType.KEYWORD, "JOIN"):
            self._advance()
            next_token = self._peek()
            if next_token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD) and (
                next_token.value.upper() == "ANY"
            ):
                self._advance()
            return "JOIN-ANY"
        raise SqlSyntaxError(
            f"expected an ON-OVERLAP action but found {token.value!r}",
            position=token.position,
        )

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        """Parse a full boolean/arithmetic expression."""
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while True:
            # Do not consume the AND of "BETWEEN x AND y" (handled lower down)
            # or the prose "GROUP BY a and b" (handled by the caller).
            if self._check_keyword("AND"):
                self._advance()
                right = self._parse_not()
                left = BinaryOp("AND", left, right)
                continue
            break
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            right = self._parse_additive()
            return BinaryOp(token.value, left, right)

        negated = False
        if self._check_keyword("NOT") and self._peek(1).matches(TokenType.KEYWORD, "IN"):
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            return self._parse_in(left, negated)

        negated = False
        if self._check_keyword("NOT") and self._peek(1).matches(
            TokenType.KEYWORD, "BETWEEN"
        ):
            self._advance()
            negated = True
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(expr=left, low=low, high=high, negated=negated)

        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(expr=left, negated=negated)

        return left

    def _parse_in(self, left: Expression, negated: bool) -> Expression:
        self._expect(TokenType.PUNCTUATION, "(")
        if self._check_keyword("SELECT"):
            subquery = self.parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            return InSubquery(expr=left, subquery=subquery, negated=negated)
        values: List[Expression] = [self.parse_expression()]
        while self._accept(TokenType.PUNCTUATION, ","):
            values.append(self.parse_expression())
        self._expect(TokenType.PUNCTUATION, ")")
        return InList(expr=left, values=tuple(values), negated=negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._check(TokenType.OPERATOR, "+") or self._check(TokenType.OPERATOR, "-"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while (
            self._check(TokenType.OPERATOR, "*")
            or self._check(TokenType.OPERATOR, "/")
            or self._check(TokenType.OPERATOR, "%")
        ):
            op = self._advance().value
            right = self._parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Expression:
        if self._check(TokenType.OPERATOR, "-"):
            self._advance()
            return UnaryOp("-", self._parse_unary())
        if self._check(TokenType.OPERATOR, "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return Literal(value)

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.type is TokenType.KEYWORD:
            keyword = token.value.upper()
            if keyword == "NULL":
                self._advance()
                return Literal(None)
            if keyword == "TRUE":
                self._advance()
                return Literal(True)
            if keyword == "FALSE":
                self._advance()
                return Literal(False)
            if keyword == "DATE":
                self._advance()
                text_token = self._expect(TokenType.STRING)
                text = text_token.value.strip().strip("[]")
                try:
                    return Literal(dt.date.fromisoformat(text))
                except ValueError as exc:
                    raise SqlSyntaxError(
                        f"invalid date literal {text!r}", position=text_token.position
                    ) from exc
            if keyword == "INTERVAL":
                self._advance()
                amount_token = self._expect(TokenType.STRING)
                unit = self._expect_identifier()
                try:
                    amount = int(amount_token.value.strip().strip("[]"))
                except ValueError as exc:
                    raise SqlSyntaxError(
                        f"invalid interval amount {amount_token.value!r}",
                        position=amount_token.position,
                    ) from exc
                return IntervalLiteral(amount=amount, unit=unit)

        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenType.PUNCTUATION, ")")
            return expr

        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self._parse_identifier_expression()

        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )

    def _parse_identifier_expression(self) -> Expression:
        name_token = self._advance()
        name = name_token.value
        # Function call ------------------------------------------------------
        if self._check(TokenType.PUNCTUATION, "("):
            self._advance()
            if self._check(TokenType.OPERATOR, "*"):
                self._advance()
                self._expect(TokenType.PUNCTUATION, ")")
                return FuncCall(name=name.lower(), args=(), star=True)
            args: List[Expression] = []
            if not self._check(TokenType.PUNCTUATION, ")"):
                args.append(self.parse_expression())
                while self._accept(TokenType.PUNCTUATION, ","):
                    args.append(self.parse_expression())
            self._expect(TokenType.PUNCTUATION, ")")
            return FuncCall(name=name.lower(), args=tuple(args))
        # Qualified column reference -----------------------------------------
        if self._check(TokenType.PUNCTUATION, "."):
            self._advance()
            column = self._expect_identifier()
            return ColumnRef(name=column.lower(), qualifier=name.lower())
        return ColumnRef(name=name.lower())
