"""minidb — a small in-memory relational engine with similarity group-by.

This package is the substrate standing in for the paper's PostgreSQL
extension.  It provides the full path a SQL query takes through a relational
system:

``SQL text -> lexer -> parser -> logical plan -> physical plan -> Volcano executor``

with the paper's extended grammar::

    GROUP BY a, b DISTANCE-TO-ALL [L2|LINF] WITHIN eps
              ON-OVERLAP [JOIN-ANY|ELIMINATE|FORM-NEW-GROUP]
    GROUP BY a, b DISTANCE-TO-ANY [L2|LINF] WITHIN eps

The executor implements sequential scans, filters, projections, nested-loop
and hash joins, sorting, limits, hash aggregation, and the two similarity
group-by operators (which drive :class:`repro.core.SGBAllGrouper` /
:class:`repro.core.SGBAnyGrouper`).

Typical use::

    from repro.minidb import Database

    db = Database()
    db.execute("CREATE TABLE points (id INT, x FLOAT, y FLOAT)")
    db.execute("INSERT INTO points VALUES (1, 0.0, 0.0), (2, 0.5, 0.5)")
    result = db.execute(
        "SELECT count(*) FROM points "
        "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.0"
    )
    print(result.rows)
"""

from repro.minidb.database import Database, QueryResult
from repro.minidb.schema import Column, Schema
from repro.minidb.table import Table
from repro.minidb.types import DataType

__all__ = ["Database", "QueryResult", "Schema", "Column", "Table", "DataType"]
