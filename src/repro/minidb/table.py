"""Heap table storage: a schema plus an append-only list of tuples."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.minidb.schema import Schema
from repro.minidb.types import coerce_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.stats import PointStats

__all__ = ["Table"]

Row = Tuple[object, ...]


class Table:
    """An in-memory heap table.

    ``version`` counts mutations (inserts and truncates) and is the single
    invalidation token for everything derived from the table's content: the
    per-column-set statistics cache behind :meth:`point_stats`, the content
    fingerprints behind :meth:`point_fingerprint` that key the tiered result
    cache, and the durable catalog's dirty check (a persistent table is
    rewritten on ``save()`` only when its version moved).  Every mutation
    path MUST bump it — the staleness regression suite enforces this.

    ``persistent`` marks the table for the durable catalog; a
    :class:`~repro.minidb.database.Database` opened on a storage path writes
    persistent tables to disk on ``save()``/``close()``.
    """

    def __init__(self, name: str, schema: Schema, persistent: bool = False) -> None:
        self.name = name.lower()
        self.schema = schema
        self.rows: List[Row] = []
        self.version = 0
        self.persistent = persistent
        #: column positions -> (version the summary was built at, summary)
        self._stats_cache: "Dict[Tuple[int, ...], Tuple[int, PointStats]]" = {}
        #: column positions -> (version the digest was built at, digest)
        self._fingerprint_cache: Dict[Tuple[int, ...], Tuple[int, str]] = {}
        #: guards the two derived caches — concurrent server requests hit one
        #: table; the dict check/compute/store must not interleave with a
        #: mutation's version bump mid-entry.  Derived values are recomputed
        #: outside the lock (they are deterministic, so a duplicated compute
        #: is wasted work, never a wrong answer).
        self._derived_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def insert(self, values: Sequence[object]) -> None:
        """Validate and append one row."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.dtype)
            for value, column in zip(values, self.schema.columns)
        )
        self.rows.append(row)
        self.version += 1

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Validate and append many rows; return the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove every row, keeping the schema."""
        self.rows.clear()
        self.version += 1

    def adopt_rows(self, rows: Iterable[Row], version: int) -> None:
        """Install already-typed rows loaded from durable storage.

        The columnar files persist exactly the coerced Python values a prior
        :meth:`insert` produced, so reloading must NOT re-coerce (that is
        what keeps the round trip bit-identical) and must restore the stored
        mutation ``version`` rather than counting the load as new mutations.
        Only :class:`repro.minidb.database.Database` restore paths call this.
        """
        if self.rows:
            raise SchemaError(
                f"table {self.name!r} is not empty; adopt_rows is a load-time API"
            )
        self.rows.extend(tuple(row) for row in rows)
        self.version = version

    def point_stats(self, columns: Sequence[int]) -> "PointStats":
        """Planner statistics over the numeric columns at ``columns``.

        Collected lazily (one O(n) pass), cached per column set, and
        invalidated by any mutation via the ``version`` counter.  Non-numeric
        values in the selected columns make the summary degrade to a
        count-only estimate rather than raising — the planner can always
        fall back to cardinality alone.
        """
        key = tuple(columns)
        with self._derived_lock:
            version = self.version
            cached = self._stats_cache.get(key)
            if cached is not None and cached[0] == version:
                return cached[1]
            rows = list(self.rows)
        from repro.engine.stats import stats_from_columns, synthetic_stats

        try:
            vectors = [[float(row[position]) for row in rows] for position in key]
            stats = stats_from_columns(vectors)
        except Exception:  # noqa: BLE001 - stats must never fail a query
            stats = synthetic_stats(len(rows), dims=max(1, len(key)))
        with self._derived_lock:
            self._stats_cache[key] = (version, stats)
        return stats

    def point_fingerprint(self, columns: Sequence[int]) -> str:
        """Content fingerprint of the numeric columns at ``columns``.

        The digest is content-addressed (identical column data gives the
        identical digest in any process), but it is *memoised by the mutation
        version* so repeated queries over an unchanged table never re-hash
        the data — the version counter is the result cache's invalidation
        token.  Raises if a selected value is not numeric; callers fall back
        to hashing the columns they actually buffered.
        """
        key = tuple(columns)
        with self._derived_lock:
            version = self.version
            cached = self._fingerprint_cache.get(key)
            if cached is not None and cached[0] == version:
                return cached[1]
            rows = list(self.rows)
        from repro.core.fingerprint import fingerprint_columns

        vectors = [[float(row[position]) for row in rows] for position in key]
        digest = fingerprint_columns(vectors)
        with self._derived_lock:
            self._fingerprint_cache[key] = (version, digest)
        return digest
