"""Heap table storage: a schema plus an append-only list of tuples."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.minidb.schema import Schema
from repro.minidb.types import coerce_value

__all__ = ["Table"]

Row = Tuple[object, ...]


class Table:
    """An in-memory heap table."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name.lower()
        self.schema = schema
        self.rows: List[Row] = []

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def insert(self, values: Sequence[object]) -> None:
        """Validate and append one row."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.dtype)
            for value, column in zip(values, self.schema.columns)
        )
        self.rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Validate and append many rows; return the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove every row, keeping the schema."""
        self.rows.clear()
