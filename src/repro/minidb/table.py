"""Heap table storage: a schema plus an append-only list of tuples."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.minidb.schema import Schema
from repro.minidb.types import coerce_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.stats import PointStats

__all__ = ["Table"]

Row = Tuple[object, ...]


class Table:
    """An in-memory heap table.

    ``version`` counts mutations (inserts and truncates); the per-column-set
    statistics cache behind :meth:`point_stats` is keyed by it, so a summary
    collected for the cost planner is reused until the table changes and
    never served stale.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name.lower()
        self.schema = schema
        self.rows: List[Row] = []
        self.version = 0
        #: column positions -> (version the summary was built at, summary)
        self._stats_cache: "Dict[Tuple[int, ...], Tuple[int, PointStats]]" = {}

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def insert(self, values: Sequence[object]) -> None:
        """Validate and append one row."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.dtype)
            for value, column in zip(values, self.schema.columns)
        )
        self.rows.append(row)
        self.version += 1

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Validate and append many rows; return the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove every row, keeping the schema."""
        self.rows.clear()
        self.version += 1

    def point_stats(self, columns: Sequence[int]) -> "PointStats":
        """Planner statistics over the numeric columns at ``columns``.

        Collected lazily (one O(n) pass), cached per column set, and
        invalidated by any mutation via the ``version`` counter.  Non-numeric
        values in the selected columns make the summary degrade to a
        count-only estimate rather than raising — the planner can always
        fall back to cardinality alone.
        """
        key = tuple(columns)
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        from repro.engine.stats import stats_from_columns, synthetic_stats

        try:
            vectors = [
                [float(row[position]) for row in self.rows] for position in key
            ]
            stats = stats_from_columns(vectors)
        except Exception:  # noqa: BLE001 - stats must never fail a query
            stats = synthetic_stats(len(self.rows), dims=max(1, len(key)))
        self._stats_cache[key] = (self.version, stats)
        return stats
