"""The user-facing database facade: DDL, DML, queries, persistence, EXPLAIN."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import CatalogError, PlanningError, StorageError
from repro.minidb.catalog import Catalog
from repro.minidb.expressions import Literal, compile_expression
from repro.minidb.plan.planner import Planner, PlannerSettings
from repro.minidb.schema import Schema
from repro.minidb.sql.ast import (
    CreateTableStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    Statement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cost import PhysicalPlan
from repro.minidb.sql.parser import parse_sql
from repro.minidb.table import Table
from repro.minidb.types import DataType

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """The materialised result of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[object, ...]] = field(default_factory=list)
    rowcount: int = 0
    statement: str = ""
    #: The cost planner's choice for the statement's similarity operator
    #: (mode, worker/shard fan-out, estimated cost), when one delegated to
    #: it at execution time; None for forced WORKERS paths and plain queries.
    plan: "Optional[PhysicalPlan]" = None
    #: The logical rewrite rules applied to this statement's plan (one trace
    #: line per rule), empty when the optimizer is off or found nothing.
    rewrites: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """Return the single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PlanningError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        """Return all values of the named output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError as exc:
            raise PlanningError(f"unknown result column {name!r}") from exc
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[dict]:
        """Return the rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def _collect_last_plan(node) -> "Optional[PhysicalPlan]":
    """The topmost similarity operator's executed plan, if any delegated."""
    found = getattr(node, "last_plan", None)
    if found is not None:
        return found
    for child in node.children():
        found = _collect_last_plan(child)
        if found is not None:
            return found
    return None


class Database:
    """A relational database with similarity group-by support.

    Tables live in memory; bind the database to a storage directory
    (:meth:`open`, or ``path=``) and tables marked persistent —
    ``CREATE TABLE ... PERSISTENT`` or ``create_table(..., persistent=True)``
    — survive process restarts through :meth:`save` / :meth:`close`.  The
    instance is a context manager: leaving the ``with`` block flushes the
    durable catalog and releases its sqlite handle.

    Parameters
    ----------
    sgb_strategy:
        Default algorithm used by similarity group-by plans: ``"index"``
        (default), ``"bounds-checking"``, or ``"all-pairs"``.
    sgb_seed:
        Seed for the JOIN-ANY arbitration, making query results reproducible.
    sgb_workers:
        Session default for the SGB clause's ``WORKERS`` option (worker
        processes for sharded SGB-Any execution); ``None`` defers to the
        ``SGB_WORKERS`` environment variable and otherwise stays serial.
    path:
        Optional storage directory for persistent tables; created on demand.
        Stored tables found there are loaded immediately (bit-identical to
        the rows that were saved), along with their planner statistics.
    cache:
        Result-cache knob for the SGB and similarity-join executors:
        ``True`` (process-wide default cache), a directory path (tiered
        mem → local-file cache), a :class:`repro.storage.ResultCache`, or
        ``None``/``False`` (off unless ``SGB_CACHE`` enables it).
        ``SGB_CACHE=off`` bypasses the cache regardless.
    optimizer:
        Whether the cost-driven logical rewrite layer (filter placement,
        join reordering — :mod:`repro.minidb.plan.rewrite`) runs on SELECT
        plans.  ``SGB_OPTIMIZER=off`` disables it regardless, so the
        paper-figure runners stay on the un-rewritten reference path.
    """

    def __init__(
        self,
        sgb_strategy: str = "index",
        sgb_seed: int = 0,
        sgb_workers: "Optional[int | str]" = None,
        path: Optional[str] = None,
        cache: object = None,
        optimizer: bool = True,
    ) -> None:
        self.catalog = Catalog()
        self.settings = PlannerSettings(
            sgb_strategy=sgb_strategy,
            sgb_seed=sgb_seed,
            sgb_workers=sgb_workers,
            cache=cache,
            optimizer=optimizer,
        )
        self.store = None
        #: table name -> version last written to (or loaded from) the store
        self._saved_versions: dict[str, int] = {}
        if path is not None:
            from repro.storage.catalog import TableStore

            self.store = TableStore(path)
            self._load_stored_tables()

    @classmethod
    def open(cls, path: str, **kwargs) -> "Database":
        """Open (or create) a database bound to storage directory ``path``.

        Every table previously saved there is loaded back — rows, mutation
        version, and cached planner statistics — so a reopened database
        answers the same SQL bit-identically to the process that saved it.
        """
        return cls(path=path, **kwargs)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _load_stored_tables(self) -> None:
        assert self.store is not None
        from repro.engine.stats import PointStats

        for name in self.store.table_names():
            schema_pairs, rows, version, stats = self.store.load_table(name)
            table = self.catalog.create_table(name, schema_pairs, persistent=True)
            table.adopt_rows(rows, version)
            for columns_key, (stats_version, payload) in stats.items():
                try:
                    positions = tuple(
                        int(p) for p in columns_key.split(",") if p != ""
                    )
                    summary = PointStats.from_dict(payload)
                except Exception:  # noqa: BLE001 - stats are advisory
                    continue
                table._stats_cache[positions] = (stats_version, summary)
            self._saved_versions[name] = version

    def save(self) -> int:
        """Flush every dirty persistent table to the storage directory.

        A table is dirty when its mutation ``version`` differs from the last
        version written to (or loaded from) disk — the same counter that
        invalidates planner statistics and result-cache fingerprints.
        Returns the number of tables written.  Raises
        :class:`~repro.exceptions.StorageError` when the database has no
        storage path or was already closed.
        """
        if self.store is None:
            raise StorageError("this database has no storage path; use Database.open")
        written = 0
        for name in self.catalog.table_names():
            table = self.catalog.get_table(name)
            if not table.persistent:
                continue
            if self._saved_versions.get(name) == table.version:
                continue
            stats = {
                ",".join(str(p) for p in positions): (entry_version, summary.to_dict())
                for positions, (entry_version, summary) in table._stats_cache.items()
            }
            self.store.save_table(
                name,
                [(c.name, c.dtype) for c in table.schema.columns],
                table.rows,
                table.version,
                stats=stats,
            )
            self._saved_versions[name] = table.version
            written += 1
        return written

    def close(self) -> None:
        """Flush persistent tables and release the sqlite handle (idempotent).

        The in-memory tables stay queryable after ``close()``; only the
        durable side is detached.
        """
        if self.store is None or self.store.closed:
            return
        try:
            self.save()
        finally:
            self.store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # programmatic DDL / DML (used by the data generators)
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Tuple[str, "DataType | str"]],
        persistent: bool = False,
    ) -> Table:
        """Create a table from ``(name, type)`` pairs."""
        if persistent and self.store is None:
            raise CatalogError(
                "PERSISTENT tables need a storage path; open the database with "
                "Database.open(path)"
            )
        return self.catalog.create_table(name, columns, persistent=persistent)

    def drop_table(self, name: str) -> None:
        """Drop a table (and its stored files, if it was persistent)."""
        table = self.catalog.get_table(name)
        self.catalog.drop_table(name)
        if table.persistent and self.store is not None and not self.store.closed:
            self.store.remove_table(table.name)
            self._saved_versions.pop(table.name, None)

    def has_table(self, name: str) -> bool:
        """Return True if the table exists."""
        return self.catalog.has_table(name)

    def table(self, name: str) -> Table:
        """Return the underlying heap table."""
        return self.catalog.get_table(name)

    def table_names(self) -> List[str]:
        """Return the names of all tables."""
        return self.catalog.table_names()

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert Python rows into a table; returns the row count."""
        return self.catalog.get_table(name).insert_many(rows)

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------

    def execute(self, sql: str, sgb_strategy: Optional[str] = None) -> QueryResult:
        """Parse, plan, and execute one SQL statement.

        ``sgb_strategy`` overrides the session default for this statement only
        (used by the benchmarks to compare All-Pairs / Bounds-Checking / Index
        plans for the same query).
        """
        statement = parse_sql(sql)
        return self._execute_statement(statement, sql, sgb_strategy)

    def explain(self, sql: str, sgb_strategy: Optional[str] = None) -> str:
        """Return the physical plan of a SELECT statement as text.

        Accepts either a bare ``SELECT ...`` or a full ``EXPLAIN SELECT ...``
        statement; both show the tree with the cost planner's mode choices
        and estimates, without executing the query.
        """
        statement = parse_sql(sql)
        if isinstance(statement, ExplainStatement):
            statement = statement.query
        if not isinstance(statement, SelectStatement):
            raise PlanningError("EXPLAIN is only supported for SELECT statements")
        planner = self._planner(sgb_strategy)
        plan = planner.plan_select(statement)
        plan, rewrites = self._maybe_optimize(plan)
        return "\n".join(self._explain_lines(plan, rewrites))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _planner(self, sgb_strategy: Optional[str]) -> Planner:
        settings = self.settings
        if sgb_strategy is not None:
            settings = PlannerSettings(
                sgb_strategy=sgb_strategy,
                sgb_seed=self.settings.sgb_seed,
                sgb_workers=self.settings.sgb_workers,
                cache=self.settings.cache,
                optimizer=self.settings.optimizer,
            )
        return Planner(self.catalog, settings)

    def _maybe_optimize(self, plan) -> "Tuple[object, List[str]]":
        """Run the logical rewrite layer unless the session or env disables it.

        The gate check happens *here*, before the rewrite module is entered,
        so a bypassed session (``optimizer=False`` / ``SGB_OPTIMIZER=off``)
        provably never calls into :func:`repro.minidb.plan.rewrite.optimize_plan`
        — the figure-pin tests spy on exactly that entry point.
        """
        from repro.minidb.plan.rewrite import optimizer_enabled

        if not optimizer_enabled(self.settings.optimizer):
            return plan, []
        from repro.minidb.plan.rewrite import optimize_plan

        return optimize_plan(plan)

    @staticmethod
    def _explain_lines(plan, rewrites: List[str]) -> List[str]:
        """The EXPLAIN rendering: plan tree, then one line per rewrite rule."""
        lines = plan.explain().splitlines()
        for entry in rewrites:
            lines.append(f"rewrite: {entry}")
        return lines

    def _execute_statement(
        self, statement: Statement, sql: str, sgb_strategy: Optional[str]
    ) -> QueryResult:
        if isinstance(statement, ExplainStatement):
            planner = self._planner(sgb_strategy)
            plan = planner.plan_select(statement.query)
            plan, rewrites = self._maybe_optimize(plan)
            lines = self._explain_lines(plan, rewrites)
            return QueryResult(
                columns=["QUERY PLAN"],
                rows=[(line,) for line in lines],
                rowcount=len(lines),
                statement=sql,
                rewrites=rewrites,
            )
        if isinstance(statement, SelectStatement):
            planner = self._planner(sgb_strategy)
            plan = planner.plan_select(statement)
            plan, rewrites = self._maybe_optimize(plan)
            rows = list(plan.rows())
            return QueryResult(
                columns=[c.name for c in plan.schema.columns],
                rows=rows,
                rowcount=len(rows),
                statement=sql,
                plan=_collect_last_plan(plan),
                rewrites=rewrites,
            )
        if isinstance(statement, CreateTableStatement):
            self.create_table(
                statement.name, statement.columns, persistent=statement.persistent
            )
            return QueryResult(statement=sql)
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.name)
            return QueryResult(statement=sql)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, sql)
        raise PlanningError(f"unsupported statement {statement!r}")

    def _execute_insert(self, statement: InsertStatement, sql: str) -> QueryResult:
        table = self.catalog.get_table(statement.table)
        empty = Schema([])
        count = 0
        for row_exprs in statement.rows:
            values = [compile_expression(expr, empty)(()) for expr in row_exprs]
            if statement.columns:
                by_name = dict(zip([c.lower() for c in statement.columns], values))
                ordered = [by_name.get(col.name) for col in table.schema.columns]
                table.insert(ordered)
            else:
                table.insert(values)
            count += 1
        return QueryResult(rowcount=count, statement=sql)
