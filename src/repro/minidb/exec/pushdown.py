"""Shard-level aggregate push-down for parallel SGB-Any queries.

The plain sharded SGB path (:func:`repro.engine.workers.sgb_any_sharded`)
parallelises only the *grouping*: workers return their shard's Union-Find
forest and the coordinator then replays every group member through the
aggregate accumulators.  For wide shards that replay — one pass over every
buffered row, per aggregate — is the remaining serial section.

This module pushes the accumulation into the workers: each shard task
groups its slab *and* folds the shard rows into per-local-root accumulator
states (:meth:`Aggregate.step_many` exactly as the coordinator replay
would), returning only the picklable partial states
(:meth:`Aggregate.partial`).  The coordinator merges the forests as before
and then merges each global group's states with :meth:`Aggregate.absorb`
instead of touching the rows again.  Grouping-key centroids stay on the
coordinator: they are float sums whose value depends on addition order, and
only the ascending-global-index order of the serial replay is the reference.

Exactness gate
--------------
Push-down must be *invisible*: the executor's parallel results are asserted
equal to the serial ones, so a query is eligible only when state merging
provably reproduces the row replay:

* every aggregate must be :attr:`Aggregate.mergeable`
  (``count(*)``/``count``/``min``/``max``/``sum``/``avg``) — order-free by
  algebra;
* ``sum``/``avg`` are additionally gated on every value being a Python
  ``int`` (and not ``bool``): integer addition is arbitrary-precision and
  therefore insensitive to the partition, while float addition is not.

Ineligible queries (any other aggregate, float sums, ELIMINATE semantics —
which never reach here because SGB-All always runs serially) keep the
existing ship-members-and-replay path unchanged.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.distance import resolve_metric
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult
from repro.engine.merge import canonical_groups, merge_shard_forests
from repro.engine.partition import partition_pointset
from repro.engine.planner import plan_shards
from repro.engine.workers import drop_worker_pool, get_worker_pool
from repro.minidb.exec.aggregate import AggregateSpec
from repro.minidb.functions import MULTI_ARG_AGGREGATES, create_aggregate

__all__ = ["pushdown_eligible", "columns_eligible", "sgb_any_pushdown"]

_POOL_ERRORS = (BrokenProcessPool, OSError, RuntimeError)

#: Aggregates whose partial states merge exactly regardless of partition.
_MERGEABLE_FUNCS = frozenset({"count", "min", "max", "sum", "avg", "average"})

#: Of those, the ones whose accumulation is an addition — exact only when
#: every value is an arbitrary-precision int.
_ADDITIVE_FUNCS = frozenset({"sum", "avg", "average"})


def pushdown_eligible(specs: Sequence[AggregateSpec]) -> bool:
    """Static check: every spec's aggregate supports exact state merging."""
    for spec in specs:
        func = spec.func.lower()
        if func not in _MERGEABLE_FUNCS or func in MULTI_ARG_AGGREGATES:
            return False
    return True


def columns_eligible(
    specs: Sequence[AggregateSpec], columns: Sequence[Optional[List[Any]]]
) -> bool:
    """Runtime check: additive aggregates only push down over pure-int values."""
    for spec, column in zip(specs, columns):
        if spec.func.lower() not in _ADDITIVE_FUNCS or column is None:
            continue
        for value in column:
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                return False
    return True


def _pushdown_shard(
    payload: Any,
    eps: float,
    metric_value: str,
    spec_payload: List[Tuple[str, bool]],
    shard_columns: List[Optional[List[Any]]],
) -> Tuple[Dict[int, int], Dict[int, List[Any]]]:
    """Worker body: group one shard and pre-aggregate its rows per local root.

    Module-level (not a closure) so it pickles by reference under every
    multiprocessing start method.  ``shard_columns`` holds one value column
    per spec aligned with the shard's local row order (``None`` for
    ``count(*)``-style constant steps).  Returns the shard forest plus
    ``{local_root: [partial state per spec]}``.
    """
    from repro.core.sgb_any import SGBAnyGrouper

    grouper = SGBAnyGrouper(eps=eps, metric=metric_value)
    grouper.add_batch(payload)
    forest = grouper.forest()

    members_by_root: Dict[int, List[int]] = {}
    for position in range(len(forest)):
        members_by_root.setdefault(forest[position], []).append(position)
    partials: Dict[int, List[Any]] = {}
    for root, members in members_by_root.items():
        accumulators = [create_aggregate(func, star) for func, star in spec_payload]
        for column, acc in zip(shard_columns, accumulators):
            if column is None:
                acc.step_count(len(members))
            else:
                acc.step_many([column[i] for i in members])
        partials[root] = [acc.partial() for acc in accumulators]
    return forest, partials


def sgb_any_pushdown(
    points: PointSet,
    eps: float,
    metric: str,
    workers: "Optional[int | str]",
    specs: Sequence[AggregateSpec],
    agg_columns: Sequence[Optional[List[Any]]],
    shards: Optional[int] = None,
) -> Optional[Tuple[GroupingResult, List[List[Any]]]]:
    """Group + aggregate in worker processes; ``None`` means "use the normal path".

    On success returns the grouping (canonically labelled, exactly what
    :func:`sgb_any_sharded` returns) plus one list of already-stepped
    accumulators per group, aligned with ``grouping.groups`` — the caller
    only finalizes them.  Any degradation (plan went serial, partition
    refused, pool unavailable or broken) returns ``None`` so the caller's
    existing serial/sharded fallbacks stay in charge; this function never
    aggregates in-process precisely because the replay path already covers
    that case better.
    """
    metric_enum = resolve_metric(metric)
    eps = PointSet._check_eps(eps)
    plan = plan_shards(len(points), eps, workers)
    n_shards = shards if shards is not None else plan.shards
    if n_shards < 2 or not plan.parallel or plan.workers < 2:
        return None
    partition = partition_pointset(points, eps, n_shards)
    if partition is None or len(partition.shards) < 2:
        return None
    pool = get_worker_pool(plan.workers)
    if pool is None:
        return None

    spec_payload = [(spec.func, spec.star) for spec in specs]
    try:
        futures = [
            pool.submit(
                _pushdown_shard,
                shard.points,
                eps,
                metric_enum.value,
                spec_payload,
                [
                    None if column is None else [column[g] for g in shard.indices]
                    for column in agg_columns
                ],
            )
            for shard in partition.shards
        ]
        # Overlap: stitch the halo bands while the pool grinds the shards.
        from repro.engine.workers import _band_edges

        edges = list(_band_edges(partition, eps, metric_enum))
        results = [future.result() for future in futures]
    except _POOL_ERRORS:
        drop_worker_pool(plan.workers)
        return None

    shard_lists = [shard.indices for shard in partition.shards]
    uf = merge_shard_forests(
        len(points), shard_lists, [forest for forest, _ in results], edges
    )
    # Absorb the shard states per global root, visiting shards (then local
    # roots) in ascending order so the merge order is deterministic.
    merged: Dict[int, List[Any]] = {}
    for indices, (_, partials) in zip(shard_lists, results):
        for local_root in sorted(partials):
            global_root = uf.find(indices[local_root])
            accumulators = merged.get(global_root)
            if accumulators is None:
                accumulators = [
                    create_aggregate(spec.func, spec.star) for spec in specs
                ]
                merged[global_root] = accumulators
            for acc, state in zip(accumulators, partials[local_root]):
                acc.absorb(state)

    groups = canonical_groups(uf)
    group_accumulators = [merged[uf.find(group[0])] for group in groups]
    grouping = GroupingResult(
        groups=groups, eliminated=[], points=points.to_tuples()
    )
    return grouping, group_accumulators
