"""Row-at-a-time (Volcano) physical operators.

Every operator exposes ``schema`` (the layout of the rows it produces),
``rows()`` (an iterator of tuples), and ``explain()`` (a plan-tree string used
by ``Database.explain``).  Operators compile their expressions against their
child's schema once, at construction time, so per-row evaluation is a plain
closure call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError
from repro.minidb.expressions import Expression, compile_expression
from repro.minidb.schema import Column, Schema
from repro.minidb.table import Table
from repro.minidb.types import DataType

__all__ = [
    "PhysicalOperator",
    "SeqScan",
    "ValuesScan",
    "Filter",
    "Project",
    "Rename",
    "TagRows",
    "RestoreOrder",
    "NestedLoopJoin",
    "HashJoin",
    "Sort",
    "Limit",
    "Distinct",
]

Row = Tuple[Any, ...]


class PhysicalOperator(ABC):
    """Base class of every physical operator."""

    schema: Schema

    @abstractmethod
    def rows(self) -> Iterator[Row]:
        """Yield output rows."""

    def explain(self, indent: int = 0) -> str:
        """Return a human-readable plan-tree fragment.

        Operators with planner estimates append their head line with
        ``(est_rows=...)`` and indent one extra ``-> ...`` line per
        :meth:`annotations` entry (mode choices, estimated costs).
        """
        pad = "  " * indent
        head = self.describe()
        estimate = self.estimated_rows()
        if estimate is not None:
            head = f"{head}  (est_rows={estimate})"
        lines = [f"{pad}{head}"]
        for note in self.annotations():
            lines.append(f"{pad}   -> {note}")
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of the operator."""
        return type(self).__name__

    def annotations(self) -> List[str]:
        """Extra EXPLAIN detail lines (chosen mode, estimated cost); none by default."""
        return []

    def estimated_rows(self) -> "Optional[int]":
        """The planner's output-cardinality estimate, when one is known."""
        return None

    def children(self) -> Sequence["PhysicalOperator"]:
        """Return the child operators."""
        return ()

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class SeqScan(PhysicalOperator):
    """Sequential scan over a heap table, optionally re-qualified by an alias."""

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = (alias or table.name).lower()
        self.schema = table.schema.with_qualifier(self.alias)

    def rows(self) -> Iterator[Row]:
        return iter(self.table.rows)

    def describe(self) -> str:
        if self.alias != self.table.name:
            return f"SeqScan({self.table.name} AS {self.alias})"
        return f"SeqScan({self.table.name})"

    def estimated_rows(self) -> Optional[int]:
        return len(self.table)


class ValuesScan(PhysicalOperator):
    """Produce a fixed list of rows (used for materialised intermediate results)."""

    def __init__(self, rows: List[Row], schema: Schema) -> None:
        self._rows = rows
        self.schema = schema

    def rows(self) -> Iterator[Row]:
        return iter(self._rows)

    def describe(self) -> str:
        return f"ValuesScan({len(self._rows)} rows)"

    def estimated_rows(self) -> Optional[int]:
        return len(self._rows)


class Rename(PhysicalOperator):
    """Re-qualify (and optionally rename) a child's output columns.

    Used for derived tables: ``(SELECT ...) AS r1`` exposes the subquery's
    output columns under the qualifier ``r1``.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        qualifier: Optional[str],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        self.child = child
        self.qualifier = qualifier.lower() if qualifier else None
        columns = []
        for i, col in enumerate(child.schema.columns):
            name = (names[i] if names else col.name).lower()
            columns.append(Column(name, col.dtype, self.qualifier))
        self.schema = Schema(columns)

    def rows(self) -> Iterator[Row]:
        return self.child.rows()

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Rename(AS {self.qualifier})"


class TagRows(PhysicalOperator):
    """Append the child's 0-based row index as a trailing integer column.

    The rewrite layer tags every join leaf with a row id before reordering;
    :class:`RestoreOrder` then sorts the reordered join's output back into
    the order the original left-deep plan would have produced.  The rid
    column name must be unique within the final join schema (the planner
    uses ``#rid0``, ``#rid1``, ... — ``#`` keeps them out of SQL's lexical
    namespace).
    """

    def __init__(self, child: PhysicalOperator, name: str) -> None:
        self.child = child
        self.rid_name = name.lower()
        self.schema = Schema(
            list(child.schema.columns) + [Column(self.rid_name, DataType.INT, None)]
        )

    def rows(self) -> Iterator[Row]:
        for index, row in enumerate(self.child.rows()):
            yield row + (index,)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"TagRows({self.rid_name})"


class RestoreOrder(PhysicalOperator):
    """Sort by row-id columns and project them away.

    Placed above a reordered join tree: the stable ascending sort on the
    original leaves' row ids (most significant first, in the original FROM
    order) restores the exact row sequence a left-deep plan over those
    leaves enumerates, and the positional projection restores the original
    column layout while dropping the rid columns.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        rid_positions: Sequence[int],
        output_positions: Sequence[int],
    ) -> None:
        self.child = child
        self.rid_positions = list(rid_positions)
        self.output_positions = list(output_positions)
        self.schema = Schema(
            [child.schema.columns[p] for p in self.output_positions]
        )

    def rows(self) -> Iterator[Row]:
        rows = list(self.child.rows())
        rid_positions = self.rid_positions
        rows.sort(key=lambda row: tuple(row[p] for p in rid_positions))
        output_positions = self.output_positions
        for row in rows:
            yield tuple(row[p] for p in output_positions)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"RestoreOrder({len(self.rid_positions)} keys)"

    def estimated_rows(self) -> Optional[int]:
        from repro.minidb.exec.statics import estimated_subtree_rows

        return estimated_subtree_rows(self.child)


class Filter(PhysicalOperator):
    """Keep rows for which the predicate evaluates to SQL TRUE."""

    def __init__(self, child: PhysicalOperator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._compiled = compile_expression(predicate, child.schema)

    def rows(self) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.rows():
            if compiled(row) is True:
                yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate})"

    def estimated_rows(self) -> Optional[int]:
        from repro.minidb.exec.statics import estimate_filter_rows

        return estimate_filter_rows(self)


class Project(PhysicalOperator):
    """Compute output expressions per input row."""

    def __init__(
        self,
        child: PhysicalOperator,
        expressions: Sequence[Expression],
        names: Sequence[str],
        types: Optional[Sequence[DataType]] = None,
    ) -> None:
        if len(expressions) != len(names):
            raise ExecutionError("projection expressions and names differ in length")
        self.child = child
        self.expressions = list(expressions)
        self._compiled = [compile_expression(e, child.schema) for e in expressions]
        dtypes = list(types) if types else [DataType.FLOAT] * len(names)
        self.schema = Schema(
            [Column(name.lower(), dtype, None) for name, dtype in zip(names, dtypes)]
        )

    def rows(self) -> Iterator[Row]:
        compiled = self._compiled
        for row in self.child.rows():
            yield tuple(fn(row) for fn in compiled)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(c.name for c in self.schema.columns)})"


class NestedLoopJoin(PhysicalOperator):
    """Inner join by nested loops; the right side is materialised once."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Expression] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.schema = left.schema.concat(right.schema)
        self._compiled = (
            compile_expression(condition, self.schema) if condition is not None else None
        )

    def rows(self) -> Iterator[Row]:
        right_rows = list(self.right.rows())
        compiled = self._compiled
        for left_row in self.left.rows():
            for right_row in right_rows:
                combined = left_row + right_row
                if compiled is None or compiled(combined) is True:
                    yield combined

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"NestedLoopJoin({self.condition})" if self.condition else "NestedLoopJoin(cross)"

    def estimated_rows(self) -> Optional[int]:
        from repro.minidb.exec.statics import estimate_join_rows

        return estimate_join_rows(self)


class HashJoin(PhysicalOperator):
    """Equi-join: build a hash table on the right side, probe with the left."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        residual: Optional[Expression] = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self._left_key_fns = [compile_expression(e, left.schema) for e in left_keys]
        self._right_key_fns = [compile_expression(e, right.schema) for e in right_keys]
        self._residual_fn = (
            compile_expression(residual, self.schema) if residual is not None else None
        )

    def rows(self) -> Iterator[Row]:
        build: dict[Tuple[Any, ...], List[Row]] = {}
        for row in self.right.rows():
            key = tuple(fn(row) for fn in self._right_key_fns)
            if any(k is None for k in key):
                continue
            build.setdefault(key, []).append(row)
        residual = self._residual_fn
        for left_row in self.left.rows():
            key = tuple(fn(left_row) for fn in self._left_key_fns)
            if any(k is None for k in key):
                continue
            for right_row in build.get(key, ()):
                combined = left_row + right_row
                if residual is None or residual(combined) is True:
                    yield combined

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        keys = ", ".join(str(k) for k in self.left_keys)
        return f"HashJoin(keys=[{keys}])"

    def estimated_rows(self) -> Optional[int]:
        from repro.minidb.exec.statics import estimate_join_rows

        return estimate_join_rows(self)


class Sort(PhysicalOperator):
    """Materialising sort on the compiled sort keys."""

    def __init__(
        self,
        child: PhysicalOperator,
        keys: Sequence[Expression],
        ascending: Sequence[bool],
    ) -> None:
        self.child = child
        self.schema = child.schema
        self.keys = list(keys)
        self.ascending = list(ascending)
        self._key_fns = [compile_expression(e, child.schema) for e in keys]
        self._ascending = list(ascending)

    def rows(self) -> Iterator[Row]:
        rows = list(self.child.rows())
        # Stable multi-key sort: apply keys from the least to the most significant.
        for key_fn, asc in reversed(list(zip(self._key_fns, self._ascending))):
            rows.sort(
                key=lambda row: (key_fn(row) is None, key_fn(row)),
                reverse=not asc,
            )
        return iter(rows)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Sort({len(self._key_fns)} keys)"


class Limit(PhysicalOperator):
    """Stop after ``limit`` rows."""

    def __init__(self, child: PhysicalOperator, limit: int) -> None:
        self.child = child
        self.limit = max(0, int(limit))
        self.schema = child.schema

    def rows(self) -> Iterator[Row]:
        count = 0
        for row in self.child.rows():
            if count >= self.limit:
                return
            count += 1
            yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.limit})"

    def estimated_rows(self) -> Optional[int]:
        from repro.minidb.exec.statics import estimated_subtree_rows

        child_rows = estimated_subtree_rows(self.child)
        if child_rows is None:
            return self.limit
        return min(child_rows, self.limit)


class Distinct(PhysicalOperator):
    """Remove duplicate rows (hash-based)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self.schema = child.schema

    def rows(self) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.rows():
            key = _hashable(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)


def _hashable(row: Iterable[Any]) -> Tuple[Any, ...]:
    """Convert row values into a hashable key (lists become tuples)."""
    return tuple(tuple(v) if isinstance(v, list) else v for v in row)
