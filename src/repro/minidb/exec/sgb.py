"""The similarity group-by physical operator (SGB-All / SGB-Any).

This is the executor node the paper adds to PostgreSQL's hash-aggregate path:
incoming tuples are buffered, their grouping attributes are streamed into the
:class:`~repro.core.sgb_all.SGBAllGrouper` or
:class:`~repro.core.sgb_any.SGBAnyGrouper`, and once the input is exhausted
(ELIMINATE / FORM-NEW-GROUP can only finalise then) the buffered tuples are
replayed group-by-group through the aggregate accumulators.

Output rows are ``(key centroid values..., aggregate values...)``: the
representative value reported for each grouping attribute is the per-group
mean, since a similarity group spans a range of attribute values rather than
a single one.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.overlap import OverlapAction
from repro.core.pointset import PointSet
from repro.core.sgb_all import SGBAllGrouper, SGBAllStrategy
from repro.core.sgb_any import SGBAnyGrouper, SGBAnyStrategy
from repro.exceptions import ExecutionError, InvalidParameterError
from repro.minidb.exec.aggregate import AggregateSpec, _AggregateEvaluator
from repro.minidb.exec.operators import PhysicalOperator, Row
from repro.minidb.expressions import Expression, compile_expression
from repro.minidb.schema import Column, Schema
from repro.minidb.types import DataType

__all__ = ["SGBAggregate"]


class SGBAggregate(PhysicalOperator):
    """Similarity group-by aggregation over multi-dimensional grouping attributes."""

    def __init__(
        self,
        child: PhysicalOperator,
        key_exprs: Sequence[Expression],
        key_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        kind: str,
        metric: str,
        eps: float,
        on_overlap: Optional[str] = None,
        strategy: str = "index",
        seed: int = 0,
    ) -> None:
        if kind not in ("all", "any"):
            raise ExecutionError(f"unknown SGB kind {kind!r}")
        if len(key_exprs) < 1:
            raise ExecutionError("similarity group-by requires at least one grouping attribute")
        self.child = child
        self.kind = kind
        self.metric = metric
        self.eps = float(eps)
        self.on_overlap = on_overlap
        self.strategy = strategy
        self.seed = seed
        self.key_exprs = list(key_exprs)
        self.aggregates = list(aggregates)
        self._key_fns = [compile_expression(e, child.schema) for e in key_exprs]
        self._evaluator = _AggregateEvaluator(aggregates, child.schema)
        columns = [Column(name.lower(), DataType.FLOAT, None) for name in key_names]
        columns += [
            Column(spec.output_name.lower(), spec.output_type(), None)
            for spec in self.aggregates
        ]
        self.schema = Schema(columns)

    # ------------------------------------------------------------------

    def _make_grouper(self):
        if self.kind == "all":
            return SGBAllGrouper(
                eps=self.eps,
                metric=self.metric,
                on_overlap=self.on_overlap or OverlapAction.JOIN_ANY,
                strategy=SGBAllStrategy.parse(self.strategy),
                seed=self.seed,
            )
        strategy = (
            SGBAnyStrategy.ALL_PAIRS
            if SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS
            else SGBAnyStrategy.INDEX
        )
        return SGBAnyGrouper(eps=self.eps, metric=self.metric, strategy=strategy)

    def rows(self) -> Iterator[Row]:
        grouper = self._make_grouper()
        buffered: List[Row] = []
        # Buffer the child's tuples and collect the grouping attributes into
        # one column vector per key expression; the whole batch then flows
        # through the grouper's columnar pipeline in a single add_batch call
        # (the paper's operator likewise consumes the buffered input at once).
        columns: List[List[float]] = [[] for _ in self._key_fns]
        for row in self.child.rows():
            for column, fn in zip(columns, self._key_fns):
                column.append(self._key_value(fn, row))
            buffered.append(row)
        if buffered:
            try:
                grouper.add_batch(PointSet.from_columns(columns))
            except InvalidParameterError as exc:
                # Surface core-layer validation (e.g. NaN grouping values) as
                # an executor error so engine callers see a DatabaseError.
                raise ExecutionError(
                    f"invalid similarity grouping attributes: {exc}"
                ) from exc
        result = grouper.finalize()

        dims = len(self.key_exprs)
        for gid, members in enumerate(result.groups):
            if not members:
                continue
            accumulators = self._evaluator.new_accumulators()
            for idx in members:
                self._evaluator.step(accumulators, buffered[idx])
            centroid = self._centroid(result, gid, dims)
            yield tuple(centroid) + tuple(self._evaluator.finalize(accumulators))

    @staticmethod
    def _key_value(fn, row: Row) -> float:
        value = fn(row)
        if value is None:
            raise ExecutionError("similarity grouping attributes must not be NULL")
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"similarity grouping attribute value {value!r} is not numeric"
            ) from exc

    @staticmethod
    def _centroid(result, gid: int, dims: int) -> List[float]:
        members = result.group_points(gid)
        return [sum(p[d] for p in members) / len(members) for d in range(dims)]

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        clause = "DISTANCE-TO-ALL" if self.kind == "all" else "DISTANCE-TO-ANY"
        overlap = f" ON-OVERLAP {self.on_overlap}" if self.kind == "all" else ""
        keys = ", ".join(str(e) for e in self.key_exprs)
        return (
            f"SGBAggregate({clause} {self.metric} WITHIN {self.eps}{overlap}; "
            f"keys=[{keys}]; strategy={self.strategy})"
        )
