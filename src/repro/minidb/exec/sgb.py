"""The similarity group-by physical operator (SGB-All / SGB-Any).

This is the executor node the paper adds to PostgreSQL's hash-aggregate path:
incoming tuples are buffered, their grouping attributes are streamed into the
:class:`~repro.core.sgb_all.SGBAllGrouper` or
:class:`~repro.core.sgb_any.SGBAnyGrouper`, and once the input is exhausted
(ELIMINATE / FORM-NEW-GROUP can only finalise then) the buffered tuples are
replayed group-by-group through the aggregate accumulators.

Output rows are ``(key centroid values..., aggregate values...)``: the
representative value reported for each grouping attribute is the per-group
mean, since a similarity group spans a range of attribute values rather than
a single one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.core.overlap import OverlapAction
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult, canonicalize_groups
from repro.core.sgb_all import SGBAllGrouper, SGBAllStrategy
from repro.core.sgb_any import SGBAnyGrouper, SGBAnyStrategy
from repro.engine.cost import plan_sgb_all, plan_sgb_any, planner_delegated
from repro.engine.planner import resolve_workers
from repro.engine.stats import collect_stats
from repro.engine.workers import sgb_any_sharded
from repro.exceptions import CatalogError, ExecutionError, InvalidParameterError
from repro.minidb.exec.aggregate import AggregateSpec, _AggregateEvaluator
from repro.minidb.exec.operators import PhysicalOperator, Row
from repro.minidb.exec.pushdown import (
    columns_eligible,
    pushdown_eligible,
    sgb_any_pushdown,
)
from repro.minidb.expressions import ColumnRef, Expression, compile_expression
from repro.minidb.schema import Column, Schema
from repro.minidb.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cost import PhysicalPlan

__all__ = ["SGBAggregate"]


class SGBAggregate(PhysicalOperator):
    """Similarity group-by aggregation over multi-dimensional grouping attributes."""

    def __init__(
        self,
        child: PhysicalOperator,
        key_exprs: Sequence[Expression],
        key_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        kind: str,
        metric: str,
        eps: float,
        on_overlap: Optional[str] = None,
        strategy: str = "index",
        seed: int = 0,
        workers: "Optional[int | str]" = None,
        window: Optional[int] = None,
        slide: Optional[int] = None,
        cache: object = None,
    ) -> None:
        if kind not in ("all", "any"):
            raise ExecutionError(f"unknown SGB kind {kind!r}")
        if len(key_exprs) < 1:
            raise ExecutionError("similarity group-by requires at least one grouping attribute")
        if window is not None and kind != "any":
            raise ExecutionError("WINDOW is only supported for DISTANCE-TO-ANY")
        self.child = child
        self.kind = kind
        self.metric = metric
        self.eps = float(eps)
        self.on_overlap = on_overlap
        self.strategy = strategy
        self.seed = seed
        self.workers = workers
        self.window = window
        self.slide = slide
        self.cache = cache
        self.key_exprs = list(key_exprs)
        self.aggregates = list(aggregates)
        #: The physical plan the cost planner chose at execution time (None
        #: until rows() has run, and on the forced legacy WORKERS paths).
        self.last_plan: "Optional[PhysicalPlan]" = None
        self._key_fns = [compile_expression(e, child.schema) for e in key_exprs]
        self._evaluator = _AggregateEvaluator(aggregates, child.schema)
        columns = (
            [Column("window_id", DataType.INT, None)] if window is not None else []
        )
        columns += [Column(name.lower(), DataType.FLOAT, None) for name in key_names]
        columns += [
            Column(spec.output_name.lower(), spec.output_type(), None)
            for spec in self.aggregates
        ]
        self.schema = Schema(columns)

    # ------------------------------------------------------------------

    def _make_grouper(self):
        if self.kind == "all":
            return SGBAllGrouper(
                eps=self.eps,
                metric=self.metric,
                on_overlap=self.on_overlap or OverlapAction.JOIN_ANY,
                strategy=SGBAllStrategy.parse(self.strategy),
                seed=self.seed,
            )
        strategy = (
            SGBAnyStrategy.ALL_PAIRS
            if SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS
            else SGBAnyStrategy.INDEX
        )
        return SGBAnyGrouper(eps=self.eps, metric=self.metric, strategy=strategy)

    def rows(self) -> Iterator[Row]:
        self.last_plan = None
        fused = self._trace_fusable_join()
        if fused is not None:
            yield from self._fused_join_rows(*fused)
            return
        buffered: List[Row] = []
        # Buffer the child's tuples and collect the grouping attributes into
        # one column vector per key expression; the whole batch then flows
        # through the grouper's columnar pipeline in a single add_batch call
        # (the paper's operator likewise consumes the buffered input at once).
        columns: List[List[float]] = [[] for _ in self._key_fns]
        for row in self.child.rows():
            for column, fn in zip(columns, self._key_fns):
                column.append(self._key_value(fn, row))
            buffered.append(row)
        if self.window is not None:
            yield from self._windowed_rows(buffered, columns)
            return
        dims = len(self.key_exprs)
        pushed = self._try_pushdown(buffered, columns)
        if pushed is not None:
            # The workers already accumulated the aggregates; only the key
            # centroids (order-sensitive float sums) are computed here.
            result, group_accumulators = pushed
            for members, accumulators in zip(result.groups, group_accumulators):
                centroid = [
                    sum(columns[d][idx] for idx in members) / len(members)
                    for d in range(dims)
                ]
                yield tuple(centroid) + tuple(self._evaluator.finalize(accumulators))
            return
        result = self._group(buffered, columns)
        # The aggregate replay runs over column slices: every aggregate
        # argument is evaluated once per buffered row into a column vector,
        # and each group feeds its members' slice to the accumulators in one
        # bulk step instead of re-dispatching row by row.  With ELIMINATE
        # semantics some buffered rows belong to no group, and aggregate
        # arguments must never be evaluated on them (e.g. 1/v with v=0 on a
        # dropped row), so the eliminating case replays row-at-a-time.
        agg_columns = (
            self._evaluator.value_columns(buffered) if not result.eliminated else None
        )
        for members in result.groups:
            if not members:
                continue
            accumulators = self._evaluator.new_accumulators()
            if agg_columns is not None:
                self._evaluator.step_slice(accumulators, agg_columns, members)
            else:
                for idx in members:
                    self._evaluator.step(accumulators, buffered[idx])
            centroid = [
                sum(columns[d][idx] for idx in members) / len(members)
                for d in range(dims)
            ]
            yield tuple(centroid) + tuple(self._evaluator.finalize(accumulators))

    def _windowed_rows(
        self, buffered: List[Row], columns: List[List[float]]
    ) -> Iterator[Row]:
        """Stream the buffered input through the windowed SGB-Any subsystem.

        The child's tuples are replayed in arrival order as a count-based
        stream (``WINDOW n [SLIDE m]``); each closed window contributes one
        output row per group, tagged with a leading ``window_id`` column.
        Aggregates replay over the buffered rows of the window's live
        members — always through the column-slice fast path, since SGB-Any
        never eliminates rows.
        """
        if not buffered:
            return
        from repro.stream.session import StreamingSGB

        try:
            points = PointSet.from_columns(columns)
            session = StreamingSGB(
                self.eps,
                metric=self.metric,
                window=self.window,
                slide=self.slide,
                workers=self.workers,
            )
            windows = session.ingest(points)
            windows.extend(session.close())
        except InvalidParameterError as exc:
            raise ExecutionError(
                f"invalid similarity grouping attributes: {exc}"
            ) from exc
        dims = len(self.key_exprs)
        agg_columns = self._evaluator.value_columns(buffered)
        for window in windows:
            for local_members in window.result.groups:
                members = [window.indices[i] for i in local_members]
                accumulators = self._evaluator.new_accumulators()
                self._evaluator.step_slice(accumulators, agg_columns, members)
                centroid = [
                    sum(columns[d][idx] for idx in members) / len(members)
                    for d in range(dims)
                ]
                yield (
                    (window.window_id,)
                    + tuple(centroid)
                    + tuple(self._evaluator.finalize(accumulators))
                )

    def _group(self, buffered: List[Row], columns: List[List[float]]) -> GroupingResult:
        """Group the buffered batch, in parallel shards when workers allow.

        Without an explicit worker count (no WORKERS clause and ``SGB_WORKERS``
        unset or ``auto``) SGB-Any delegates the mode choice to the cost
        planner, which scores serial vs sharded execution from the batch's
        statistics.  SGB-Any with a numeric ``WORKERS > 1`` (clause option,
        session default, or the environment variable) is forced through the
        sharded engine; SGB-All's arbitration is order-dependent, so it
        always runs serially regardless.
        """
        if not buffered:
            return GroupingResult.empty()
        cache, cache_key = self._cache_lookup(columns)
        if cache is not None:
            hit = cache.get_grouping(cache_key)
            if hit is not None:
                return hit
        result = self._group_uncached(columns)
        if cache is not None:
            cache.put_grouping(cache_key, result)
        return result

    def _cache_lookup(self, columns: List[List[float]]):
        """Resolve the result cache and this batch's grouping key.

        The fingerprint prefers the base table's version-memoised digest
        (:func:`trace_base_fingerprint`; exact only through Rename wrappers)
        and otherwise hashes the buffered column vectors — both produce the
        same content digest for the same data, so SQL queries and direct
        core-API calls over identical batches share cache entries.
        """
        from repro.storage.cache import resolve_cache, sgb_all_key, sgb_any_key

        cache = resolve_cache(self.cache)
        if cache is None:
            return None, None
        from repro.core.fingerprint import fingerprint_columns
        from repro.minidb.exec.statics import trace_base_fingerprint

        from repro.core.pointset import HAVE_NUMPY

        fingerprint = trace_base_fingerprint(self.child, self.key_exprs)
        if fingerprint is None:
            fingerprint = fingerprint_columns(columns)
        backend = "numpy" if HAVE_NUMPY else "python"
        if self.kind == "any":
            strategy = (
                SGBAnyStrategy.ALL_PAIRS
                if SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS
                else SGBAnyStrategy.INDEX
            ).value
            key = sgb_any_key(fingerprint, self.eps, self.metric, strategy, backend)
        else:
            key = sgb_all_key(
                fingerprint,
                self.eps,
                self.metric,
                SGBAllStrategy.parse(self.strategy).value,
                str(self.on_overlap or OverlapAction.JOIN_ANY.value),
                self.seed,
                backend,
            )
        return cache, key

    def _group_uncached(self, columns: List[List[float]]) -> GroupingResult:
        # Resolve outside the try below: a bad SGB_WORKERS value is a
        # configuration error and must not be re-labelled as a data error.
        # The strategy gate mirrors _make_grouper: everything except
        # ALL_PAIRS maps onto the INDEX pipeline, which is exactly what the
        # sharded engine runs per shard.
        shardable = (
            self.kind == "any"
            and SGBAllStrategy.parse(self.strategy) is not SGBAllStrategy.ALL_PAIRS
        )
        delegated = shardable and planner_delegated(self.workers)
        parallel = (
            shardable and not delegated and resolve_workers(self.workers) > 1
        )
        try:
            points = PointSet.from_columns(columns)
            if delegated:
                plan = plan_sgb_any(collect_stats(points), self.eps)
                self.last_plan = plan
                if plan.mode == "sharded":
                    result = sgb_any_sharded(
                        points,
                        eps=self.eps,
                        metric=self.metric,
                        workers=plan.workers,
                        shards=plan.shards,
                    )
                    result.plan = plan
                    return result
            elif parallel:
                return sgb_any_sharded(
                    points, eps=self.eps, metric=self.metric, workers=self.workers
                )
            grouper = self._make_grouper()
            grouper.add_batch(points)
        except InvalidParameterError as exc:
            # Surface core-layer validation (e.g. NaN grouping values) as
            # an executor error so engine callers see a DatabaseError.
            raise ExecutionError(
                f"invalid similarity grouping attributes: {exc}"
            ) from exc
        result = grouper.finalize()
        result.plan = self.last_plan
        return result

    def _try_pushdown(self, buffered: List[Row], columns: List[List[float]]):
        """Shard-level aggregate push-down; ``None`` keeps the replay path.

        Eligible only for the same parallel SGB-Any configurations
        :meth:`_group` shards, and only when merging worker-side partial
        aggregate states provably reproduces the coordinator replay (see
        :mod:`repro.minidb.exec.pushdown`).  Under a forced numeric WORKERS
        count, every mergeable aggregate list qualifies (the legacy
        behaviour); under cost-planner delegation ``COUNT(*)``-style star
        lists always push down — no value columns are shipped, so the win
        is unconditional — while non-COUNT aggregate lists are *costed*:
        shipping one value column per aggregate to the workers must be
        cheaper than the coordinator replay it replaces, with the input
        cardinality read from the statistics propagated through the child
        plan (:func:`~repro.minidb.exec.statics.trace_point_stats`, so
        filtered and joined inputs are priced at their derived counts, not
        a synthetic guess).  Either way push-down happens only when the
        planner shards the grouping anyway.  SGB-All — including its
        ELIMINATE arbitration — never reaches this path: it always groups
        serially and replays row-at-a-time.
        """
        if (
            not buffered
            or self.kind != "any"
            or SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS
            or not pushdown_eligible(self.aggregates)
        ):
            return None
        delegated = planner_delegated(self.workers)
        if delegated:
            if not all(spec.star for spec in self.aggregates):
                if not self._pushdown_profitable(len(buffered)):
                    return None
        elif resolve_workers(self.workers) < 2:
            return None
        agg_columns = self._evaluator.value_columns(buffered)
        if not columns_eligible(self.aggregates, agg_columns):
            return None
        try:
            points = PointSet.from_columns(columns)
        except InvalidParameterError as exc:
            raise ExecutionError(
                f"invalid similarity grouping attributes: {exc}"
            ) from exc
        if delegated:
            plan = plan_sgb_any(collect_stats(points), self.eps)
            if plan.mode != "sharded":
                return None
            pushed = sgb_any_pushdown(
                points,
                self.eps,
                self.metric,
                plan.workers,
                self.aggregates,
                agg_columns,
                shards=plan.shards,
            )
            if pushed is not None:
                self.last_plan = plan
                pushed[0].plan = plan
            return pushed
        return sgb_any_pushdown(
            points, self.eps, self.metric, self.workers, self.aggregates, agg_columns
        )

    def _pushdown_profitable(self, buffered_rows: int) -> bool:
        """Cost gate for delegated non-COUNT push-down.

        The replay this would replace walks every input row once per
        aggregate on the coordinator (``c_point`` each); pushing down
        instead ships one value column per non-star aggregate to the pool
        (``c_ship`` per cell).  The input cardinality comes from the
        statistics derived through the child plan when they are available —
        a filtered or joined input is priced at its propagated count — with
        the actual buffered row count as the floor (the estimate can only
        have been too low once the rows are in hand).
        """
        from repro.engine.calibrate import load_profile
        from repro.minidb.exec.statics import trace_point_stats

        stats = trace_point_stats(self.child, self.key_exprs, len(self.key_exprs))
        rows = max(buffered_rows, stats.count if stats.count > 0 else 0)
        profile = load_profile()
        value_columns = sum(1 for spec in self.aggregates if not spec.star)
        ship_cost = profile.c_ship * rows * value_columns
        replay_cost = profile.c_point * rows * max(1, len(self.aggregates))
        # The net win must also clear the fixed partial-state merge overhead,
        # so small inputs — where the replay is near-free anyway — keep the
        # reference replay path.
        return replay_cost - ship_cost > profile.c_task

    # ------------------------------------------------------------------
    # fused SIMILARITY JOIN -> SGB route
    # ------------------------------------------------------------------

    def _trace_fusable_join(self):
        """Detect a join→SGB pipeline whose grouping keys are one side's columns.

        Walks the child chain through column-preserving wrappers (``Rename``
        and ``Project`` whose traced outputs are bare column references) down
        to a :class:`SimilarityJoin`, and resolves every grouping key to a
        column position of exactly one join side.  Returns ``(join, wrappers,
        side, key_positions)``, or ``None`` when the pipeline does not have
        that shape (the buffering path then runs unchanged).
        """
        from repro.minidb.exec.join import SimilarityJoin
        from repro.minidb.exec.operators import Project, Rename

        if self.window is not None or self.kind != "any":
            return None
        wrappers: List[PhysicalOperator] = []
        node = self.child
        while isinstance(node, (Rename, Project)):
            wrappers.append(node)
            node = node.child
        if not isinstance(node, SimilarityJoin):
            return None
        join = node
        n_left = len(join.left.schema.columns)
        sides: List[str] = []
        positions: List[int] = []
        for expr in self.key_exprs:
            position = self._trace_key_position(expr, wrappers, join)
            if position is None:
                return None
            if position < n_left:
                sides.append("left")
                positions.append(position)
            else:
                sides.append("right")
                positions.append(position - n_left)
        if len(set(sides)) != 1:
            # Keys mixing both sides vary per pair, not per matched row; the
            # distinct-side rewrite does not apply.
            return None
        return join, wrappers, sides[0], positions

    def _trace_key_position(
        self, expr: Expression, wrappers: List[PhysicalOperator], join
    ) -> Optional[int]:
        """Resolve a grouping key to its position in the join's output row."""
        from repro.minidb.exec.operators import Project

        schema = self.child.schema
        for wrapper in [*wrappers, join]:
            if not isinstance(expr, ColumnRef):
                return None
            try:
                position = schema.index_of(expr.name, expr.qualifier)
            except CatalogError:
                return None
            if wrapper is join:
                return position
            if isinstance(wrapper, Project):
                expr = wrapper.expressions[position]
                schema = wrapper.child.schema
            else:  # Rename: positional passthrough
                expr = ColumnRef(wrapper.child.schema.columns[position].name)
                schema = wrapper.child.schema
        return None

    def _fused_join_rows(
        self,
        join,
        wrappers: List[PhysicalOperator],
        side: str,
        key_positions: List[int],
    ) -> Iterator[Row]:
        """Execute the join→SGB pipeline without grouping the pair relation.

        Every grouping key is a matched-side column, so all pair rows
        carrying the same matched row collapse to one grouping point at
        distance 0 — and with a strictly positive ``WITHIN`` they always land
        in one connected component.  The SGB therefore runs over the
        *distinct* matched rows only, and the components expand back over the
        pair positions; result rows are bit-identical to grouping the
        materialised pair relation (same canonical order, same centroid and
        aggregate addition orders).
        """
        from repro.minidb.exec.operators import Project

        pairs, left_rows, right_rows = join.materialize()
        if not pairs:
            return
        side_rows = left_rows if side == "left" else right_rows
        matched = (
            [i for i, _ in pairs] if side == "left" else [j for _, j in pairs]
        )
        positions_by_row: dict[int, List[int]] = {}
        for position, side_index in enumerate(matched):
            positions_by_row.setdefault(side_index, []).append(position)
        distinct = sorted(positions_by_row)
        key_columns: List[List[float]] = [[] for _ in key_positions]
        for side_index in distinct:
            row = side_rows[side_index]
            for column, key_position in zip(key_columns, key_positions):
                column.append(
                    self._key_value(lambda r, p=key_position: r[p], row)
                )
        compact = self._group(distinct, key_columns)
        groups = canonicalize_groups(
            sorted(
                position
                for member in members
                for position in positions_by_row[distinct[member]]
            )
            for members in compact.groups
        )

        # Aggregates that consume values still need the wrapper-output pair
        # rows; star-only aggregate lists skip that materialisation entirely.
        if any(self._evaluator._arg_fns):
            pair_rows = []
            for i, j in pairs:
                row = left_rows[i] + right_rows[j]
                for wrapper in reversed(wrappers):
                    if isinstance(wrapper, Project):
                        row = tuple(fn(row) for fn in wrapper._compiled)
                pair_rows.append(row)
            agg_columns = self._evaluator.value_columns(pair_rows)
        else:
            agg_columns = [None] * len(self.aggregates)

        rank = {side_index: pos for pos, side_index in enumerate(distinct)}
        dims = len(key_positions)
        for members in groups:
            accumulators = self._evaluator.new_accumulators()
            self._evaluator.step_slice(accumulators, agg_columns, members)
            centroid = [
                sum(key_columns[d][rank[matched[idx]]] for idx in members)
                / len(members)
                for d in range(dims)
            ]
            yield tuple(centroid) + tuple(self._evaluator.finalize(accumulators))

    @staticmethod
    def _key_value(fn, row: Row) -> float:
        value = fn(row)
        if value is None:
            raise ExecutionError("similarity grouping attributes must not be NULL")
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"similarity grouping attribute value {value!r} is not numeric"
            ) from exc

    # ------------------------------------------------------------------
    # EXPLAIN support
    # ------------------------------------------------------------------

    def _static_plan(self) -> "Optional[PhysicalPlan]":
        """The plan EXPLAIN shows, mirroring what execution would choose.

        Statistics come from :func:`trace_point_stats`: the base table's
        cached summary when every grouping key traces to one of its columns,
        a synthetic cardinality-only summary otherwise.
        """
        from repro.minidb.exec.statics import trace_point_stats

        if self.window is not None or not planner_delegated(self.workers):
            return None
        stats = trace_point_stats(self.child, self.key_exprs, len(self.key_exprs))
        if self.kind == "all":
            return plan_sgb_all(stats, self.eps)
        if SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS:
            return None
        return plan_sgb_any(stats, self.eps)

    def annotations(self) -> List[str]:
        if self.last_plan is not None:
            return [self.last_plan.describe()]
        if self.window is not None:
            slide = self.slide if self.slide is not None else self.window
            return [f"mode=streaming window={self.window} slide={slide}"]
        if not planner_delegated(self.workers):
            count = resolve_workers(self.workers)
            if self.kind == "any" and count > 1:
                return [f"mode=sharded workers={count} (forced by WORKERS)"]
            return [f"mode=serial workers={count} (forced by WORKERS)"]
        plan = self._static_plan()
        if plan is not None:
            return [plan.describe()]
        return []

    def estimated_rows(self) -> Optional[int]:
        plan = self.last_plan if self.last_plan is not None else self._static_plan()
        return plan.est_rows if plan is not None else None

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        clause = "DISTANCE-TO-ALL" if self.kind == "all" else "DISTANCE-TO-ANY"
        overlap = f" ON-OVERLAP {self.on_overlap}" if self.kind == "all" else ""
        workers = f" WORKERS {self.workers}" if self.workers is not None else ""
        window = ""
        if self.window is not None:
            window = f" WINDOW {self.window}"
            if self.slide is not None:
                window += f" SLIDE {self.slide}"
        keys = ", ".join(str(e) for e in self.key_exprs)
        return (
            f"SGBAggregate({clause} {self.metric} WITHIN {self.eps}{overlap}{workers}"
            f"{window}; keys=[{keys}]; strategy={self.strategy})"
        )
