"""The similarity group-by physical operator (SGB-All / SGB-Any).

This is the executor node the paper adds to PostgreSQL's hash-aggregate path:
incoming tuples are buffered, their grouping attributes are streamed into the
:class:`~repro.core.sgb_all.SGBAllGrouper` or
:class:`~repro.core.sgb_any.SGBAnyGrouper`, and once the input is exhausted
(ELIMINATE / FORM-NEW-GROUP can only finalise then) the buffered tuples are
replayed group-by-group through the aggregate accumulators.

Output rows are ``(key centroid values..., aggregate values...)``: the
representative value reported for each grouping attribute is the per-group
mean, since a similarity group spans a range of attribute values rather than
a single one.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.overlap import OverlapAction
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult
from repro.core.sgb_all import SGBAllGrouper, SGBAllStrategy
from repro.core.sgb_any import SGBAnyGrouper, SGBAnyStrategy
from repro.engine.planner import resolve_workers
from repro.engine.workers import sgb_any_sharded
from repro.exceptions import ExecutionError, InvalidParameterError
from repro.minidb.exec.aggregate import AggregateSpec, _AggregateEvaluator
from repro.minidb.exec.operators import PhysicalOperator, Row
from repro.minidb.expressions import Expression, compile_expression
from repro.minidb.schema import Column, Schema
from repro.minidb.types import DataType

__all__ = ["SGBAggregate"]


class SGBAggregate(PhysicalOperator):
    """Similarity group-by aggregation over multi-dimensional grouping attributes."""

    def __init__(
        self,
        child: PhysicalOperator,
        key_exprs: Sequence[Expression],
        key_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        kind: str,
        metric: str,
        eps: float,
        on_overlap: Optional[str] = None,
        strategy: str = "index",
        seed: int = 0,
        workers: "Optional[int | str]" = None,
        window: Optional[int] = None,
        slide: Optional[int] = None,
    ) -> None:
        if kind not in ("all", "any"):
            raise ExecutionError(f"unknown SGB kind {kind!r}")
        if len(key_exprs) < 1:
            raise ExecutionError("similarity group-by requires at least one grouping attribute")
        if window is not None and kind != "any":
            raise ExecutionError("WINDOW is only supported for DISTANCE-TO-ANY")
        self.child = child
        self.kind = kind
        self.metric = metric
        self.eps = float(eps)
        self.on_overlap = on_overlap
        self.strategy = strategy
        self.seed = seed
        self.workers = workers
        self.window = window
        self.slide = slide
        self.key_exprs = list(key_exprs)
        self.aggregates = list(aggregates)
        self._key_fns = [compile_expression(e, child.schema) for e in key_exprs]
        self._evaluator = _AggregateEvaluator(aggregates, child.schema)
        columns = (
            [Column("window_id", DataType.INT, None)] if window is not None else []
        )
        columns += [Column(name.lower(), DataType.FLOAT, None) for name in key_names]
        columns += [
            Column(spec.output_name.lower(), spec.output_type(), None)
            for spec in self.aggregates
        ]
        self.schema = Schema(columns)

    # ------------------------------------------------------------------

    def _make_grouper(self):
        if self.kind == "all":
            return SGBAllGrouper(
                eps=self.eps,
                metric=self.metric,
                on_overlap=self.on_overlap or OverlapAction.JOIN_ANY,
                strategy=SGBAllStrategy.parse(self.strategy),
                seed=self.seed,
            )
        strategy = (
            SGBAnyStrategy.ALL_PAIRS
            if SGBAllStrategy.parse(self.strategy) is SGBAllStrategy.ALL_PAIRS
            else SGBAnyStrategy.INDEX
        )
        return SGBAnyGrouper(eps=self.eps, metric=self.metric, strategy=strategy)

    def rows(self) -> Iterator[Row]:
        buffered: List[Row] = []
        # Buffer the child's tuples and collect the grouping attributes into
        # one column vector per key expression; the whole batch then flows
        # through the grouper's columnar pipeline in a single add_batch call
        # (the paper's operator likewise consumes the buffered input at once).
        columns: List[List[float]] = [[] for _ in self._key_fns]
        for row in self.child.rows():
            for column, fn in zip(columns, self._key_fns):
                column.append(self._key_value(fn, row))
            buffered.append(row)
        if self.window is not None:
            yield from self._windowed_rows(buffered, columns)
            return
        result = self._group(buffered, columns)

        dims = len(self.key_exprs)
        # The aggregate replay runs over column slices: every aggregate
        # argument is evaluated once per buffered row into a column vector,
        # and each group feeds its members' slice to the accumulators in one
        # bulk step instead of re-dispatching row by row.  With ELIMINATE
        # semantics some buffered rows belong to no group, and aggregate
        # arguments must never be evaluated on them (e.g. 1/v with v=0 on a
        # dropped row), so the eliminating case replays row-at-a-time.
        agg_columns = (
            self._evaluator.value_columns(buffered) if not result.eliminated else None
        )
        for members in result.groups:
            if not members:
                continue
            accumulators = self._evaluator.new_accumulators()
            if agg_columns is not None:
                self._evaluator.step_slice(accumulators, agg_columns, members)
            else:
                for idx in members:
                    self._evaluator.step(accumulators, buffered[idx])
            centroid = [
                sum(columns[d][idx] for idx in members) / len(members)
                for d in range(dims)
            ]
            yield tuple(centroid) + tuple(self._evaluator.finalize(accumulators))

    def _windowed_rows(
        self, buffered: List[Row], columns: List[List[float]]
    ) -> Iterator[Row]:
        """Stream the buffered input through the windowed SGB-Any subsystem.

        The child's tuples are replayed in arrival order as a count-based
        stream (``WINDOW n [SLIDE m]``); each closed window contributes one
        output row per group, tagged with a leading ``window_id`` column.
        Aggregates replay over the buffered rows of the window's live
        members — always through the column-slice fast path, since SGB-Any
        never eliminates rows.
        """
        if not buffered:
            return
        from repro.stream.session import StreamingSGB

        try:
            points = PointSet.from_columns(columns)
            session = StreamingSGB(
                self.eps,
                metric=self.metric,
                window=self.window,
                slide=self.slide,
                workers=self.workers,
            )
            windows = session.ingest(points)
            windows.extend(session.close())
        except InvalidParameterError as exc:
            raise ExecutionError(
                f"invalid similarity grouping attributes: {exc}"
            ) from exc
        dims = len(self.key_exprs)
        agg_columns = self._evaluator.value_columns(buffered)
        for window in windows:
            for local_members in window.result.groups:
                members = [window.indices[i] for i in local_members]
                accumulators = self._evaluator.new_accumulators()
                self._evaluator.step_slice(accumulators, agg_columns, members)
                centroid = [
                    sum(columns[d][idx] for idx in members) / len(members)
                    for d in range(dims)
                ]
                yield (
                    (window.window_id,)
                    + tuple(centroid)
                    + tuple(self._evaluator.finalize(accumulators))
                )

    def _group(self, buffered: List[Row], columns: List[List[float]]) -> GroupingResult:
        """Group the buffered batch, in parallel shards when workers allow.

        SGB-Any with ``WORKERS > 1`` (clause option, session default, or the
        ``SGB_WORKERS`` environment variable) goes through the sharded engine;
        SGB-All's arbitration is order-dependent, so it always runs serially.
        """
        if not buffered:
            return GroupingResult.empty()
        # Resolve outside the try below: a bad SGB_WORKERS value is a
        # configuration error and must not be re-labelled as a data error.
        # The strategy gate mirrors _make_grouper: everything except
        # ALL_PAIRS maps onto the INDEX pipeline, which is exactly what the
        # sharded engine runs per shard.
        parallel = (
            self.kind == "any"
            and SGBAllStrategy.parse(self.strategy) is not SGBAllStrategy.ALL_PAIRS
            and resolve_workers(self.workers) > 1
        )
        try:
            points = PointSet.from_columns(columns)
            if parallel:
                return sgb_any_sharded(
                    points, eps=self.eps, metric=self.metric, workers=self.workers
                )
            grouper = self._make_grouper()
            grouper.add_batch(points)
        except InvalidParameterError as exc:
            # Surface core-layer validation (e.g. NaN grouping values) as
            # an executor error so engine callers see a DatabaseError.
            raise ExecutionError(
                f"invalid similarity grouping attributes: {exc}"
            ) from exc
        return grouper.finalize()

    @staticmethod
    def _key_value(fn, row: Row) -> float:
        value = fn(row)
        if value is None:
            raise ExecutionError("similarity grouping attributes must not be NULL")
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"similarity grouping attribute value {value!r} is not numeric"
            ) from exc

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        clause = "DISTANCE-TO-ALL" if self.kind == "all" else "DISTANCE-TO-ANY"
        overlap = f" ON-OVERLAP {self.on_overlap}" if self.kind == "all" else ""
        workers = f" WORKERS {self.workers}" if self.workers is not None else ""
        window = ""
        if self.window is not None:
            window = f" WINDOW {self.window}"
            if self.slide is not None:
                window += f" SLIDE {self.slide}"
        keys = ", ".join(str(e) for e in self.key_exprs)
        return (
            f"SGBAggregate({clause} {self.metric} WITHIN {self.eps}{overlap}{workers}"
            f"{window}; keys=[{keys}]; strategy={self.strategy})"
        )
