"""The similarity-join physical operator (``SIMILARITY JOIN ... ON DISTANCE``).

Both inputs are materialised, their join attributes are evaluated once into
column vectors (exactly like the SGB executor buffers its grouping
attributes), and the matched index pairs come from the set-at-a-time
:func:`repro.join.sim_join` — the eps-grid join for ``WITHIN eps`` (sharded
across worker processes when WORKERS allows), the expanding index-probe join
for ``KNN k``.  Matched row pairs then stream into the surrounding Volcano
pipeline like any other join's output: left row columns followed by right
row columns.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.pointset import PointSet
from repro.exceptions import ExecutionError, InvalidParameterError
from repro.minidb.exec.operators import PhysicalOperator, Row
from repro.minidb.expressions import Expression, compile_expression

__all__ = ["SimilarityJoin"]


class SimilarityJoin(PhysicalOperator):
    """Inner join pairing rows whose join attributes are similar.

    ``eps`` set: every cross pair within the threshold (lexicographic pair
    order).  ``k`` set: each left row with its k nearest right rows
    (distance ties break towards the earlier right row).  Exactly one of the
    two is set — the planner enforces it.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_exprs: Sequence[Expression],
        right_exprs: Sequence[Expression],
        metric: str,
        eps: Optional[float] = None,
        k: Optional[int] = None,
        workers: "Optional[int | str]" = None,
    ) -> None:
        if len(left_exprs) != len(right_exprs) or not left_exprs:
            raise ExecutionError(
                "similarity join requires matching, non-empty coordinate lists"
            )
        if (eps is None) == (k is None):
            raise ExecutionError(
                "similarity join requires exactly one of eps (WITHIN) and k (KNN)"
            )
        self.left = left
        self.right = right
        self.left_exprs = list(left_exprs)
        self.right_exprs = list(right_exprs)
        self.metric = metric
        self.eps = float(eps) if eps is not None else None
        self.k = k
        self.workers = workers
        self.schema = left.schema.concat(right.schema)
        self._left_fns = [compile_expression(e, left.schema) for e in left_exprs]
        self._right_fns = [compile_expression(e, right.schema) for e in right_exprs]

    def rows(self) -> Iterator[Row]:
        pairs, left_rows, right_rows = self.materialize()
        for i, j in pairs:
            yield left_rows[i] + right_rows[j]

    def materialize(self) -> "tuple[list, list, list]":
        """Materialise both inputs and run the join once.

        Returns ``(pairs, left_rows, right_rows)`` without building the
        concatenated pair rows — the fused join→SGB route consumes the
        matched indices directly, so only :meth:`rows` ever pays for the
        pair-row construction.
        """
        from repro.join.api import sim_join

        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        if not left_rows or not right_rows:
            return [], left_rows, right_rows
        left_columns = [
            [self._coordinate(fn, row) for row in left_rows] for fn in self._left_fns
        ]
        right_columns = [
            [self._coordinate(fn, row) for row in right_rows] for fn in self._right_fns
        ]
        try:
            pairs = sim_join(
                PointSet.from_columns(left_columns),
                PointSet.from_columns(right_columns),
                eps=self.eps,
                k=self.k,
                metric=self.metric,
                workers=self.workers,
            )
        except InvalidParameterError as exc:
            # Surface core-layer validation (e.g. NaN join attributes) as an
            # executor error so engine callers see a DatabaseError.
            raise ExecutionError(f"invalid similarity join attributes: {exc}") from exc
        return pairs, left_rows, right_rows

    @staticmethod
    def _coordinate(fn, row: Row) -> float:
        value = fn(row)
        if value is None:
            raise ExecutionError("similarity join attributes must not be NULL")
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"similarity join attribute value {value!r} is not numeric"
            ) from exc

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        coords = ", ".join(
            str(e) for e in (*self.left_exprs, *self.right_exprs)
        )
        if self.eps is not None:
            clause = f"WITHIN {self.eps}"
        else:
            clause = f"KNN {self.k}"
        workers = f" WORKERS {self.workers}" if self.workers is not None else ""
        return (
            f"SimilarityJoin(DISTANCE({coords}) {clause} {self.metric}{workers})"
        )
