"""The similarity-join physical operator (``SIMILARITY JOIN ... ON DISTANCE``).

Both inputs are materialised, their join attributes are evaluated once into
column vectors (exactly like the SGB executor buffers its grouping
attributes), and the matched index pairs come from the set-at-a-time
:func:`repro.join.sim_join` — the eps-grid join for ``WITHIN eps`` (sharded
across worker processes when WORKERS allows), the expanding index-probe join
for ``KNN k``.  Matched row pairs then stream into the surrounding Volcano
pipeline like any other join's output: left row columns followed by right
row columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.core.pointset import PointSet
from repro.exceptions import ExecutionError, InvalidParameterError
from repro.minidb.exec.operators import PhysicalOperator, Row
from repro.minidb.expressions import Expression, compile_expression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cost import PhysicalPlan

__all__ = ["SimilarityJoin"]


class SimilarityJoin(PhysicalOperator):
    """Inner join pairing rows whose join attributes are similar.

    ``eps`` set: every cross pair within the threshold (lexicographic pair
    order).  ``k`` set: each left row with its k nearest right rows
    (distance ties break towards the earlier right row).  Exactly one of the
    two is set — the planner enforces it.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_exprs: Sequence[Expression],
        right_exprs: Sequence[Expression],
        metric: str,
        eps: Optional[float] = None,
        k: Optional[int] = None,
        workers: "Optional[int | str]" = None,
        cache: object = None,
    ) -> None:
        if len(left_exprs) != len(right_exprs) or not left_exprs:
            raise ExecutionError(
                "similarity join requires matching, non-empty coordinate lists"
            )
        if (eps is None) == (k is None):
            raise ExecutionError(
                "similarity join requires exactly one of eps (WITHIN) and k (KNN)"
            )
        self.left = left
        self.right = right
        self.left_exprs = list(left_exprs)
        self.right_exprs = list(right_exprs)
        self.metric = metric
        self.eps = float(eps) if eps is not None else None
        self.k = k
        self.workers = workers
        self.cache = cache
        self.schema = left.schema.concat(right.schema)
        self._left_fns = [compile_expression(e, left.schema) for e in left_exprs]
        self._right_fns = [compile_expression(e, right.schema) for e in right_exprs]
        #: The physical plan the cost planner chose at execution time (None
        #: until the join has run, and on the forced legacy WORKERS paths).
        self.last_plan: "Optional[PhysicalPlan]" = None

    def rows(self) -> Iterator[Row]:
        pairs, left_rows, right_rows = self.materialize()
        for i, j in pairs:
            yield left_rows[i] + right_rows[j]

    def materialize(self) -> "tuple[list, list, list]":
        """Materialise both inputs and run the join once.

        Returns ``(pairs, left_rows, right_rows)`` without building the
        concatenated pair rows — the fused join→SGB route consumes the
        matched indices directly, so only :meth:`rows` ever pays for the
        pair-row construction.
        """
        from repro.join.api import sim_join

        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        if not left_rows or not right_rows:
            return [], left_rows, right_rows
        left_columns = [
            [self._coordinate(fn, row) for row in left_rows] for fn in self._left_fns
        ]
        right_columns = [
            [self._coordinate(fn, row) for row in right_rows] for fn in self._right_fns
        ]
        cache, cache_key = self._cache_lookup(left_columns, right_columns)
        if cache is not None:
            hit = cache.get_pairs(cache_key)
            if hit is not None:
                self.last_plan = None
                return hit, left_rows, right_rows
        try:
            pairs = sim_join(
                PointSet.from_columns(left_columns),
                PointSet.from_columns(right_columns),
                eps=self.eps,
                k=self.k,
                metric=self.metric,
                workers=self.workers,
            )
        except InvalidParameterError as exc:
            # Surface core-layer validation (e.g. NaN join attributes) as an
            # executor error so engine callers see a DatabaseError.
            raise ExecutionError(f"invalid similarity join attributes: {exc}") from exc
        self.last_plan = getattr(pairs, "plan", None)
        if cache is not None:
            cache.put_pairs(cache_key, pairs)
        return pairs, left_rows, right_rows

    def _cache_lookup(self, left_columns, right_columns):
        """Resolve the result cache and this join's pair-list key.

        Each side's fingerprint prefers its base table's version-memoised
        digest (strict Rename-only trace) and otherwise hashes the buffered
        coordinate columns; either way the digest is content-addressed, so
        SQL joins and direct :func:`repro.join.sim_join` calls over the same
        relations share entries.
        """
        from repro.storage.cache import join_key, resolve_cache

        cache = resolve_cache(self.cache)
        if cache is None:
            return None, None
        from repro.core.fingerprint import fingerprint_columns
        from repro.core.pointset import HAVE_NUMPY
        from repro.minidb.exec.statics import trace_base_fingerprint

        left_fp = trace_base_fingerprint(self.left, self.left_exprs)
        if left_fp is None:
            left_fp = fingerprint_columns(left_columns)
        right_fp = trace_base_fingerprint(self.right, self.right_exprs)
        if right_fp is None:
            right_fp = fingerprint_columns(right_columns)
        backend = "numpy" if HAVE_NUMPY else "python"
        return cache, join_key(
            left_fp, right_fp, self.eps, self.k, self.metric, backend
        )

    @staticmethod
    def _coordinate(fn, row: Row) -> float:
        value = fn(row)
        if value is None:
            raise ExecutionError("similarity join attributes must not be NULL")
        try:
            return float(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"similarity join attribute value {value!r} is not numeric"
            ) from exc

    def _static_plan(self) -> "Optional[PhysicalPlan]":
        """The plan EXPLAIN shows, mirroring what execution would choose."""
        from repro.engine.cost import plan_eps_join, plan_knn_join, planner_delegated
        from repro.minidb.exec.statics import trace_point_stats

        if not planner_delegated(self.workers):
            return None
        dims = len(self.left_exprs)
        left_stats = trace_point_stats(self.left, self.left_exprs, dims)
        right_stats = trace_point_stats(self.right, self.right_exprs, dims)
        if self.eps is not None:
            return plan_eps_join(left_stats, right_stats, self.eps)
        return plan_knn_join(left_stats, right_stats, int(self.k or 1))

    def annotations(self) -> List[str]:
        if self.last_plan is not None:
            return [self.last_plan.describe()]
        from repro.engine.cost import planner_delegated
        from repro.engine.planner import resolve_workers

        if not planner_delegated(self.workers):
            count = resolve_workers(self.workers)
            mode = "sharded" if count > 1 else "serial"
            return [f"mode={mode} workers={count} (forced by WORKERS)"]
        plan = self._static_plan()
        return [plan.describe()] if plan is not None else []

    def estimated_rows(self) -> Optional[int]:
        plan = self.last_plan if self.last_plan is not None else self._static_plan()
        return plan.est_rows if plan is not None else None

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        coords = ", ".join(
            str(e) for e in (*self.left_exprs, *self.right_exprs)
        )
        if self.eps is not None:
            clause = f"WITHIN {self.eps}"
        else:
            clause = f"KNN {self.k}"
        workers = f" WORKERS {self.workers}" if self.workers is not None else ""
        return (
            f"SimilarityJoin(DISTANCE({coords}) {clause} {self.metric}{workers})"
        )
