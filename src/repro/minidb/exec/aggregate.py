"""Hash aggregation (the standard GROUP BY path) and the shared aggregate spec."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import PlanningError
from repro.minidb.expressions import Expression, compile_expression
from repro.minidb.functions import MULTI_ARG_AGGREGATES, create_aggregate
from repro.minidb.exec.operators import PhysicalOperator, Row, _hashable
from repro.minidb.schema import Column, Schema
from repro.minidb.types import DataType

__all__ = ["AggregateSpec", "HashAggregate"]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: function name, argument expressions, output name."""

    func: str
    args: Tuple[Expression, ...]
    star: bool
    output_name: str

    def output_type(self) -> DataType:
        """Best-effort output type used for the operator schema."""
        key = self.func.lower()
        if key == "count":
            return DataType.INT
        if key in ("array_agg", "list_id", "st_polygon"):
            return DataType.TEXT
        return DataType.FLOAT


class _AggregateEvaluator:
    """Compiles the argument expressions of a set of aggregate specs."""

    def __init__(self, specs: Sequence[AggregateSpec], input_schema: Schema) -> None:
        self.specs = list(specs)
        self._arg_fns: List[List[Any]] = []
        for spec in self.specs:
            if spec.star:
                self._arg_fns.append([])
            else:
                self._arg_fns.append(
                    [compile_expression(arg, input_schema) for arg in spec.args]
                )

    def new_accumulators(self) -> List[Any]:
        """Return fresh accumulator instances, one per spec."""
        return [create_aggregate(spec.func, spec.star) for spec in self.specs]

    def step(self, accumulators: List[Any], row: Row) -> None:
        """Feed one input row into every accumulator."""
        for spec, fns, acc in zip(self.specs, self._arg_fns, accumulators):
            if spec.star:
                acc.step(1)
                continue
            values = [fn(row) for fn in fns]
            if spec.func.lower() in MULTI_ARG_AGGREGATES:
                acc.step(tuple(values))
            elif len(values) == 1:
                acc.step(values[0])
            elif not values:
                acc.step(1)
            else:
                raise PlanningError(
                    f"aggregate {spec.func!r} takes one argument, got {len(values)}"
                )

    @staticmethod
    def finalize(accumulators: List[Any]) -> List[Any]:
        """Return the final value of every accumulator."""
        return [acc.final() for acc in accumulators]

    # -- columnar replay (SGB group materialisation) ------------------------

    def value_columns(self, rows: Sequence[Row]) -> List[Optional[List[Any]]]:
        """Evaluate every spec's per-row step value once, as column vectors.

        ``None`` marks specs that do not consume a value (``count(*)`` and
        zero-argument aggregates, which step a constant per row).  Feeding
        group slices of these columns to :meth:`step_slice` replays the same
        values :meth:`step` would pass — in the same order — without
        re-dispatching the compiled argument expressions per group member.
        """
        columns: List[Optional[List[Any]]] = []
        for spec, fns in zip(self.specs, self._arg_fns):
            if spec.star or not fns:
                columns.append(None)
            elif spec.func.lower() in MULTI_ARG_AGGREGATES:
                columns.append([tuple(fn(row) for fn in fns) for row in rows])
            elif len(fns) == 1:
                fn = fns[0]
                columns.append([fn(row) for row in rows])
            else:
                raise PlanningError(
                    f"aggregate {spec.func!r} takes one argument, got {len(fns)}"
                )
        return columns

    def step_slice(
        self,
        accumulators: List[Any],
        columns: Sequence[Optional[List[Any]]],
        indices: Sequence[int],
    ) -> None:
        """Feed the rows selected by ``indices`` into every accumulator in bulk."""
        for col, acc in zip(columns, accumulators):
            if col is None:
                acc.step_count(len(indices))
            else:
                acc.step_many([col[i] for i in indices])


class HashAggregate(PhysicalOperator):
    """Hash-based GROUP BY aggregation.

    Output rows are ``(group key values..., aggregate values...)``.  With no
    group keys the operator performs global aggregation and always emits
    exactly one row (matching SQL semantics for aggregates over empty input).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_exprs: Sequence[Expression],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        group_types: Optional[Sequence[DataType]] = None,
    ) -> None:
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self._group_fns = [compile_expression(e, child.schema) for e in group_exprs]
        self._evaluator = _AggregateEvaluator(aggregates, child.schema)
        key_types = list(group_types) if group_types else [DataType.FLOAT] * len(group_exprs)
        columns = [
            Column(name.lower(), dtype, None)
            for name, dtype in zip(group_names, key_types)
        ]
        columns += [Column(spec.output_name.lower(), spec.output_type(), None) for spec in aggregates]
        self.schema = Schema(columns)

    def rows(self) -> Iterator[Row]:
        groups: Dict[Tuple[Any, ...], Tuple[Row, List[Any]]] = {}
        global_agg = not self.group_exprs
        for row in self.child.rows():
            key_values = tuple(fn(row) for fn in self._group_fns)
            key = _hashable(key_values)
            entry = groups.get(key)
            if entry is None:
                entry = (key_values, self._evaluator.new_accumulators())
                groups[key] = entry
            self._evaluator.step(entry[1], row)
        if global_agg and not groups:
            groups[()] = ((), self._evaluator.new_accumulators())
        for key_values, accumulators in groups.values():
            yield tuple(key_values) + tuple(self._evaluator.finalize(accumulators))

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(str(e) for e in self.group_exprs) or "<global>"
        aggs = ", ".join(f"{s.func}" for s in self.aggregates)
        return f"HashAggregate(keys=[{keys}], aggs=[{aggs}])"
