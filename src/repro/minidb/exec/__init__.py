"""Volcano-style execution operators for the in-memory engine."""

from repro.minidb.exec.aggregate import AggregateSpec, HashAggregate
from repro.minidb.exec.join import SimilarityJoin
from repro.minidb.exec.operators import (
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Rename,
    SeqScan,
    Sort,
    ValuesScan,
)
from repro.minidb.exec.sgb import SGBAggregate

__all__ = [
    "PhysicalOperator",
    "SeqScan",
    "ValuesScan",
    "Filter",
    "Project",
    "Rename",
    "NestedLoopJoin",
    "HashJoin",
    "SimilarityJoin",
    "Sort",
    "Limit",
    "Distinct",
    "AggregateSpec",
    "HashAggregate",
    "SGBAggregate",
]
