"""Static (pre-execution) statistics tracing for EXPLAIN.

``EXPLAIN`` must show the cost planner's mode choice without running the
query, so the similarity operators trace their key/coordinate expressions
down the operator tree to a base table and read that table's cached
:meth:`~repro.minidb.table.Table.point_stats` summary.  Only
column-preserving wrappers are walked through — ``Filter`` (pass-through
schema) and ``Rename`` (positional re-qualification).  Anything else, or a
key that is not a bare column reference, degrades to a uniform synthetic
summary at the subtree's estimated cardinality; the planner then still has
a count to reason from, just no skew information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.exceptions import CatalogError
from repro.minidb.expressions import ColumnRef, Expression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.stats import PointStats
    from repro.minidb.exec.operators import PhysicalOperator

__all__ = [
    "estimated_subtree_rows",
    "trace_base_fingerprint",
    "trace_point_stats",
]


def estimated_subtree_rows(node: "PhysicalOperator") -> Optional[int]:
    """First cardinality estimate found walking down the left spine."""
    current: "Optional[PhysicalOperator]" = node
    while current is not None:
        estimate = current.estimated_rows()
        if estimate is not None:
            return estimate
        children = current.children()
        current = children[0] if children else None
    return None


def trace_base_fingerprint(
    node: "PhysicalOperator", exprs: Sequence[Expression]
) -> Optional[str]:
    """Base-table content fingerprint for ``exprs`` over ``node``, if exact.

    Unlike :func:`trace_point_stats` this trace is *strict*: it walks through
    ``Rename`` only (a positional re-qualification never changes the rows)
    and refuses ``Filter`` — a filtered scan produces a different point batch
    than the base table, so reusing the table's memoised digest there would
    poison the result cache.  Returns ``None`` whenever the subtree is not
    provably identical to scanning base-table columns; callers then hash the
    column vectors they actually buffered.
    """
    from repro.minidb.exec.operators import Rename, SeqScan

    current = node
    refs: List[Expression] = list(exprs)
    while True:
        if not all(isinstance(e, ColumnRef) for e in refs):
            return None
        if isinstance(current, SeqScan):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return None
            try:
                return current.table.point_fingerprint(positions)
            except Exception:  # noqa: BLE001 - non-numeric column: hash the buffer
                return None
        if isinstance(current, Rename):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return None
            child_schema = current.child.schema
            refs = [
                ColumnRef(
                    child_schema.columns[p].name,
                    child_schema.columns[p].qualifier,
                )
                for p in positions
            ]
            current = current.child
            continue
        return None


def trace_point_stats(
    node: "PhysicalOperator", exprs: Sequence[Expression], dims: int
) -> "PointStats":
    """Statistics for ``exprs`` evaluated over ``node``, without executing it."""
    from repro.engine.stats import synthetic_stats
    from repro.minidb.exec.operators import Filter, Rename, SeqScan

    def fallback() -> "PointStats":
        return synthetic_stats(estimated_subtree_rows(node) or 0, dims=dims)

    current = node
    refs: List[Expression] = list(exprs)
    while True:
        if not all(isinstance(e, ColumnRef) for e in refs):
            return fallback()
        if isinstance(current, SeqScan):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return fallback()
            return current.table.point_stats(positions)
        if isinstance(current, Filter):
            current = current.child
            continue
        if isinstance(current, Rename):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return fallback()
            child_schema = current.child.schema
            refs = [
                ColumnRef(
                    child_schema.columns[p].name,
                    child_schema.columns[p].qualifier,
                )
                for p in positions
            ]
            current = current.child
            continue
        return fallback()
