"""Static (pre-execution) statistics for EXPLAIN and the rewrite layer.

``EXPLAIN`` must show the cost planner's mode choice without running the
query, so the similarity operators trace their key/coordinate expressions
down the operator tree to a base table and read that table's cached
:meth:`~repro.minidb.table.Table.point_stats` summary.  The trace *derives*
statistics through the relational operators in between:

* ``Rename`` / ``TagRows`` / ``RestoreOrder`` — positional re-qualification,
  the child's summary passes through untouched;
* ``Project`` — bare column references map back onto child columns;
* ``Filter`` — range predicates on a traced column clip its bounding box and
  histogram; every other conjunct scales the count by its estimated
  selectivity (histogram mass for comparisons against constants, defaults
  otherwise);
* joins — the traced columns resolve to one side, whose summary is rescaled
  to the join's estimated output cardinality (histogram-overlap selectivity
  for equi and eps joins).

Anything else, or a key that is not a bare column reference, degrades to a
uniform synthetic summary at the subtree's estimated cardinality; the
planner then still has a count to reason from, just no skew information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.exceptions import CatalogError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.stats import PointStats
    from repro.minidb.exec.operators import PhysicalOperator

__all__ = [
    "estimated_subtree_rows",
    "estimate_filter_rows",
    "estimate_join_rows",
    "equi_join_selectivity",
    "predicate_selectivity",
    "trace_base_fingerprint",
    "trace_point_stats",
    "trace_relation_stats",
]

#: Selectivity assumed for predicates the histograms cannot price
#: (function calls, OR trees over non-constant operands, ...).
_DEFAULT_SELECTIVITY = 0.25

#: Selectivity assumed for an equality against a constant when the column's
#: histogram is unavailable.
_DEFAULT_EQ_SELECTIVITY = 0.1


def estimated_subtree_rows(node: "PhysicalOperator") -> Optional[int]:
    """First cardinality estimate found walking down the left spine."""
    current: "Optional[PhysicalOperator]" = node
    while current is not None:
        estimate = current.estimated_rows()
        if estimate is not None:
            return estimate
        children = current.children()
        current = children[0] if children else None
    return None


def trace_base_fingerprint(
    node: "PhysicalOperator", exprs: Sequence[Expression]
) -> Optional[str]:
    """Base-table content fingerprint for ``exprs`` over ``node``, if exact.

    Unlike :func:`trace_point_stats` this trace is *strict*: it walks through
    ``Rename`` only (a positional re-qualification never changes the rows)
    and refuses ``Filter`` — a filtered scan produces a different point batch
    than the base table, so reusing the table's memoised digest there would
    poison the result cache.  Returns ``None`` whenever the subtree is not
    provably identical to scanning base-table columns; callers then hash the
    column vectors they actually buffered.
    """
    from repro.minidb.exec.operators import Rename, SeqScan

    current = node
    refs: List[Expression] = list(exprs)
    while True:
        if not all(isinstance(e, ColumnRef) for e in refs):
            return None
        if isinstance(current, SeqScan):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return None
            try:
                return current.table.point_fingerprint(positions)
            except Exception:  # noqa: BLE001 - non-numeric column: hash the buffer
                return None
        if isinstance(current, Rename):
            try:
                positions = [
                    current.schema.index_of(e.name, e.qualifier) for e in refs
                ]
            except CatalogError:
                return None
            child_schema = current.child.schema
            refs = [
                ColumnRef(
                    child_schema.columns[p].name,
                    child_schema.columns[p].qualifier,
                )
                for p in positions
            ]
            current = current.child
            continue
        return None


# ---------------------------------------------------------------------------
# predicate analysis
# ---------------------------------------------------------------------------


def _constant_number(expr: Expression) -> Optional[float]:
    """The numeric value of a constant operand, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        if isinstance(expr.value, bool):
            return None
        return float(expr.value)
    return None


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _range_bound(
    conjunct: Expression,
) -> Optional[Tuple[ColumnRef, Optional[float], Optional[float]]]:
    """Decompose ``col <op> const`` / ``col BETWEEN a AND b`` into an interval.

    Returns ``(column, low, high)`` with ``None`` for an open side, or
    ``None`` when the conjunct is not a constant range predicate on a bare
    column.  Strict comparisons are priced like their inclusive forms — at
    histogram-bin granularity the boundary mass is noise.
    """
    if isinstance(conjunct, Between) and not conjunct.negated:
        low = _constant_number(conjunct.low)
        high = _constant_number(conjunct.high)
        if isinstance(conjunct.expr, ColumnRef) and low is not None and high is not None:
            return conjunct.expr, low, high
        return None
    if not isinstance(conjunct, BinaryOp):
        return None
    op = conjunct.op
    column, value = conjunct.left, _constant_number(conjunct.right)
    if value is None:
        value = _constant_number(conjunct.left)
        column = conjunct.right
        op = _FLIPPED.get(op, op if op == "=" else None)
    if value is None or not isinstance(column, ColumnRef) or op is None:
        return None
    if op in ("<", "<="):
        return column, None, value
    if op in (">", ">="):
        return column, value, None
    if op == "=":
        return column, value, value
    return None


def _column_stats(
    node: "PhysicalOperator", ref: ColumnRef
) -> "Optional[PointStats]":
    """One-dimensional derived statistics of a single column, if traceable."""
    return _derive_stats(node, [ref])


def predicate_selectivity(
    node: "PhysicalOperator", predicate: Expression
) -> float:
    """Estimated fraction of ``node``'s rows surviving ``predicate``.

    Conjuncts multiply (independence assumption).  Range and equality
    comparisons against constants read the referenced column's derived
    histogram; everything else falls back to fixed defaults.
    """
    from repro.minidb.plan.optimizer import split_conjuncts

    selectivity = 1.0
    for conjunct in split_conjuncts(predicate):
        selectivity *= _conjunct_selectivity(node, conjunct)
    return max(0.0, min(1.0, selectivity))


def _conjunct_selectivity(node: "PhysicalOperator", conjunct: Expression) -> float:
    bound = _range_bound(conjunct)
    if bound is None:
        if isinstance(conjunct, BinaryOp) and conjunct.op.upper() == "OR":
            return min(
                1.0,
                _conjunct_selectivity(node, conjunct.left)
                + _conjunct_selectivity(node, conjunct.right),
            )
        return _DEFAULT_SELECTIVITY
    column, low, high = bound
    stats = _column_stats(node, column)
    if stats is None or stats.count == 0:
        if low is not None and low == high:
            return _DEFAULT_EQ_SELECTIVITY
        return _DEFAULT_SELECTIVITY
    if low is not None and low == high:
        # Equality: the mass of the covering histogram bin bounds the match
        # fraction from above; never report harder than one-row selectivity.
        width = stats.bin_width(0)
        half = width / 2.0 if width > 0.0 else 0.0
        fraction = stats.range_fraction(0, low - half, high + half)
        return max(1.0 / max(1, stats.count), min(fraction, 1.0))
    return stats.range_fraction(0, low, high)


def equi_join_selectivity(
    left: "PhysicalOperator",
    right: "PhysicalOperator",
    left_keys: Sequence[Expression],
    right_keys: Sequence[Expression],
) -> float:
    """Estimated fraction of the cross product an equi-join keeps.

    Prices each key pair by the histogram-overlap selectivity at ``eps=0``
    (:meth:`~repro.engine.stats.PointStats.cross_pair_fraction` — the bins
    that could hold equal values), taking the most selective pair; key pairs
    without traceable histograms fall back to the equality default.
    """
    best = _DEFAULT_EQ_SELECTIVITY
    priced = False
    for left_key, right_key in zip(left_keys, right_keys):
        if not isinstance(left_key, ColumnRef) or not isinstance(right_key, ColumnRef):
            continue
        left_stats = _column_stats(left, left_key)
        right_stats = _column_stats(right, right_key)
        if left_stats is None or right_stats is None:
            continue
        if left_stats.count == 0 or right_stats.count == 0:
            return 0.0
        fraction = left_stats.cross_pair_fraction(right_stats, 0, 0.0)
        best = fraction if not priced else min(best, fraction)
        priced = True
    return max(0.0, min(1.0, best))


# ---------------------------------------------------------------------------
# cardinality estimates (the operators' estimated_rows hooks call these)
# ---------------------------------------------------------------------------


def estimate_filter_rows(node: "PhysicalOperator") -> Optional[int]:
    """Selectivity-scaled cardinality of a ``Filter`` node."""
    child_rows = estimated_subtree_rows(node.children()[0])
    if child_rows is None:
        return None
    selectivity = predicate_selectivity(node.children()[0], node.predicate)
    return int(round(child_rows * selectivity))


def estimate_join_rows(node: "PhysicalOperator") -> Optional[int]:
    """Estimated output cardinality of a Hash/NestedLoop/Similarity join."""
    from repro.minidb.exec.join import SimilarityJoin
    from repro.minidb.exec.operators import HashJoin, NestedLoopJoin

    left_rows = estimated_subtree_rows(node.left)
    right_rows = estimated_subtree_rows(node.right)
    if left_rows is None or right_rows is None:
        return None
    if isinstance(node, SimilarityJoin):
        if node.k is not None:
            return left_rows * min(int(node.k), right_rows)
        dims = len(node.left_exprs)
        left_stats = trace_point_stats(node.left, node.left_exprs, dims)
        right_stats = trace_point_stats(node.right, node.right_exprs, dims)
        return int(round(left_stats.estimated_join_pairs(right_stats, node.eps)))
    if isinstance(node, HashJoin):
        selectivity = equi_join_selectivity(
            node.left, node.right, node.left_keys, node.right_keys
        )
        if node.residual is not None:
            selectivity *= predicate_selectivity(node, node.residual)
        return int(round(left_rows * right_rows * selectivity))
    if isinstance(node, NestedLoopJoin):
        if node.condition is None:
            return left_rows * right_rows
        selectivity = 1.0
        from repro.minidb.plan.optimizer import split_conjuncts

        for conjunct in split_conjuncts(node.condition):
            equi = _cross_schema_equi(node, conjunct)
            if equi is not None:
                selectivity *= equi_join_selectivity(
                    node.left, node.right, [equi[0]], [equi[1]]
                )
            else:
                selectivity *= _DEFAULT_SELECTIVITY
        return int(round(left_rows * right_rows * selectivity))
    return None


def _cross_schema_equi(
    node: "PhysicalOperator", conjunct: Expression
) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """``left_col = right_col`` across the two sides of a join, if so shaped."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    a, b = conjunct.left, conjunct.right
    if not (isinstance(a, ColumnRef) and isinstance(b, ColumnRef)):
        return None
    left_schema, right_schema = node.left.schema, node.right.schema
    if left_schema.has_column(a.name, a.qualifier) and right_schema.has_column(
        b.name, b.qualifier
    ):
        return a, b
    if left_schema.has_column(b.name, b.qualifier) and right_schema.has_column(
        a.name, a.qualifier
    ):
        return b, a
    return None


# ---------------------------------------------------------------------------
# derived point statistics
# ---------------------------------------------------------------------------


def trace_point_stats(
    node: "PhysicalOperator", exprs: Sequence[Expression], dims: int
) -> "PointStats":
    """Statistics for ``exprs`` evaluated over ``node``, without executing it."""
    from repro.engine.stats import synthetic_stats

    derived = _derive_stats(node, list(exprs))
    if derived is not None:
        return derived
    return synthetic_stats(estimated_subtree_rows(node) or 0, dims=dims)


def trace_relation_stats(
    node: "PhysicalOperator", exprs: Sequence[Expression]
) -> "Optional[PointStats]":
    """Like :func:`trace_point_stats` but ``None`` instead of synthetic.

    The rewrite layer uses this to tell *propagated* statistics apart from
    the synthetic fallback — a rule should only trust histogram shape when
    it came from real data.
    """
    return _derive_stats(node, list(exprs))


def _remap_positionally(
    schema, child_schema, refs: List[Expression]
) -> Optional[List[Expression]]:
    """Re-express ``refs`` against a positionally identical child schema."""
    try:
        positions = [schema.index_of(e.name, e.qualifier) for e in refs]
    except CatalogError:
        return None
    return [
        ColumnRef(
            child_schema.columns[p].name,
            child_schema.columns[p].qualifier,
        )
        for p in positions
    ]


def _derive_stats(
    node: "PhysicalOperator", refs: List[Expression]
) -> "Optional[PointStats]":
    """Walk the operator tree deriving a summary for the referenced columns."""
    from repro.minidb.exec.join import SimilarityJoin
    from repro.minidb.exec.operators import (
        Distinct,
        Filter,
        HashJoin,
        Limit,
        NestedLoopJoin,
        Project,
        Rename,
        RestoreOrder,
        SeqScan,
        Sort,
        TagRows,
    )

    if not all(isinstance(e, ColumnRef) for e in refs):
        return None
    if isinstance(node, SeqScan):
        try:
            positions = [node.schema.index_of(e.name, e.qualifier) for e in refs]
        except CatalogError:
            return None
        return node.table.point_stats(positions)
    if isinstance(node, Rename):
        remapped = _remap_positionally(node.schema, node.child.schema, refs)
        if remapped is None:
            return None
        return _derive_stats(node.child, remapped)
    if isinstance(node, RestoreOrder):
        try:
            positions = [node.schema.index_of(e.name, e.qualifier) for e in refs]
        except CatalogError:
            return None
        child_schema = node.child.schema
        remapped = [
            ColumnRef(
                child_schema.columns[node.output_positions[p]].name,
                child_schema.columns[node.output_positions[p]].qualifier,
            )
            for p in positions
        ]
        return _derive_stats(node.child, remapped)
    if isinstance(node, TagRows):
        # The rid column is appended, so existing references keep their
        # child positions; a reference to the rid itself is untraceable.
        try:
            positions = [node.schema.index_of(e.name, e.qualifier) for e in refs]
        except CatalogError:
            return None
        if any(p >= len(node.child.schema) for p in positions):
            return None
        return _derive_stats(node.child, refs)
    if isinstance(node, Project):
        try:
            positions = [node.schema.index_of(e.name, e.qualifier) for e in refs]
        except CatalogError:
            return None
        child_exprs = [node.expressions[p] for p in positions]
        if not all(isinstance(e, ColumnRef) for e in child_exprs):
            return None
        return _derive_stats(node.child, child_exprs)
    if isinstance(node, Filter):
        stats = _derive_stats(node.child, refs)
        if stats is None:
            return None
        return _apply_predicate(node, stats, refs)
    if isinstance(node, (Sort, Distinct)):
        return _derive_stats(node.child, refs)
    if isinstance(node, Limit):
        stats = _derive_stats(node.child, refs)
        if stats is None:
            return None
        return stats.scaled(min(stats.count, node.limit))
    if isinstance(node, (HashJoin, NestedLoopJoin, SimilarityJoin)):
        return _derive_join_stats(node, refs)
    return None


def _apply_predicate(
    node: "PhysicalOperator", stats: "PointStats", refs: List[Expression]
) -> "PointStats":
    """Clip/scale a derived summary by a Filter's predicate.

    Range conjuncts on a traced column clip that axis's bounding box and
    histogram; every other conjunct scales the whole summary by its
    estimated selectivity.
    """
    from repro.minidb.plan.optimizer import split_conjuncts

    schema = node.child.schema
    try:
        traced_positions = [schema.index_of(e.name, e.qualifier) for e in refs]
    except CatalogError:
        traced_positions = []
    for conjunct in split_conjuncts(node.predicate):
        bound = _range_bound(conjunct)
        axis: Optional[int] = None
        if bound is not None and traced_positions:
            column, low, high = bound
            try:
                position = schema.index_of(column.name, column.qualifier)
            except CatalogError:
                position = None
            if position in traced_positions:
                axis = traced_positions.index(position)
        if axis is not None and bound is not None:
            stats = stats.clipped(axis, bound[1], bound[2])
        else:
            selectivity = _conjunct_selectivity(node.child, conjunct)
            stats = stats.scaled(stats.count * selectivity)
        if stats.count == 0:
            break
    return stats


def _derive_join_stats(
    node: "PhysicalOperator", refs: List[Expression]
) -> "Optional[PointStats]":
    """Derive column statistics through a join: resolve the side, rescale."""
    n_left = len(node.left.schema)
    try:
        positions = [node.schema.index_of(e.name, e.qualifier) for e in refs]
    except CatalogError:
        return None
    if all(p < n_left for p in positions):
        side = node.left
        side_positions = positions
    elif all(p >= n_left for p in positions):
        side = node.right
        side_positions = [p - n_left for p in positions]
    else:
        return None
    side_schema = side.schema
    side_refs: List[Expression] = [
        ColumnRef(
            side_schema.columns[p].name,
            side_schema.columns[p].qualifier,
        )
        for p in side_positions
    ]
    stats = _derive_stats(side, side_refs)
    if stats is None:
        return None
    est_rows = estimate_join_rows(node)
    if est_rows is None:
        return stats
    return stats.scaled(est_rows)
