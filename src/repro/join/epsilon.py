"""Epsilon similarity join: every cross-relation pair within ``eps``.

The eps-join is the cross-relation companion of the SGB-Any edge discovery:
where the grouper links points of *one* relation that lie within ``eps`` of
each other, :func:`eps_join` pairs the tuples of *two* relations.  The kernel
is :meth:`PointSet.cross_within` — the same uniform eps-grid sweep (blocked
brute force past the grid's dimensionality ceiling) and the same ``within_eps``
predicate kernel behind every other eps decision in the library — so the pair
set agrees bit-for-bit with the scalar predicate on both backends and all
supported metrics.

Results are returned in canonical order (lexicographically ascending
``(left_index, right_index)``), which is exactly the order a brute-force
nested loop produces; :func:`eps_join_allpairs` is that nested loop, kept as
the measurement baseline for the ``join_vs_allpairs`` benchmark (blocked and
vectorised under NumPy, but with no grid pruning).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric, within_eps
from repro.core.pointset import HAVE_NUMPY, NumpyPointSet, PointSet
from repro.core.predicates import SimilarityPredicate
from repro.exceptions import DimensionalityError

try:  # optional; the scalar nested loop below covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend
    _np = None

__all__ = ["JoinResult", "eps_join", "eps_join_allpairs"]

JoinPairs = List[Tuple[int, int]]


class JoinResult(List[Tuple[int, int]]):
    """A join's pair list, annotated with the planner's choice.

    Behaves exactly like the plain ``list`` the joins have always returned
    (equality, ordering, slicing are inherited), plus a ``plan`` attribute
    carrying the :class:`~repro.engine.cost.PhysicalPlan` when the caller
    delegated the mode choice (``workers="auto"`` / no knob); ``None`` for
    forced modes.  Purely informational — plans never change pairs.
    """

    plan = None

#: Row-block size of the vectorised all-pairs baseline (bounds the size of
#: the ``block x n_right`` distance temporaries).
_ALLPAIRS_BLOCK = 256


def _normalise_sides(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    backend: Optional[str],
) -> Tuple[PointSet, PointSet]:
    """Validate both join sides into point sets and check their dimensions."""
    left_ps = PointSet.from_any(left, backend=backend)
    right_ps = PointSet.from_any(right, backend=backend)
    if len(left_ps) and len(right_ps) and left_ps.dims != right_ps.dims:
        raise DimensionalityError(
            f"similarity join dimensionality mismatch: left has {left_ps.dims} "
            f"dimensions, right has {right_ps.dims}"
        )
    return left_ps, right_ps


def eps_join(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
) -> JoinPairs:
    """Return every ``(i, j)`` with ``left[i]`` within ``eps`` of ``right[j]``.

    Pairs are sorted lexicographically, the order a brute-force nested loop
    yields, so the result is canonical regardless of the execution path.

    ``workers`` routes the join through the sharded engine partitioner
    (:func:`repro.join.sharded.eps_join_sharded`): ``N > 1`` forces up to N
    worker processes, while ``0`` / ``"auto"`` — or ``None`` with no numeric
    ``SGB_WORKERS`` in the environment — delegates the all-pairs vs grid vs
    sharded choice to the cost planner (:mod:`repro.engine.cost`), whose
    selectivity estimate comes from the two sides' histogram overlap; the
    chosen plan is recorded on the returned :class:`JoinResult`.  Every
    path's pair list is bit-identical.
    """
    metric = resolve_metric(metric)
    eps = PointSet._check_eps(eps)
    left_ps, right_ps = _normalise_sides(left, right, backend)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    from repro.engine.cost import planner_delegated
    from repro.engine.planner import resolve_workers

    if planner_delegated(workers):
        from repro.engine.cost import plan_eps_join
        from repro.engine.stats import collect_stats

        plan = plan_eps_join(collect_stats(left_ps), collect_stats(right_ps), eps)
        if plan.mode == "sharded":
            from repro.join.sharded import eps_join_sharded

            pairs = eps_join_sharded(
                left_ps,
                right_ps,
                eps,
                metric=metric,
                workers=plan.workers,
                shards=plan.shards,
            )
        elif plan.mode == "allpairs":
            pairs = eps_join_allpairs(left_ps, right_ps, eps, metric=metric)
        else:
            pairs = sorted(left_ps.cross_within(right_ps, eps, metric))
        result = JoinResult(pairs)
        result.plan = plan
        return result
    if resolve_workers(workers) > 1:
        from repro.join.sharded import eps_join_sharded

        return eps_join_sharded(
            left_ps, right_ps, eps, metric=metric, workers=workers
        )
    return sorted(left_ps.cross_within(right_ps, eps, metric))


def eps_join_allpairs(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    backend: Optional[str] = None,
) -> JoinPairs:
    """Brute-force nested-loop eps-join (the benchmark baseline).

    Compares every left row against every right row with no spatial pruning:
    blocked ``within_eps`` sweeps under NumPy, the scalar predicate loop
    otherwise.  Produces exactly the pair list :func:`eps_join` returns —
    the benchmarks use it as the all-pairs baseline and the equivalence
    tests as a second opinion.
    """
    metric = resolve_metric(metric)
    eps = PointSet._check_eps(eps)
    left_ps, right_ps = _normalise_sides(left, right, backend)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    if (
        HAVE_NUMPY
        and isinstance(left_ps, NumpyPointSet)
        and isinstance(right_ps, NumpyPointSet)
    ):
        larr = left_ps.array
        rarr = right_ps.array
        pairs: JoinPairs = []
        for start in range(0, larr.shape[0], _ALLPAIRS_BLOCK):
            block = larr[start : start + _ALLPAIRS_BLOCK]
            mask = within_eps(block, rarr, metric, eps)
            li, rj = _np.nonzero(mask)
            pairs.extend(zip((li + start).tolist(), rj.tolist()))
        return pairs  # nonzero() scans row-major: already (i, j) ascending
    predicate = SimilarityPredicate(metric, eps)
    right_tuples = right_ps.to_tuples()
    return [
        (i, j)
        for i, p in enumerate(left_ps.to_tuples())
        for j, q in enumerate(right_tuples)
        if predicate.similar(p, q)
    ]
