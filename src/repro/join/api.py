"""Entry point of the similarity-join subsystem: :func:`sim_join`.

One function covers both join kinds the paper's operator family pairs with
similarity grouping: pass ``eps`` for an epsilon-join (all cross pairs
within the threshold) or ``k`` for a kNN-join (each left point with its k
nearest right points); exactly one of the two must be given.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.distance import Metric
from repro.core.pointset import PointSet
from repro.exceptions import InvalidParameterError
from repro.join.epsilon import JoinPairs, JoinResult, eps_join
from repro.join.knn import knn_join

__all__ = ["sim_join"]


def sim_join(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    eps: Optional[float] = None,
    k: Optional[int] = None,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
    cache: object = None,
) -> JoinPairs:
    """Similarity-join two point relations; returns ``(left, right)`` index pairs.

    Parameters
    ----------
    left, right:
        The two relations' join attributes: any point container
        :func:`repro.core.sgb_any` would accept (NumPy ``(n, d)`` arrays are
        consumed zero-copy).  Both sides must share one dimensionality.
    eps:
        Epsilon-join threshold: every pair within ``eps`` under the metric
        is returned, sorted lexicographically (the brute-force nested-loop
        order).  Mutually exclusive with ``k``.
    k:
        kNN-join count: each left point pairs with its ``k`` nearest right
        points, ordered by ascending ``(distance, right_index)`` — ties
        break towards the smaller right index.  Mutually exclusive with
        ``eps``.
    metric:
        ``"L2"`` (default), ``"LINF"``, or ``"L1"`` — any metric the SGB
        core supports.
    workers:
        Sharded parallel execution for both join kinds (``N > 1`` worker
        processes, ``0``/``"auto"`` for every core, ``None`` defers to the
        ``SGB_WORKERS`` environment variable); bit-identical to the serial
        join either way.  The eps-join shards both sides on the slab+halo
        grid; the kNN-join shards the left relation only.
    backend:
        Optional :class:`PointSet` backend override (``"python"`` forces
        the pure-Python kernels).
    cache:
        Result cache for repeated joins of identical relations: ``True``
        (the process-wide default), a spill-directory path, or a
        :class:`repro.storage.ResultCache`; ``None`` defers to the
        ``SGB_CACHE`` environment variable, and ``SGB_CACHE=off`` disables
        caching regardless.  Hits return the bit-identical pair list;
        worker counts are never part of the key.
    """
    if (eps is None) == (k is None):
        raise InvalidParameterError(
            "sim_join requires exactly one of eps (epsilon-join) or k (kNN-join)"
        )
    resolved, key = _join_cache_key(left, right, eps, k, metric, backend, cache)
    if resolved is not None:
        hit = resolved.get_pairs(key)
        if hit is not None:
            return JoinResult(hit)
    if eps is not None:
        pairs = eps_join(
            left, right, eps, metric=metric, workers=workers, backend=backend
        )
    else:
        pairs = knn_join(
            left, right, k, metric=metric, workers=workers, backend=backend
        )
    if resolved is not None:
        resolved.put_pairs(key, pairs)
    return pairs


def _join_cache_key(left, right, eps, k, metric, backend, cache):
    """Resolve the result cache and the join's key, or ``(None, None)``.

    Fingerprinting normalises both sides into :class:`PointSet`\\ s — the
    same normalisation the joins perform — so the digests match whatever
    container the caller handed in; uncanonicalisable parameters disable
    caching for the call and let the join raise its own validation error.
    """
    from repro.storage.cache import join_key, resolve_cache

    resolved = resolve_cache(cache)
    if resolved is None:
        return None, None
    from repro.core.distance import resolve_metric
    from repro.core.fingerprint import fingerprint_points

    try:
        metric_name = resolve_metric(metric).value
        left_ps = PointSet.from_any(left, backend=backend)
        right_ps = PointSet.from_any(right, backend=backend)
        eps_value = None if eps is None else float(eps)
        k_value = None if k is None else int(k)
    except Exception:  # noqa: BLE001 - let the join surface the error
        return None, None
    return resolved, join_key(
        fingerprint_points(left_ps),
        fingerprint_points(right_ps),
        eps_value,
        k_value,
        metric_name,
        left_ps.backend,
    )
