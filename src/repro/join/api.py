"""Entry point of the similarity-join subsystem: :func:`sim_join`.

One function covers both join kinds the paper's operator family pairs with
similarity grouping: pass ``eps`` for an epsilon-join (all cross pairs
within the threshold) or ``k`` for a kNN-join (each left point with its k
nearest right points); exactly one of the two must be given.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.distance import Metric
from repro.core.pointset import PointSet
from repro.exceptions import InvalidParameterError
from repro.join.epsilon import JoinPairs, eps_join
from repro.join.knn import knn_join

__all__ = ["sim_join"]


def sim_join(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    eps: Optional[float] = None,
    k: Optional[int] = None,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
) -> JoinPairs:
    """Similarity-join two point relations; returns ``(left, right)`` index pairs.

    Parameters
    ----------
    left, right:
        The two relations' join attributes: any point container
        :func:`repro.core.sgb_any` would accept (NumPy ``(n, d)`` arrays are
        consumed zero-copy).  Both sides must share one dimensionality.
    eps:
        Epsilon-join threshold: every pair within ``eps`` under the metric
        is returned, sorted lexicographically (the brute-force nested-loop
        order).  Mutually exclusive with ``k``.
    k:
        kNN-join count: each left point pairs with its ``k`` nearest right
        points, ordered by ascending ``(distance, right_index)`` — ties
        break towards the smaller right index.  Mutually exclusive with
        ``eps``.
    metric:
        ``"L2"`` (default), ``"LINF"``, or ``"L1"`` — any metric the SGB
        core supports.
    workers:
        Sharded parallel execution for both join kinds (``N > 1`` worker
        processes, ``0``/``"auto"`` for every core, ``None`` defers to the
        ``SGB_WORKERS`` environment variable); bit-identical to the serial
        join either way.  The eps-join shards both sides on the slab+halo
        grid; the kNN-join shards the left relation only.
    backend:
        Optional :class:`PointSet` backend override (``"python"`` forces
        the pure-Python kernels).
    """
    if (eps is None) == (k is None):
        raise InvalidParameterError(
            "sim_join requires exactly one of eps (epsilon-join) or k (kNN-join)"
        )
    if eps is not None:
        return eps_join(
            left, right, eps, metric=metric, workers=workers, backend=backend
        )
    return knn_join(left, right, k, metric=metric, workers=workers, backend=backend)
