"""Sharded kNN-join: partition the left relation, probe the right per worker.

Every left point's k-nearest-neighbour list depends only on that point and
the full right relation, so — unlike the eps-join, whose cross pairs straddle
shard boundaries — *any* partition of the left side is exact with no halo
stitching at all.  The partition still matters for locality: slab-partitioned
left shards (:func:`repro.engine.partition.partition_pointset`, cell width
derived from the expanding search's starting radius) keep each worker's
window probes concentrated in one region of the shared R-tree; degenerate
inputs the partitioner refuses fall back to contiguous index chunks.

The right side's bulk-loaded R-tree reaches the workers one of two ways,
both exposed because the trade-off is workload-dependent (the ``knn_parallel``
experiment stage measures both):

* ``ship_index=False`` (default) — each worker rebuilds the STR-packed
  R-tree from the shipped right coordinates.  The build is O(n log n) work
  repeated per worker, but the outbound payload is just the coordinate
  block, and rebuilds overlap across workers.
* ``ship_index=True`` — the coordinator builds the index once and pickles
  it (plus the coordinates the distance ranking needs) to every worker.
  No repeated build work, but the serialized tree is several times the
  coordinate payload, all of it shipped per shard.

Each worker runs the exact serial expanding-window core
(:func:`repro.join.knn._expanding_pairs`) with the coordinator's
data-derived starting radius, so per-left results are bit-identical to the
serial join; the merge just reassembles them in ascending global left-index
order — the serial output order — making the whole pipeline bit-identical
to :func:`repro.join.knn.knn_join` (enforced by the randomized equivalence
suite on both backends and all metrics).
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from typing import Any, List, Optional, Sequence

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet
from repro.engine.partition import partition_pointset, take_payload
from repro.engine.planner import plan_shards
from repro.engine.workers import drop_worker_pool, get_worker_pool
from repro.join.epsilon import JoinPairs, _normalise_sides
from repro.join.knn import (
    _check_k,
    _expanding_pairs,
    _initial_radius,
    _knn_serial,
    _rank_all,
    build_right_index,
)

__all__ = ["knn_join_sharded"]

#: The failure modes of lazily-spawned worker processes (mirrors the eps-join
#: and engine recovery): spawn refusals surface as OSError, a dying
#: interpreter as RuntimeError, a killed worker as BrokenProcessPool.
_POOL_ERRORS = (BrokenProcessPool, OSError, RuntimeError)


def _knn_shard(
    left_payload: Any,
    right_payload: Any,
    want: int,
    metric_value: str,
    radius: float,
    index: Any = None,
) -> List[tuple]:
    """Worker body: the serial expanding-window core over one left shard.

    Module-level (not a closure) so it pickles by reference under every
    multiprocessing start method.  ``index`` is the pre-built right R-tree
    in ship mode, ``None`` in rebuild mode (the worker bulk-loads its own).
    Returns pairs with shard-local left indices.
    """
    from repro.core.pointset import PointSet

    left_tuples = PointSet.from_any(left_payload).to_tuples()
    right_tuples = PointSet.from_any(right_payload).to_tuples()
    metric = resolve_metric(metric_value)
    if want >= len(right_tuples):
        return _rank_all(left_tuples, right_tuples, metric)
    if index is None:
        index = build_right_index(right_tuples)
    return _expanding_pairs(left_tuples, right_tuples, index, radius, want, metric)


def _left_partitions(
    left_ps: PointSet, radius: float, n_shards: int
) -> List[List[int]]:
    """Global left-index lists, one per shard (slab partition, chunk fallback)."""
    partition = partition_pointset(left_ps, max(radius, 1e-9), n_shards)
    if partition is not None and len(partition.shards) >= 2:
        return [shard.indices for shard in partition.shards]
    # Degenerate extent (single cluster / single cell): contiguous chunks
    # are just as exact — no halo correctness argument is needed here.
    n = len(left_ps)
    size = -(-n // n_shards)
    chunks = [list(range(lo, min(lo + size, n))) for lo in range(0, n, size)]
    return [chunk for chunk in chunks if chunk]


def knn_join_sharded(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    k: int,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    shards: Optional[int] = None,
    ship_index: bool = False,
) -> JoinPairs:
    """Run the kNN-join over left-relation shards in worker processes.

    Result-identical to the serial :func:`repro.join.knn.knn_join` — same
    pairs, same order.  ``shards`` overrides the planned shard count (used
    by tests to force the partition/merge pipeline regardless of worker
    availability); ``ship_index`` selects the ship-the-built-index mode
    over the default rebuild-per-worker mode.
    """
    k = _check_k(k)
    metric = resolve_metric(metric)
    left_ps, right_ps = _normalise_sides(left, right, backend=None)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    n_left = len(left_ps)
    n_right = len(right_ps)
    want = min(k, n_right)
    plan = plan_shards(n_left, 1.0, workers)
    n_shards = shards if shards is not None else plan.shards
    if n_shards < 2:
        return _knn_serial(left_ps, right_ps, k, metric)
    radius = _initial_radius(right_ps, want)
    shard_indices = _left_partitions(left_ps, radius, n_shards)
    if len(shard_indices) < 2:
        return _knn_serial(left_ps, right_ps, k, metric)

    right_payload = take_payload(right_ps, range(n_right))
    index = (
        build_right_index(right_ps.to_tuples())
        if ship_index and want < n_right
        else None
    )
    payloads = [take_payload(left_ps, indices) for indices in shard_indices]

    pool = get_worker_pool(plan.workers) if plan.parallel and plan.workers > 1 else None
    shard_results: Optional[List[List[tuple]]] = None
    if pool is not None:
        try:
            futures = [
                pool.submit(
                    _knn_shard, payload, right_payload, want, metric.value, radius, index
                )
                for payload in payloads
            ]
            shard_results = [future.result() for future in futures]
        except _POOL_ERRORS:
            # A worker died mid-join (or no process could spawn): drop the
            # pool and recover in process rather than failing the query.
            drop_worker_pool(plan.workers)
            shard_results = None
    if shard_results is None:
        shard_results = [
            _knn_shard(payload, right_payload, want, metric.value, radius, index)
            for payload in payloads
        ]

    # Merge: every global left index lives in exactly one shard, and each
    # shard's pairs come back grouped by ascending local left index with the
    # canonical (distance, right_index) rank order inside each group — so
    # scattering the per-left runs into a global table and reading it in
    # index order reproduces the serial output exactly.
    per_left: List[List[int]] = [[] for _ in range(n_left)]
    for indices, local_pairs in zip(shard_indices, shard_results):
        for local_i, j in local_pairs:
            per_left[indices[local_i]].append(j)
    return [(i, j) for i in range(n_left) for j in per_left[i]]
