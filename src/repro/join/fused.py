"""Fused join→group pipeline: similarity-join two relations and SGB the matches.

The materialized two-step pipeline — run :func:`repro.join.sim_join`, build
one point row per matched pair (the matched side's coordinates), then run
SGB-Any over that pair relation — repeats every matched point once per pair
it appears in.  The grouping sweep then pays for the duplication twice: the
eps-grid buckets hold multiplied copies, and the pairwise sweep enumerates
an edge between every copy of every within-eps point pair, so a point
matched ``m`` times inflates its edge work by ``m^2``.

The fused path exploits the structure of that duplication instead of
re-discovering it:

* duplicates of one matched point are at distance 0 of each other, and the
  ``WITHIN`` threshold is strictly positive, so all pair rows carrying the
  same matched point are always in one connected component;
* therefore the components of the pair relation are exactly the components
  of the *distinct* matched points, expanded back over the pair positions.

So the fused pipeline runs the join sweep once, groups only the distinct
matched coordinates (``|distinct| <= |side|``, independent of the pair
count), and expands the component labels over the pair list — never
materialising the duplicated pair-point relation, never sweeping it.  The
result is bit-identical to the two-step reference (same canonical groups,
same per-pair points), which the randomized equivalence suite enforces on
both backends and all metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet
from repro.core.result import GroupingResult, canonicalize_groups
from repro.core.sgb_any import sgb_any_grouping
from repro.exceptions import InvalidParameterError
from repro.join.api import sim_join
from repro.join.epsilon import JoinPairs, _normalise_sides

__all__ = ["FusedJoinGroups", "fused_join_group"]


@dataclass
class FusedJoinGroups:
    """Outcome of a fused join→SGB pipeline.

    Attributes
    ----------
    pairs:
        The similarity-join output: ``(left_index, right_index)`` pairs in
        the join's canonical order.
    grouping:
        SGB-Any over the matched side's coordinates, one input row per
        *pair* (so group members are positions into ``pairs``) — exactly
        what grouping the materialized pair relation returns.
    side_groups:
        The same groups expressed over distinct matched side indices
        (ascending within each group, groups ordered to match ``grouping``).
    """

    pairs: JoinPairs
    grouping: GroupingResult
    side_groups: List[List[int]]


def fused_join_group(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    group_eps: float,
    eps: Optional[float] = None,
    k: Optional[int] = None,
    metric: "Metric | str" = Metric.L2,
    group_metric: "Metric | str | None" = None,
    group_side: str = "right",
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
) -> FusedJoinGroups:
    """Similarity-join ``left`` and ``right``, then SGB-Any the matches.

    Equivalent to (and bit-identical with) the materialized two-step
    pipeline::

        pairs = sim_join(left, right, eps=eps, k=k, metric=metric)
        matched = [right[j] for (i, j) in pairs]       # group_side="right"
        grouping = sgb_any(matched, group_eps, metric=group_metric)

    but the grouping sweep only ever sees each matched point once.

    Parameters
    ----------
    group_eps:
        The SGB-Any ``WITHIN`` threshold applied to the matched coordinates.
    eps / k:
        The join threshold (eps-join) or neighbour count (kNN-join);
        exactly one must be given, as in :func:`repro.join.sim_join`.
    metric / group_metric:
        Join and grouping metrics; ``group_metric=None`` reuses ``metric``.
    group_side:
        ``"right"`` (default) groups the matched right points, ``"left"``
        the matched left points.
    workers:
        Sharded execution for both the join and the grouping of the
        distinct matched points (resolved like :func:`repro.core.api.sgb_any`).
    """
    if group_side not in ("left", "right"):
        raise InvalidParameterError(
            f"group_side must be 'left' or 'right', got {group_side!r}"
        )
    metric = resolve_metric(metric)
    group_metric = metric if group_metric is None else resolve_metric(group_metric)
    group_eps = PointSet._check_eps(group_eps)
    left_ps, right_ps = _normalise_sides(left, right, backend)
    pairs = sim_join(
        left_ps, right_ps, eps=eps, k=k, metric=metric, workers=workers
    )
    side_ps = right_ps if group_side == "right" else left_ps
    matched = (
        [j for _, j in pairs] if group_side == "right" else [i for i, _ in pairs]
    )
    if not pairs:
        return FusedJoinGroups(
            pairs=[], grouping=GroupingResult.empty(), side_groups=[]
        )

    # Positions of every pair carrying each distinct matched side row; the
    # distinct rows (ascending) are the only points the grouping sweep sees.
    positions: Dict[int, List[int]] = {}
    for position, side_index in enumerate(matched):
        positions.setdefault(side_index, []).append(position)
    distinct = sorted(positions)
    distinct_points = [side_ps.point(side_index) for side_index in distinct]
    compact = sgb_any_grouping(
        PointSet.from_any(distinct_points, backend=side_ps.backend),
        eps=group_eps,
        metric=group_metric,
        workers=workers,
    )

    # Expand each distinct-point component over its pair positions, then
    # re-normalise so the labelling provably matches the reference (members
    # ascending, groups by smallest pair position).  side_groups rides along
    # under the same ordering so the two views stay index-aligned.
    expanded = [
        (
            sorted(
                position
                for member in members
                for position in positions[distinct[member]]
            ),
            sorted(distinct[member] for member in members),
        )
        for members in compact.groups
    ]
    expanded.sort(key=lambda pair: pair[0][0])
    groups = canonicalize_groups(group for group, _ in expanded)
    side_groups = [side for _, side in expanded]
    pair_points = [side_ps.point(side_index) for side_index in matched]
    return FusedJoinGroups(
        pairs=pairs,
        grouping=GroupingResult(groups=groups, eliminated=[], points=pair_points),
        side_groups=side_groups,
    )
