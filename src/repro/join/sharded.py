"""Sharded eps-join: the engine's slab+halo partition applied to two relations.

The eps-grid slab partition of :mod:`repro.engine.partition` is join-aware
for free: cut the *union* of both relations along one axis on eps-grid lines
and every within-eps cross pair either

* has both endpoints in the same slab — found by the shard-local
  :meth:`PointSet.cross_within` grid-join of that slab's left points against
  its right points; or
* straddles exactly one cut ``k`` — its endpoints' axis cells are then
  ``k - 1`` and ``k`` (a within-eps pair differs by at most one eps-cell per
  axis, and slabs are at least two cells wide), so both endpoints sit in the
  halo band of that cut and the band-local grid-join of the band's left
  points against its right points recovers the pair.

The band joins also re-discover pairs whose endpoints share a slab; unlike
the SGB merge (where a Union-Find absorbs duplicates) a join must emit every
pair exactly once, so band pairs are kept only when their endpoints' axis
cells fall on *opposite* sides of the band's cut — precisely the pairs no
shard-local join can see.  Shard joins run in the engine's shared worker
pool (halo bands are stitched in-process while the pool grinds); the sorted
union of both edge sets is bit-identical to the serial
:func:`repro.join.epsilon.eps_join`.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.distance import Metric, resolve_metric
from repro.core.pointset import PointSet
from repro.engine.partition import (
    GridPartition,
    axis_cells,
    partition_pointset,
    take_payload,
)
from repro.engine.planner import plan_shards
from repro.engine.workers import drop_worker_pool, get_worker_pool
from repro.join.epsilon import JoinPairs, _normalise_sides

__all__ = ["eps_join_sharded"]

#: The failure modes of lazily-spawned worker processes: spawn refusals
#: surface as OSError, a dying interpreter as RuntimeError, and a killed
#: worker as BrokenProcessPool (mirrors the engine's recovery).
_POOL_ERRORS = (BrokenProcessPool, OSError, RuntimeError)


def _join_shard(
    left_payload: Any, right_payload: Any, eps: float, metric_value: str
) -> List[Tuple[int, int]]:
    """Worker body: grid-join one slab's left points against its right points.

    Module-level (not a closure) so it pickles by reference under every
    multiprocessing start method; payloads are the picklable point blocks
    :func:`repro.engine.partition.take_payload` extracts.
    """
    from repro.core.pointset import PointSet

    left_ps = PointSet.from_any(left_payload)
    right_ps = PointSet.from_any(right_payload)
    return list(left_ps.cross_within(right_ps, eps, metric_value))


def _split_sides(indices: Sequence[int], n_left: int) -> Tuple[List[int], List[int]]:
    """Split combined-row indices back into (left rows, right rows)."""
    left = [i for i in indices if i < n_left]
    right = [i - n_left for i in indices if i >= n_left]
    return left, right


def _band_pairs(
    partition: GridPartition,
    left_ps: PointSet,
    right_ps: PointSet,
    n_left: int,
    eps: float,
    metric: Metric,
    cells: Sequence[int],
) -> Iterator[Tuple[int, int]]:
    """Cross-slab pairs from the halo bands (computed in-process).

    ``cells`` is the partition-axis eps-cell of every combined row (the same
    vectorised pass the partitioner runs).  Only pairs whose endpoints' cells
    straddle the band's cut are yielded; same-side pairs are the shard-local
    joins' responsibility, and every straddling pair lives in exactly one
    band (a point belongs to at most one band), so no pair is emitted twice.
    """
    for band in partition.bands:
        left_idx, right_idx = _split_sides(band.indices, n_left)
        if not left_idx or not right_idx:
            continue
        band_left = PointSet.from_any(take_payload(left_ps, left_idx))
        band_right = PointSet.from_any(take_payload(right_ps, right_idx))
        cut = band.cut_cell
        left_below = [cells[i] < cut for i in left_idx]
        right_below = [cells[n_left + j] < cut for j in right_idx]
        for a, b in band_left.cross_within(band_right, eps, metric):
            if left_below[a] != right_below[b]:
                yield left_idx[a], right_idx[b]


def _serial_pairs(
    left_ps: PointSet, right_ps: PointSet, eps: float, metric: Metric
) -> JoinPairs:
    return sorted(left_ps.cross_within(right_ps, eps, metric))


def eps_join_sharded(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    eps: float,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    shards: Optional[int] = None,
) -> JoinPairs:
    """Run the eps-join over grid shards, in worker processes when available.

    Result-identical to the serial :func:`repro.join.epsilon.eps_join` —
    same pairs, same lexicographic order.  ``shards`` overrides the planned
    shard count (used by tests to force the partition/stitch pipeline
    regardless of worker availability).
    """
    metric = resolve_metric(metric)
    eps = PointSet._check_eps(eps)
    left_ps, right_ps = _normalise_sides(left, right, backend=None)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    n_left = len(left_ps)
    combined = PointSet.concat([left_ps, right_ps], backend=left_ps.backend)
    plan = plan_shards(len(combined), eps, workers)
    n_shards = shards if shards is not None else plan.shards
    if n_shards < 2:
        return _serial_pairs(left_ps, right_ps, eps, metric)
    partition = partition_pointset(combined, eps, n_shards)
    if partition is None or len(partition.shards) < 2:
        return _serial_pairs(left_ps, right_ps, eps, metric)

    # One task per slab holding points of both relations; single-sided slabs
    # can contribute no cross pair and are skipped outright.
    tasks: List[Tuple[List[int], List[int]]] = []
    for shard in partition.shards:
        left_idx, right_idx = _split_sides(shard.indices, n_left)
        if left_idx and right_idx:
            tasks.append((left_idx, right_idx))
    payloads = [
        (take_payload(left_ps, left_idx), take_payload(right_ps, right_idx))
        for left_idx, right_idx in tasks
    ]

    pool = get_worker_pool(plan.workers) if plan.parallel and plan.workers > 1 else None
    futures = None
    if pool is not None:
        try:
            futures = [
                pool.submit(_join_shard, lp, rp, eps, metric.value)
                for lp, rp in payloads
            ]
        except _POOL_ERRORS:
            drop_worker_pool(plan.workers)
            futures = None
    # Stitch the halo bands in-process — with a live pool this overlaps the
    # shard joins.  Deliberately outside the pool try/except: a genuine
    # stitching error is a bug and must surface, not degrade to serial.
    cells = axis_cells(combined, partition.axis, eps)
    pairs = list(
        _band_pairs(partition, left_ps, right_ps, n_left, eps, metric, cells)
    )
    if futures is not None:
        try:
            shard_results = [future.result() for future in futures]
        except _POOL_ERRORS:
            # A worker died mid-join: recover serially rather than failing.
            drop_worker_pool(plan.workers)
            return _serial_pairs(left_ps, right_ps, eps, metric)
    else:
        shard_results = [
            _join_shard(lp, rp, eps, metric.value) for lp, rp in payloads
        ]

    for (left_idx, right_idx), local_pairs in zip(tasks, shard_results):
        pairs.extend((left_idx[a], right_idx[b]) for a, b in local_pairs)
    pairs.sort()
    return pairs
