"""k-nearest-neighbour similarity join: each left point to its k closest rights.

Unlike the eps-join there is no fixed threshold to grid on, so the kNN-join
probes a bulk-loaded spatial index (the STR-packed R-tree of the batch SGB
path) with expanding window queries instead of enumerating all pairs:

1. every left point issues one window query of a data-derived starting
   radius (answered for the whole batch with ``search_many``), doubling the
   window until at least ``k`` candidates respond;
2. the candidates' exact distances give a conservative kth-distance bound
   ``D``; because a box of half-side ``D`` contains the closed metric ball
   of radius ``D`` for every supported metric (L2, LINF, L1 distances are
   all bounded below by the largest per-coordinate difference), one final
   window query at radius ``D`` is guaranteed to contain the true k nearest
   neighbours;
3. the final candidates are ranked by ``(distance, right_index)`` — the
   ascending-index rule breaks distance ties deterministically — and the
   first k survive.

``k >= len(right)`` is well-defined, not an error: every right point
qualifies, so each left point pairs with the *whole* right side in canonical
rank order (ascending ``(distance, right_index)``), producing exactly
``len(left) * len(right)`` pairs with no padding.  The expanding search is
skipped outright in that regime — ranking the full side directly is both
cheaper and trivially exact.

Distances come from :func:`repro.core.distance.distances_many`, which is
bit-identical to the scalar metric loops, so the result matches a brute-force
nested loop exactly (the randomized equivalence suite enforces this on both
backends and all metrics).  ``workers`` shards the *left* side across the
engine's worker pool (:mod:`repro.join.knn_sharded`); every left point's
neighbour list is independent of every other's, so the sharded result is
bit-identical to the serial one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.distance import Metric, distances_many, resolve_metric
from repro.core.pointset import PointSet
from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.join.epsilon import JoinPairs, _normalise_sides
from repro.spatial.rtree import RTree

Point = Tuple[float, ...]

__all__ = ["knn_join"]


def _check_k(k: object) -> int:
    if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    return k


def _initial_radius(right_ps: PointSet, want: int) -> float:
    """A data-derived starting window half-side for the expanding search.

    Under a roughly uniform density the box holding ``want`` of the
    ``n_right`` points has volume ``extent_volume * want / n_right``; its
    half-side is the d-th root halved.  Degenerate extents (all points on a
    lower-dimensional flat, or a single location) fall back to the widest
    extent, then to an arbitrary positive constant — the doubling loop
    corrects any underestimate, so only the constant's order matters.
    """
    bbox = right_ps.bbox()
    extents = [hi - lo for lo, hi in zip(bbox.low, bbox.high)]
    volume = 1.0
    for extent in extents:
        volume *= extent
    if volume > 0:
        return 0.5 * (volume * want / len(right_ps)) ** (1.0 / len(extents))
    widest = max(extents)
    return widest / 2 if widest > 0 else 1.0


def _rank_all(
    left_tuples: Sequence[Point], right_tuples: Sequence[Point], metric: Metric
) -> JoinPairs:
    """The ``k >= len(right)`` regime: rank the full right side per left point."""
    n_right = len(right_tuples)
    pairs: JoinPairs = []
    for i, probe in enumerate(left_tuples):
        ranked = sorted(zip(distances_many(probe, right_tuples, metric), range(n_right)))
        pairs.extend((i, j) for _, j in ranked)
    return pairs


def build_right_index(right_tuples: Sequence[Point]) -> RTree:
    """Bulk-load the right side into the STR-packed R-tree the probes use.

    Exposed for the sharded kNN-join, whose *ship* mode builds this index
    once in the coordinator and pickles it to every worker instead of
    rebuilding it per shard.
    """
    return RTree.bulk_load(
        [Rect.from_point(pt) for pt in right_tuples], range(len(right_tuples))
    )


def _expanding_pairs(
    left_tuples: Sequence[Point],
    right_tuples: Sequence[Point],
    index: RTree,
    radius: float,
    want: int,
    metric: Metric,
) -> JoinPairs:
    """The expanding-window core: kNN pairs with *local* left indices.

    Deterministic for any positive ``radius`` — the starting window only
    changes how many doubling rounds run, never the final ranked candidate
    set — which is what lets the sharded join reuse the serial coordinator's
    radius verbatim.
    """

    def rank(probe, hits):
        """Candidates ordered by ``(distance, right_index)`` — the tie rule."""
        distances = distances_many(probe, [right_tuples[j] for j in hits], metric)
        return sorted(zip(distances, hits))

    first_round = index.search_many(
        [Rect.from_point(pt, radius) for pt in left_tuples]
    )
    pairs: JoinPairs = []
    for i, (probe, hits) in enumerate(zip(left_tuples, first_round)):
        r = radius
        while len(hits) < want:
            r *= 2.0
            hits = index.search(Rect.from_point(probe, r))
        ranked = rank(probe, hits)
        bound = ranked[want - 1][0]
        if bound > r:
            # The kth-distance bound exceeds the window: one final query at
            # radius `bound` (whose box contains the closed `bound`-ball
            # under every supported metric) completes the candidate set.
            ranked = rank(probe, index.search(Rect.from_point(probe, bound)))
        pairs.extend((i, j) for _, j in ranked[:want])
    return pairs


def knn_join(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    k: int,
    metric: "Metric | str" = Metric.L2,
    workers: "Optional[int | str]" = None,
    backend: Optional[str] = None,
) -> JoinPairs:
    """Pair every left point with its ``k`` nearest right points.

    Returns ``(left_index, right_index)`` pairs ordered by left index and,
    within one left point, by ascending ``(distance, right_index)`` — ties
    in distance break deterministically towards the smaller right index.
    When ``k >= len(right)`` every right point is paired per left point, in
    that same canonical rank order: ``len(left) * len(right)`` pairs total,
    never padding.

    ``workers`` shards the left relation through the engine partitioner
    (:func:`repro.join.knn_sharded.knn_join_sharded`): ``N > 1`` forces up
    to N worker processes, while ``0`` / ``"auto"`` — or ``None`` with no
    numeric ``SGB_WORKERS`` in the environment — delegates the serial vs
    sharded choice to the cost planner (:mod:`repro.engine.cost`), recording
    the chosen plan on the returned
    :class:`~repro.join.epsilon.JoinResult`.  The sharded result is
    bit-identical to the serial one.
    """
    k = _check_k(k)
    metric = resolve_metric(metric)
    left_ps, right_ps = _normalise_sides(left, right, backend)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    from repro.engine.cost import planner_delegated
    from repro.engine.planner import resolve_workers

    if planner_delegated(workers):
        from repro.engine.cost import plan_knn_join
        from repro.engine.stats import collect_stats
        from repro.join.epsilon import JoinResult

        plan = plan_knn_join(collect_stats(left_ps), collect_stats(right_ps), k)
        if plan.mode == "sharded":
            from repro.join.knn_sharded import knn_join_sharded

            pairs = knn_join_sharded(
                left_ps,
                right_ps,
                k,
                metric=metric,
                workers=plan.workers,
                shards=plan.shards,
            )
        else:
            pairs = _knn_serial(left_ps, right_ps, k, metric)
        result = JoinResult(pairs)
        result.plan = plan
        return result
    if resolve_workers(workers) > 1:
        from repro.join.knn_sharded import knn_join_sharded

        return knn_join_sharded(left_ps, right_ps, k, metric=metric, workers=workers)
    return _knn_serial(left_ps, right_ps, k, metric)


def _knn_serial(
    left_ps: PointSet, right_ps: PointSet, k: int, metric: Metric
) -> JoinPairs:
    """The in-process kNN-join over already-normalised sides."""
    right_tuples = right_ps.to_tuples()
    left_tuples = left_ps.to_tuples()
    want = min(k, len(right_tuples))
    if want == len(right_tuples):
        return _rank_all(left_tuples, right_tuples, metric)
    return _expanding_pairs(
        left_tuples,
        right_tuples,
        build_right_index(right_tuples),
        _initial_radius(right_ps, want),
        want,
        metric,
    )
