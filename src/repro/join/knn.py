"""k-nearest-neighbour similarity join: each left point to its k closest rights.

Unlike the eps-join there is no fixed threshold to grid on, so the kNN-join
probes a bulk-loaded spatial index (the STR-packed R-tree of the batch SGB
path) with expanding window queries instead of enumerating all pairs:

1. every left point issues one window query of a data-derived starting
   radius (answered for the whole batch with ``search_many``), doubling the
   window until at least ``k`` candidates respond;
2. the candidates' exact distances give a conservative kth-distance bound
   ``D``; because a box of half-side ``D`` contains the closed metric ball
   of radius ``D`` for every supported metric (L2, LINF, L1 distances are
   all bounded below by the largest per-coordinate difference), one final
   window query at radius ``D`` is guaranteed to contain the true k nearest
   neighbours;
3. the final candidates are ranked by ``(distance, right_index)`` — the
   ascending-index rule breaks distance ties deterministically — and the
   first k survive.

Distances come from :func:`repro.core.distance.distances_many`, which is
bit-identical to the scalar metric loops, so the result matches a brute-force
nested loop exactly (the randomized equivalence suite enforces this on both
backends and all metrics).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.distance import Metric, distances_many, resolve_metric
from repro.core.pointset import PointSet
from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.join.epsilon import JoinPairs, _normalise_sides
from repro.spatial.rtree import RTree

__all__ = ["knn_join"]


def _check_k(k: object) -> int:
    if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    return k


def _initial_radius(right_ps: PointSet, want: int) -> float:
    """A data-derived starting window half-side for the expanding search.

    Under a roughly uniform density the box holding ``want`` of the
    ``n_right`` points has volume ``extent_volume * want / n_right``; its
    half-side is the d-th root halved.  Degenerate extents (all points on a
    lower-dimensional flat, or a single location) fall back to the widest
    extent, then to an arbitrary positive constant — the doubling loop
    corrects any underestimate, so only the constant's order matters.
    """
    bbox = right_ps.bbox()
    extents = [hi - lo for lo, hi in zip(bbox.low, bbox.high)]
    volume = 1.0
    for extent in extents:
        volume *= extent
    if volume > 0:
        return 0.5 * (volume * want / len(right_ps)) ** (1.0 / len(extents))
    widest = max(extents)
    return widest / 2 if widest > 0 else 1.0


def knn_join(
    left: "PointSet | Sequence[Sequence[float]]",
    right: "PointSet | Sequence[Sequence[float]]",
    k: int,
    metric: "Metric | str" = Metric.L2,
    backend: Optional[str] = None,
) -> JoinPairs:
    """Pair every left point with its ``k`` nearest right points.

    Returns ``(left_index, right_index)`` pairs ordered by left index and,
    within one left point, by ascending ``(distance, right_index)`` — ties
    in distance break deterministically towards the smaller right index.
    When the right side holds fewer than ``k`` points, every right point is
    paired (in rank order); fewer pairs than ``k`` per left point then
    appear, never padding.
    """
    k = _check_k(k)
    metric = resolve_metric(metric)
    left_ps, right_ps = _normalise_sides(left, right, backend)
    if len(left_ps) == 0 or len(right_ps) == 0:
        return []
    right_tuples = right_ps.to_tuples()
    n_right = len(right_tuples)
    want = min(k, n_right)
    left_tuples = left_ps.to_tuples()
    pairs: JoinPairs = []
    if want == n_right:
        # Every right point qualifies: rank the full side per left point.
        for i, probe in enumerate(left_tuples):
            ranked = sorted(zip(distances_many(probe, right_tuples, metric), range(n_right)))
            pairs.extend((i, j) for _, j in ranked)
        return pairs

    def rank(probe, hits):
        """Candidates ordered by ``(distance, right_index)`` — the tie rule."""
        distances = distances_many(probe, [right_tuples[j] for j in hits], metric)
        return sorted(zip(distances, hits))

    index = RTree.bulk_load(
        [Rect.from_point(pt) for pt in right_tuples], range(n_right)
    )
    radius = _initial_radius(right_ps, want)
    first_round = index.search_many(
        [Rect.from_point(pt, radius) for pt in left_tuples]
    )
    for i, (probe, hits) in enumerate(zip(left_tuples, first_round)):
        r = radius
        while len(hits) < want:
            r *= 2.0
            hits = index.search(Rect.from_point(probe, r))
        ranked = rank(probe, hits)
        bound = ranked[want - 1][0]
        if bound > r:
            # The kth-distance bound exceeds the window: one final query at
            # radius `bound` (whose box contains the closed `bound`-ball
            # under every supported metric) completes the candidate set.
            ranked = rank(probe, index.search(Rect.from_point(probe, bound)))
        pairs.extend((i, j) for _, j in ranked[:want])
    return pairs
