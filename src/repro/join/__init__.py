"""repro.join — set-at-a-time similarity joins between two point relations.

The similarity-aware operator family the paper places SGB in also contains
similarity *joins*: pairing the tuples of two relations by distance instead
of by equality.  This subsystem provides both classic variants over the
columnar :class:`~repro.core.pointset.PointSet` core:

* :mod:`repro.join.epsilon` — the eps-join (:func:`eps_join`): every cross
  pair within ``eps``, discovered with the same eps-grid sweep and
  ``within_eps`` kernel as the SGB batch path (plus the brute-force
  :func:`eps_join_allpairs` baseline for the benchmarks);
* :mod:`repro.join.knn` — the kNN-join (:func:`knn_join`): each left point
  with its k nearest right points via expanding R-tree window probes,
  distance ties broken deterministically by right index;
* :mod:`repro.join.sharded` — :func:`eps_join_sharded`, the eps-join over
  the engine's slab+halo grid partition in the shared worker pool,
  bit-identical to the serial join;
* :mod:`repro.join.knn_sharded` — :func:`knn_join_sharded`, the kNN-join
  over left-relation shards (the right R-tree rebuilt per worker or built
  once and shipped), bit-identical to the serial join;
* :mod:`repro.join.fused` — :func:`fused_join_group`, the fused join→SGB
  pipeline: groups the distinct matched points and expands the components
  over the pair list instead of materialising the duplicated pair relation;
* :mod:`repro.join.api` — :func:`sim_join`, the single entry point
  (``eps=`` or ``k=``), also re-exported as :func:`repro.sim_join`.

SQL access: ``FROM a SIMILARITY JOIN b ON DISTANCE(a.x, a.y, b.x, b.y)
WITHIN eps`` (or ``... KNN k``) through :class:`repro.minidb.Database`.
"""

from repro.join.api import sim_join
from repro.join.epsilon import JoinResult, eps_join, eps_join_allpairs
from repro.join.fused import FusedJoinGroups, fused_join_group
from repro.join.knn import knn_join
from repro.join.knn_sharded import knn_join_sharded
from repro.join.sharded import eps_join_sharded

__all__ = [
    "sim_join",
    "JoinResult",
    "eps_join",
    "eps_join_allpairs",
    "eps_join_sharded",
    "knn_join",
    "knn_join_sharded",
    "fused_join_group",
    "FusedJoinGroups",
]
