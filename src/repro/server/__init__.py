"""SGB as a service: an asynchronous HTTP/1.1 front-end for the engine.

The package turns the in-process library into a network service with zero
third-party dependencies — the protocol layer is a hand-rolled HTTP/1.1
implementation on :func:`asyncio.start_server`, so the no-NumPy CI tier runs
the whole service too.  The layout follows the app-factory pattern:

* :mod:`repro.server.settings` — :class:`ServerSettings`, resolved from
  keyword arguments and ``SGB_SERVER_*`` environment variables;
* :mod:`repro.server.app`      — :func:`create_app` builds an :class:`App`
  binding one :class:`~repro.minidb.database.Database` to a request
  thread-pool, a background job executor, and per-route metrics;
* :mod:`repro.server.routes`   — one handler module per domain (SQL queries,
  direct point-batch operators, background jobs, ops endpoints);
* :mod:`repro.server.protocol` — the HTTP request parser / response writer;
* :mod:`repro.server.auth`     — bearer-token authentication;
* :mod:`repro.server.jobs`     — the background executor spooling results
  through :class:`repro.storage.store.LocalFileStore`;
* :mod:`repro.server.client`   — a stdlib (``http.client``) client used by
  the tests, the example, and the serving benchmark;
* :mod:`repro.server.testing`  — run a server in a background thread of the
  current process (tests and notebooks).

Every response body is the JSON rendering produced by
:mod:`repro.server.jsonio`; the equivalence suite proves each route returns
results bit-identical (after a JSON round trip) to the corresponding
in-process call.  ``python -m repro.server`` starts a standalone server.
"""

from repro.server.app import App, create_app
from repro.server.client import ServerClient, ServerError
from repro.server.settings import ServerSettings
from repro.server.testing import ServerThread, running_server

__all__ = [
    "App",
    "create_app",
    "ServerSettings",
    "ServerClient",
    "ServerError",
    "ServerThread",
    "running_server",
]
