"""Bearer-token authentication for the service.

One static token guards every route except the health probe.  The comparison
is constant-time (:func:`hmac.compare_digest`) so the token cannot be
recovered byte-by-byte from response timing.  Missing credentials map to
401, a wrong token to 403 — the distinction keeps misconfigured clients
(no token plumbed through) distinguishable from bad ones in the logs.
"""

from __future__ import annotations

import hmac
from typing import Optional

from repro.server.protocol import HttpError, Request

__all__ = ["authenticate", "extract_token"]


def extract_token(request: Request) -> Optional[str]:
    """The credential presented by a request, or ``None``.

    ``Authorization: Bearer <token>`` is the canonical spelling; the
    ``X-Auth-Token`` header is accepted as the curl-friendly alternative.
    """
    header = request.headers.get("authorization", "")
    if header:
        scheme, _, credential = header.partition(" ")
        if scheme.lower() == "bearer" and credential.strip():
            return credential.strip()
        return header.strip() or None
    alt = request.headers.get("x-auth-token", "")
    return alt.strip() or None


def authenticate(request: Request, auth_token: Optional[str]) -> None:
    """Raise 401/403 unless the request satisfies the configured token.

    ``auth_token=None`` means authentication is disabled and every request
    passes (local development; the README tells deployments to set
    ``SGB_SERVER_TOKEN``).
    """
    if auth_token is None:
        return
    presented = extract_token(request)
    if presented is None:
        raise HttpError(401, "missing credentials: pass Authorization: Bearer <token>")
    if not hmac.compare_digest(presented.encode("utf-8"), auth_token.encode("utf-8")):
        raise HttpError(403, "invalid token")
