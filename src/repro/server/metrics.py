"""Per-route latency and status counters, safe under concurrent requests.

Request handlers run on the app's thread pool, so every mutation is guarded
by one lock; the snapshot the ops route serves is a consistent copy, never a
live view.  Metrics are keyed by the route *template* (``/v1/jobs/{job_id}``,
not the concrete id) so cardinality stays bounded.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["RouteMetrics"]


class _RouteCounter:
    __slots__ = ("count", "errors", "total_seconds", "max_seconds", "statuses")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.statuses: Dict[int, int] = {}


class RouteMetrics:
    """Aggregated request counters per ``(method, route-template)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: Dict[str, _RouteCounter] = {}

    def record(self, method: str, route: str, status: int, seconds: float) -> None:
        """Record one finished request."""
        key = f"{method} {route}"
        with self._lock:
            counter = self._routes.get(key)
            if counter is None:
                counter = self._routes[key] = _RouteCounter()
            counter.count += 1
            counter.total_seconds += seconds
            counter.max_seconds = max(counter.max_seconds, seconds)
            counter.statuses[status] = counter.statuses.get(status, 0) + 1
            if status >= 400:
                counter.errors += 1

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A consistent copy of every route's counters (the /v1/stats body)."""
        with self._lock:
            return {
                key: {
                    "count": c.count,
                    "errors": c.errors,
                    "total_ms": round(c.total_seconds * 1000.0, 3),
                    "mean_ms": round(c.total_seconds / c.count * 1000.0, 3)
                    if c.count
                    else 0.0,
                    "max_ms": round(c.max_seconds * 1000.0, 3),
                    "statuses": dict(c.statuses),
                }
                for key, c in self._routes.items()
            }
