"""JSON serialisation of engine results — the service's wire format.

The HTTP equivalence guarantee lives here: every route body is built by
these functions, and the randomized suite asserts that
``json.loads(http_body)`` equals ``json.loads(json.dumps(payload(result)))``
of the corresponding in-process call.  The encoding is therefore chosen to
round-trip *exactly* through JSON:

* ints, strs, bools, ``None`` are native;
* floats serialise via ``repr`` (Python's ``json``), which round-trips every
  finite float bit-identically — and the engine validates inputs finite;
* SQL ``DATE`` values and the ``ST_Polygon`` aggregate have no JSON native
  form, so they encode as tagged objects (``{"$date": ...}``,
  ``{"$polygon": [[x, y], ...]}``) that :func:`decode_value` reverses.

Pagination (``limit``/``cursor``) operates on whichever result list a
payload carries (rows, groups, or pairs) and annotates the window with
``offset`` / ``total`` / ``next_cursor`` so clients can walk large results
without re-running the query.
"""

from __future__ import annotations

import datetime as dt
import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.polygon import Polygon
from repro.server.protocol import HttpError

__all__ = [
    "encode_value",
    "decode_value",
    "plan_payload",
    "query_result_payload",
    "grouping_result_payload",
    "join_pairs_payload",
    "paginate_payload",
    "ndjson_chunks",
]


def encode_value(value: object) -> object:
    """Encode one SQL result value into its JSON wire form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dt.date):
        return {"$date": value.isoformat()}
    if isinstance(value, Polygon):
        return {"$polygon": [[float(x), float(y)] for x, y in value.vertices]}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    # Unknown engine type: keep the response well-formed rather than failing
    # the whole result; the tagged string is still deterministic.
    return {"$str": str(value)}


def decode_value(value: object) -> object:
    """Reverse :func:`encode_value` (client-side convenience)."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return dt.date.fromisoformat(value["$date"])
        if set(value) == {"$polygon"}:
            return Polygon(tuple((x, y) for x, y in value["$polygon"]))
        if set(value) == {"$str"}:
            return value["$str"]
    return value


def plan_payload(plan) -> Optional[Dict[str, object]]:
    """The advisory :class:`~repro.engine.cost.PhysicalPlan`, or ``None``."""
    if plan is None:
        return None
    return {
        "op": plan.op,
        "mode": plan.mode,
        "workers": plan.workers,
        "shards": plan.shards,
        "est_cost": plan.est_cost,
        "est_rows": plan.est_rows,
        "reason": plan.reason,
    }


def query_result_payload(result) -> Dict[str, object]:
    """Wire form of a :class:`~repro.minidb.database.QueryResult`."""
    return {
        "columns": list(result.columns),
        "rows": [[encode_value(value) for value in row] for row in result.rows],
        "rowcount": result.rowcount,
        "plan": plan_payload(result.plan),
        "rewrites": list(getattr(result, "rewrites", ())),
    }


def grouping_result_payload(result) -> Dict[str, object]:
    """Wire form of a :class:`~repro.core.result.GroupingResult`."""
    return {
        "groups": [list(members) for members in result.groups],
        "eliminated": list(result.eliminated),
        "points": [list(point) for point in result.points],
        "group_count": result.group_count,
        "plan": plan_payload(result.plan),
    }


def join_pairs_payload(pairs) -> Dict[str, object]:
    """Wire form of a similarity-join pair list."""
    out = [[int(i), int(j)] for i, j in pairs]
    return {"pairs": out, "count": len(out)}


_PAGEABLE_KEYS = ("rows", "groups", "pairs")


def _page_window(
    params: Dict[str, str], max_page_rows: int
) -> Tuple[Optional[int], int]:
    """Parse ``limit``/``cursor`` query parameters into ``(limit, offset)``."""
    limit: Optional[int] = None
    offset = 0
    if "limit" in params:
        try:
            limit = int(params["limit"])
        except ValueError as exc:
            raise HttpError(400, f"limit must be an integer: {params['limit']!r}") from exc
        if limit <= 0:
            raise HttpError(400, "limit must be positive")
        limit = min(limit, max_page_rows)
    if "cursor" in params:
        try:
            offset = int(params["cursor"])
        except ValueError as exc:
            raise HttpError(400, f"malformed cursor: {params['cursor']!r}") from exc
        if offset < 0:
            raise HttpError(400, "malformed cursor: negative offset")
    return limit, offset


def paginate_payload(
    payload: Dict[str, object], params: Dict[str, str], max_page_rows: int
) -> Dict[str, object]:
    """Apply the request's page window to the payload's result list.

    Without ``limit``/``cursor`` the payload is returned untouched (the
    bit-identity the equivalence suite checks).  With a window, the list
    under the payload's pageable key (``rows``, ``groups``, or ``pairs``) is
    sliced and the page is annotated with ``offset``, ``total``, and
    ``next_cursor`` (``None`` on the last page).
    """
    if "limit" not in params and "cursor" not in params:
        return payload
    limit, offset = _page_window(params, max_page_rows)
    key = next((k for k in _PAGEABLE_KEYS if k in payload), None)
    if key is None:
        raise HttpError(400, "this response has no pageable result list")
    full: List[object] = payload[key]  # type: ignore[assignment]
    window = full[offset:] if limit is None else full[offset : offset + limit]
    paged = dict(payload)
    paged[key] = window
    paged["offset"] = offset
    paged["total"] = len(full)
    next_offset = offset + len(window)
    paged["next_cursor"] = str(next_offset) if next_offset < len(full) else None
    return paged


def ndjson_chunks(payload: Dict[str, object]) -> Iterator[bytes]:
    """Stream a payload as NDJSON: one header line, one line per list item.

    The header is the payload minus its pageable list (plus the list's key
    under ``"streaming"``); each subsequent line is one element of that
    list.  Reassembling the lines therefore reproduces the buffered payload
    exactly — the streaming suite asserts it.
    """
    key = next((k for k in _PAGEABLE_KEYS if k in payload), None)
    if key is None:
        raise HttpError(400, "this response has no streamable result list")
    header = {k: v for k, v in payload.items() if k != key}
    header["streaming"] = key
    yield json.dumps(header).encode("utf-8") + b"\n"
    for item in payload[key]:  # type: ignore[union-attr]
        yield json.dumps(item).encode("utf-8") + b"\n"
