"""Run a server inside the current process (tests, examples, benchmarks).

:class:`ServerThread` hosts one :class:`~repro.server.app.App` on a private
asyncio event loop in a daemon thread — the caller's thread stays free to
issue HTTP requests against it.  The context-manager protocol guarantees the
drain path runs on exit, and the engine's shared worker pools are *not* torn
down (that flag is process-wide; only the standalone ``python -m
repro.server`` flips it).

    with running_server(database=db) as server:
        payload = server.client().query("SELECT count(*) FROM t ...")
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.minidb.database import Database
from repro.server.app import App, create_app
from repro.server.settings import ServerSettings

__all__ = ["ServerThread", "running_server"]


class ServerThread:
    """Host an app on a background event loop; start/stop from any thread."""

    def __init__(self, app: App) -> None:
        self.app = app
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("server failed to start within 15s")
        if self._boot_error is not None:
            raise RuntimeError("server failed to boot") from self._boot_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.app.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            self._boot_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            # stop() was requested: run the graceful drain on this loop so
            # in-flight handlers finish on their own event loop.
            loop.run_until_complete(self.app.stop(drain_engine=False))
        finally:
            loop.close()

    def stop(self, timeout: float = 20.0) -> None:
        """Stop serving and join the thread (idempotent)."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- conveniences ------------------------------------------------------

    @property
    def port(self) -> int:
        return self.app.port

    @property
    def host(self) -> str:
        return self.app.host

    def client(self):
        """A fresh client for this server (one per thread, please)."""
        return self.app.client()


@contextmanager
def running_server(
    settings: Optional[ServerSettings] = None,
    database: Optional[Database] = None,
    **overrides,
) -> Iterator[ServerThread]:
    """Context manager: a served app on an ephemeral port.

    ``overrides`` are :class:`ServerSettings` fields; the port defaults to 0
    (ephemeral) so parallel test runs never collide.
    """
    if settings is None:
        overrides.setdefault("port", 0)
        settings = ServerSettings.resolve(**overrides)
    app = create_app(settings, database=database)
    server = ServerThread(app)
    with server:
        yield server
