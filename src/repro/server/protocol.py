"""Minimal HTTP/1.1 on asyncio streams: request parsing, response writing.

This is deliberately the smallest protocol surface the service needs — no
third-party framework, no ``http.server`` thread-per-connection model.  A
connection is one coroutine: it parses pipelined requests off the
:class:`asyncio.StreamReader` (request line, headers, ``Content-Length``
body), hands each to the app, and writes the response back, honouring
HTTP/1.1 keep-alive.  Responses either carry a ``Content-Length`` or stream
NDJSON chunks with ``Transfer-Encoding: chunked``.

Malformed input never takes the server down: parse failures map to 4xx
responses through :class:`HttpError`, and a connection that disappears
mid-request is simply closed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "StreamingResponse",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
]

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_SUPPORTED_METHODS = {"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"}


class HttpError(Exception):
    """A request-level failure mapped to an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON; 400 on syntax errors, ``{}`` when empty."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """A buffered response with a known ``Content-Length``."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class StreamingResponse:
    """A chunked response whose body is produced line by line (NDJSON)."""

    chunks: Iterable[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(payload: object, status: int = 200) -> Response:
    """Encode ``payload`` as a JSON response body."""
    return Response(status=status, body=json.dumps(payload).encode("utf-8"))


def error_response(status: int, message: str, error_type: str = "HttpError") -> Response:
    """The uniform error body: ``{"error": {"type": ..., "message": ...}}``."""
    return json_response(
        {"error": {"type": error_type, "message": message, "status": status}},
        status=status,
    )


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = 64 * 1024,
    max_body_bytes: int = 32 * 1024 * 1024,
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` for anything malformed or over the size
    ceilings — the connection handler turns that into a 4xx response and
    closes the connection (the stream position is unreliable after a parse
    failure).
    """
    try:
        request_line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise HttpError(431, "request line too long") from exc
    if not request_line:
        return None  # clean EOF between requests
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line[:80]!r}")
    method, target, version = parts
    method = method.upper()
    if method not in _SUPPORTED_METHODS:
        raise HttpError(400, f"unsupported method {method!r}")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise HttpError(431, "header line too long") from exc
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if header_bytes > max_header_bytes:
            raise HttpError(431, "request headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"request body exceeds {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None  # peer went away mid-body
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        path=unquote(split.path) or "/",
        params=params,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: Dict[str, str], keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    lines.append("Connection: keep-alive" if keep_alive else "Connection: close")
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    response: "Response | StreamingResponse",
    keep_alive: bool = True,
) -> None:
    """Serialise one response onto the wire (buffered or chunked)."""
    if isinstance(response, Response):
        head = _head(response.status, response.content_type, response.headers, keep_alive)
        writer.write(
            head + f"Content-Length: {len(response.body)}\r\n\r\n".encode("latin-1")
        )
        writer.write(response.body)
        await writer.drain()
        return
    head = _head(response.status, response.content_type, response.headers, keep_alive)
    writer.write(head + b"Transfer-Encoding: chunked\r\n\r\n")
    for chunk in response.chunks:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
