"""Standalone entry point: ``python -m repro.server``.

Boots one app from the command line (flags override ``SGB_SERVER_*``
environment variables), prints the bound address, and serves until SIGTERM
or SIGINT — either triggers the graceful drain: in-flight requests finish,
new ones get 503, background jobs complete, the engine's shared worker
pools shut down through the interpreter-shutdown path, and persistent
tables flush.  Exit code 0 means the drain completed.

Multi-worker deploys run several of these processes behind any TCP load
balancer — see the README's "Serving" section.  State that must be shared
across workers (persistent tables, the spill tier of the result cache)
lives in directories; point every worker at the same ``--data`` /
``SGB_CACHE`` paths and at distinct ``--port``\\ s.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.server.app import create_app
from repro.server.settings import ServerSettings


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the SGB engine over HTTP (stdlib only).",
    )
    parser.add_argument("--host", default=None, help="listen address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=None, help="listen port; 0 binds an ephemeral port"
    )
    parser.add_argument("--token", default=None, help="require this bearer token")
    parser.add_argument(
        "--data", default=None, help="storage directory (persistent tables load on boot)"
    )
    parser.add_argument("--spool", default=None, help="job result spool directory")
    parser.add_argument(
        "--cache",
        default=None,
        help="result cache: a spill directory, or unset to follow SGB_CACHE",
    )
    parser.add_argument(
        "--request-workers", type=int, default=None, help="request thread-pool size"
    )
    parser.add_argument(
        "--job-workers", type=int, default=None, help="background job threads"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="seconds to wait for in-flight requests on shutdown",
    )
    return parser.parse_args(argv)


async def _serve(settings: ServerSettings) -> None:
    app = create_app(settings)
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop_event.set)
    await app.start()
    print(f"repro.server listening on http://{app.host}:{app.port}", flush=True)
    await stop_event.wait()
    print("repro.server draining (in-flight requests finish, new ones get 503)", flush=True)
    await app.stop(drain_engine=True)
    print("repro.server stopped cleanly", flush=True)


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    settings = ServerSettings.resolve(
        host=args.host,
        port=args.port,
        auth_token=args.token,
        data_path=args.data,
        spool_dir=args.spool,
        cache=args.cache,
        request_workers=args.request_workers,
        job_workers=args.job_workers,
        drain_timeout=args.drain_timeout,
    )
    asyncio.run(_serve(settings))
    return 0


if __name__ == "__main__":
    sys.exit(main())
