"""Background job executor: async queries with spooled, durable results.

``POST ...?mode=async`` routes hand their work here instead of blocking the
HTTP request: the executor runs the same handler function on its own thread
pool, records the job's lifecycle (``queued → running → done | error``), and
spools the finished JSON payload through a
:class:`repro.storage.store.LocalFileStore` — the PR 8 byte-store — so large
results live on disk, survive being paged, and are served (paginated or
streamed) by ``GET /v1/jobs/<id>/result`` without re-running the query.

The registry is guarded by one lock; jobs are kept until ``DELETE``\\ d or the
bounded history evicts the oldest finished ones.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Optional

from repro.storage.store import AbstractStore

__all__ = ["Job", "JobExecutor"]

#: Finished jobs kept for polling before the oldest are evicted.
_HISTORY_LIMIT = 256


class Job:
    """Lifecycle record of one background job."""

    __slots__ = (
        "id",
        "kind",
        "status",
        "created",
        "started",
        "finished",
        "error",
        "error_type",
    )

    def __init__(self, job_id: str, kind: str) -> None:
        self.id = job_id
        self.kind = kind
        self.status = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        self.error_type: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        """The job's wire form (the ``GET /v1/jobs/<id>`` body)."""
        out: Dict[str, object] = {
            "job_id": self.id,
            "kind": self.kind,
            "status": self.status,
            "created": self.created,
        }
        if self.started is not None:
            out["started"] = self.started
        if self.finished is not None:
            out["finished"] = self.finished
            out["runtime_s"] = round(self.finished - (self.started or self.created), 6)
        if self.error is not None:
            out["error"] = {"type": self.error_type, "message": self.error}
        if self.status == "done":
            out["result"] = f"/v1/jobs/{self.id}/result"
        return out


class JobExecutor:
    """Run payload-producing functions in the background, spool their output.

    ``spool`` is any byte store; finished payloads are stored under the job
    id as UTF-8 JSON.  The executor is content-agnostic: a job function
    returns the same JSON-ready payload dict its synchronous route would
    have sent, so an async query's eventual result is bit-identical to the
    blocking call — the equivalence suite covers exactly that.
    """

    def __init__(self, spool: AbstractStore, workers: int = 2) -> None:
        self.spool = spool
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._futures: Dict[str, Future] = {}
        self._accepting = True

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, fn: Callable[[], Dict[str, object]]) -> Job:
        """Queue ``fn`` and return its job record immediately.

        Raises :class:`RuntimeError` once the executor stopped accepting
        (drain in progress) — the route maps that to 503.
        """
        job = Job(secrets.token_hex(12), kind)
        with self._lock:
            if not self._accepting:
                raise RuntimeError("job executor is draining")
            self._jobs[job.id] = job
            self._evict_locked()
            future = self._executor.submit(self._run, job, fn)
            self._futures[job.id] = future
        return job

    def _run(self, job: Job, fn: Callable[[], Dict[str, object]]) -> None:
        with self._lock:
            job.status = "running"
            job.started = time.time()
        try:
            payload = fn()
            blob = json.dumps(payload).encode("utf-8")
        except Exception as exc:  # noqa: BLE001 - job errors become job state
            with self._lock:
                job.status = "error"
                job.error = str(exc)
                job.error_type = type(exc).__name__
                job.finished = time.time()
            return
        self.spool.put(job.id, blob)
        with self._lock:
            job.status = "done"
            job.finished = time.time()

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        """The job record, or ``None`` for an unknown (or evicted) id."""
        with self._lock:
            return self._jobs.get(job_id)

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        """The spooled payload of a finished job, or ``None``."""
        blob = self.spool.get(job_id)
        if blob is None:
            return None
        try:
            payload = json.loads(blob)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def delete(self, job_id: str) -> bool:
        """Forget a job and its spooled result; ``True`` if it existed."""
        with self._lock:
            job = self._jobs.pop(job_id, None)
            future = self._futures.pop(job_id, None)
        if future is not None:
            future.cancel()
        self.spool.delete(job_id)
        return job is not None

    def stats(self) -> Dict[str, object]:
        """Counts per status plus spool usage (the /v1/stats body)."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            accepting = self._accepting
        return {
            "jobs": by_status,
            "accepting": accepting,
            "spool_bytes": self.spool.total_bytes(),
        }

    # -- lifecycle ---------------------------------------------------------

    def _evict_locked(self) -> None:
        if len(self._jobs) <= _HISTORY_LIMIT:
            return
        finished = sorted(
            (job for job in self._jobs.values() if job.finished is not None),
            key=lambda job: job.finished,
        )
        for job in finished[: len(self._jobs) - _HISTORY_LIMIT]:
            self._jobs.pop(job.id, None)
            self._futures.pop(job.id, None)
            self.spool.delete(job.id)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) wait for running ones."""
        with self._lock:
            self._accepting = False
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
