"""Direct operator routes: ``/v1/sgb`` and ``/v1/join`` over JSON batches.

These bypass SQL entirely: the client posts raw point batches (lists of
coordinate arrays — JSON floats round-trip bit-identically) and gets back
the JSON form of the exact :class:`~repro.core.result.GroupingResult` /
pair list the in-process :func:`repro.sgb_any` / :func:`repro.sim_join`
call would return.  Result-changing parameters (eps/k, metric, strategy,
overlap action, seed) are plumbed through verbatim; the app's result cache
is shared with the SQL path, so identical batches hit warm entries
regardless of which route computed them first.  Both routes accept
``?mode=async`` for long runs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.server.jsonio import grouping_result_payload, join_pairs_payload
from repro.server.protocol import HttpError, Request, json_response
from repro.server.routes import finish

__all__ = ["handle_sgb", "handle_join"]


def _require_points(body: Dict[str, object], key: str) -> List[List[float]]:
    points = body.get(key)
    if not isinstance(points, list) or not all(isinstance(p, list) for p in points):
        raise HttpError(400, f'"{key}" must be a list of coordinate arrays')
    return points


def _require_number(body: Dict[str, object], key: str) -> float:
    value = body.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise HttpError(400, f'"{key}" must be a number')
    return value


def _maybe_async(app, request: Request, kind: str, run):
    if request.params.get("mode") == "async":
        job = app.submit_job(kind, run)
        return json_response(
            {"job_id": job.id, "status": job.status, "poll": f"/v1/jobs/{job.id}"},
            status=202,
        )
    return None


async def handle_sgb(app, request: Request, params):
    body = request.json()
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    points = _require_points(body, "points")
    eps = _require_number(body, "eps")
    kind = body.get("kind", "any")
    metric = body.get("metric", "L2")
    workers = body.get("workers")

    if kind == "any":
        strategy = body.get("strategy", "index")

        def run() -> dict:
            from repro.core.api import sgb_any

            return grouping_result_payload(
                sgb_any(
                    points,
                    eps,
                    metric=metric,
                    strategy=strategy,
                    workers=workers,
                    cache=app.settings.cache,
                )
            )

    elif kind == "all":
        strategy = body.get("strategy", "index")
        on_overlap = body.get("on_overlap", "JOIN-ANY")
        seed = body.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise HttpError(400, '"seed" must be an integer')

        def run() -> dict:
            from repro.core.api import sgb_all

            return grouping_result_payload(
                sgb_all(
                    points,
                    eps,
                    metric=metric,
                    strategy=strategy,
                    on_overlap=on_overlap,
                    seed=seed,
                    cache=app.settings.cache,
                )
            )

    else:
        raise HttpError(400, f'unknown sgb kind {kind!r} ("any" or "all")')

    queued = _maybe_async(app, request, f"sgb_{kind}", run)
    if queued is not None:
        return queued
    payload = await app.run_sync(run)
    return finish(app, request, payload)


async def handle_join(app, request: Request, params):
    body = request.json()
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    left = _require_points(body, "left")
    right = _require_points(body, "right")
    eps = body.get("eps")
    k = body.get("k")
    if (eps is None) == (k is None):
        raise HttpError(400, 'pass exactly one of "eps" (eps-join) or "k" (kNN-join)')
    if eps is not None:
        eps = _require_number(body, "eps")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool)):
        raise HttpError(400, '"k" must be an integer')
    metric = body.get("metric", "L2")
    workers = body.get("workers")
    backend = body.get("backend")

    def run() -> dict:
        from repro.core.api import sim_join

        return join_pairs_payload(
            sim_join(
                left,
                right,
                eps=eps,
                k=k,
                metric=metric,
                workers=workers,
                backend=backend,
                cache=app.settings.cache,
            )
        )

    queued = _maybe_async(app, request, "join", run)
    if queued is not None:
        return queued
    payload = await app.run_sync(run)
    return finish(app, request, payload)
