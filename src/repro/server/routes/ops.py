"""Ops surface: ``/v1/health`` (unauthenticated probe) and ``/v1/stats``.

Health is what load balancers and the CI smoke step poll: it answers even
while the server drains (reporting ``"draining"``) and never requires the
auth token.  Stats aggregates everything the operator needs at a glance:
per-route latency counters, result-cache hit rates, the shared worker-pool
state, and the background executor's queue.
"""

from __future__ import annotations

import time

from repro import __version__
from repro.server.protocol import Request, json_response

__all__ = ["handle_health", "handle_stats"]


async def handle_health(app, request: Request, params):
    return json_response(
        {
            "status": "draining" if app.draining else "ok",
            "version": __version__,
            "uptime_s": round(time.time() - app.started_at, 3),
            "tables": len(app.db.table_names()),
        }
    )


async def handle_stats(app, request: Request, params):
    from repro.engine.workers import pool_stats

    cache = app.result_cache
    return json_response(
        {
            "routes": app.metrics.snapshot(),
            "cache": None
            if cache is None
            else {"hits": cache.hits, "misses": cache.misses, "puts": cache.puts},
            "pool": pool_stats(),
            "executor": app.jobs.stats(),
            "inflight": app.inflight,
            "draining": app.draining,
        }
    )
