"""Route table and dispatch: one handler module per service domain.

Handlers are ``async def handler(app, request, params)`` returning a
:class:`~repro.server.protocol.Response` or ``StreamingResponse``; ``params``
are the values captured by ``{placeholders}`` in the route template.  The
router matches on exact segment count, distinguishing 404 (no template fits
the path) from 405 (the path exists under another method).

Domains:

* :mod:`repro.server.routes.query`  — SQL over HTTP (``/v1/query``) and bulk
  row loading (``/v1/load``);
* :mod:`repro.server.routes.points` — the direct point-batch operators
  (``/v1/sgb``, ``/v1/join``);
* :mod:`repro.server.routes.jobs`   — background job polling and results;
* :mod:`repro.server.routes.ops`    — health and stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.server.protocol import (
    HttpError,
    Request,
    Response,
    StreamingResponse,
    json_response,
)
from repro.server.jsonio import ndjson_chunks, paginate_payload

Handler = Callable[..., Awaitable["Response | StreamingResponse"]]

__all__ = ["Route", "Router", "build_router", "finish"]


@dataclass
class Route:
    method: str
    template: str
    handler: Handler

    def __post_init__(self) -> None:
        self.segments = [s for s in self.template.split("/") if s]


class Router:
    """Match ``(method, path)`` to a route and its captured parameters."""

    def __init__(self, routes: List[Route]) -> None:
        self.routes = routes

    def match(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        segments = [s for s in path.split("/") if s]
        path_matched = False
        for route in self.routes:
            params = _match_segments(route.segments, segments)
            if params is None:
                continue
            path_matched = True
            if route.method == method:
                return route, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")


def _match_segments(
    template: List[str], segments: List[str]
) -> Optional[Dict[str, str]]:
    if len(template) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(template, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


def finish(app, request: Request, payload: Dict[str, object], status: int = 200):
    """Terminate a payload-producing handler uniformly.

    Applies the request's pagination window, then either buffers the JSON
    body or streams it as NDJSON when ``?format=ndjson`` was asked for.
    Every payload route funnels through here, so pagination and streaming
    behave identically across domains.
    """
    fmt = request.params.get("format", "json").lower()
    paged = paginate_payload(payload, request.params, app.settings.max_page_rows)
    if fmt == "ndjson":
        return StreamingResponse(ndjson_chunks(paged), status=status)
    if fmt != "json":
        raise HttpError(400, f"unknown format {fmt!r} (json or ndjson)")
    return json_response(paged, status)


def build_router() -> Router:
    """The service's full route table."""
    from repro.server.routes import jobs, ops, points, query

    return Router(
        [
            Route("POST", "/v1/query", query.handle_query),
            Route("POST", "/v1/load", query.handle_load),
            Route("POST", "/v1/sgb", points.handle_sgb),
            Route("POST", "/v1/join", points.handle_join),
            Route("GET", "/v1/jobs/{job_id}", jobs.handle_status),
            Route("GET", "/v1/jobs/{job_id}/result", jobs.handle_result),
            Route("DELETE", "/v1/jobs/{job_id}", jobs.handle_delete),
            Route("GET", "/v1/health", ops.handle_health),
            Route("GET", "/v1/stats", ops.handle_stats),
        ]
    )
