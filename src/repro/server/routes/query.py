"""SQL over HTTP: the ``/v1/query`` and ``/v1/load`` handlers.

``POST /v1/query`` runs one statement of the full minidb dialect — plain
SELECTs, the SGB clauses (``DISTANCE-TO-ANY/ALL``, ``WINDOW``), SIMILARITY
JOIN, EXPLAIN, and DDL/DML — through the app's shared
:class:`~repro.minidb.database.Database`.  The response body is the JSON
form of the in-process :class:`QueryResult`, bit-identical after a JSON
round trip (the equivalence suite's contract).  ``?mode=async`` queues the
statement on the background executor instead and returns ``202`` with a job
id.

``POST /v1/load`` bulk-inserts rows, decoding the tagged wire values
(``{"$date": ...}``) back into engine types.
"""

from __future__ import annotations

from repro.server.jsonio import decode_value, query_result_payload
from repro.server.protocol import HttpError, Request, json_response
from repro.server.routes import finish

__all__ = ["handle_query", "handle_load"]


def _require_sql(body: object) -> "tuple[str, object]":
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    sql = body.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise HttpError(400, 'request body needs a non-empty "sql" string')
    strategy = body.get("strategy")
    if strategy is not None and not isinstance(strategy, str):
        raise HttpError(400, '"strategy" must be a string when given')
    return sql, strategy


async def handle_query(app, request: Request, params):
    sql, strategy = _require_sql(request.json())

    def run() -> dict:
        return query_result_payload(app.db.execute(sql, sgb_strategy=strategy))

    if request.params.get("mode") == "async":
        job = app.submit_job("query", run)
        return json_response(
            {"job_id": job.id, "status": job.status, "poll": f"/v1/jobs/{job.id}"},
            status=202,
        )
    payload = await app.run_sync(run)
    return finish(app, request, payload)


async def handle_load(app, request: Request, params):
    body = request.json()
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    table = body.get("table")
    rows = body.get("rows")
    if not isinstance(table, str) or not table.strip():
        raise HttpError(400, 'request body needs a "table" name')
    if not isinstance(rows, list) or not all(isinstance(r, list) for r in rows):
        raise HttpError(400, '"rows" must be a list of row arrays')
    decoded = [[decode_value(value) for value in row] for row in rows]

    def run() -> int:
        return app.db.insert_rows(table, decoded)

    inserted = await app.run_sync(run)
    return json_response({"table": table, "inserted": inserted})
