"""Background job routes: poll status, fetch spooled results, clean up.

``GET /v1/jobs/<id>`` is the polling endpoint ``?mode=async`` submissions
point at; ``GET /v1/jobs/<id>/result`` serves the spooled payload of a
finished job — with the same pagination (``limit``/``cursor``) and NDJSON
streaming any synchronous route supports, since the spool stores exactly
the payload the synchronous response would have carried.
"""

from __future__ import annotations

from repro.server.protocol import HttpError, Request, json_response
from repro.server.routes import finish

__all__ = ["handle_status", "handle_result", "handle_delete"]


def _require_job(app, job_id: str):
    job = app.jobs.get(job_id)
    if job is None:
        raise HttpError(404, f"unknown job {job_id!r}")
    return job


async def handle_status(app, request: Request, params):
    job = _require_job(app, params["job_id"])
    return json_response(job.describe())


async def handle_result(app, request: Request, params):
    job = _require_job(app, params["job_id"])
    if job.status in ("queued", "running"):
        raise HttpError(409, f"job {job.id} is still {job.status}; poll /v1/jobs/{job.id}")
    if job.status == "error":
        raise HttpError(409, f"job {job.id} failed: {job.error}")
    payload = app.jobs.result(job.id)
    if payload is None:
        # Finished but the spool entry is gone (evicted or tampered with).
        raise HttpError(404, f"result of job {job.id} is no longer available")
    return finish(app, request, payload)


async def handle_delete(app, request: Request, params):
    existed = app.jobs.delete(params["job_id"])
    return json_response({"job_id": params["job_id"], "deleted": existed})
