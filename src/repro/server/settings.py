"""Server configuration: one dataclass, resolved once at app creation.

Settings come from three places, strongest first: keyword overrides passed to
:meth:`ServerSettings.resolve`, ``SGB_SERVER_*`` environment variables, and
the dataclass defaults.  The app factory never reads the environment again
after construction, so a test can freeze a configuration simply by building
the settings itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Optional

__all__ = ["ServerSettings"]

_ENV_PREFIX = "SGB_SERVER_"


@dataclass
class ServerSettings:
    """Configuration of one :class:`~repro.server.app.App` instance.

    Attributes
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound port
        is published on ``app.port`` once serving starts — tests and the
        smoke script rely on this).
    auth_token:
        When set, every route except ``GET /v1/health`` requires the token
        via ``Authorization: Bearer <token>`` (or ``X-Auth-Token``);
        ``None`` disables authentication (local development).
    data_path:
        Optional storage directory passed to ``Database.open`` — the served
        database then loads persistent tables on boot and flushes them on
        shutdown.  ``None`` serves a fresh in-memory database.
    cache:
        Result-cache knob forwarded to the :class:`Database` (same values as
        ``Database(cache=...)``); cache hit counters surface on
        ``GET /v1/stats``.
    sgb_workers:
        Session default for SGB worker processes, forwarded to the database.
    request_workers:
        Size of the thread pool that runs engine work off the event loop —
        the degree of request concurrency for CPU-bound queries.
    job_workers:
        Threads of the background job executor (``?mode=async`` requests).
    spool_dir:
        Directory where finished job results are spooled; ``None`` creates a
        per-app temporary directory.
    max_body_bytes, max_header_bytes:
        Request size ceilings (413 / 431 beyond them).
    max_page_rows:
        Ceiling for the ``limit`` pagination parameter; a larger request is
        clamped, and responses always report the effective window.
    drain_timeout:
        Seconds the graceful shutdown waits for in-flight requests before
        closing anyway.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    auth_token: Optional[str] = None
    data_path: Optional[str] = None
    cache: object = None
    sgb_workers: "Optional[int | str]" = None
    request_workers: int = 8
    job_workers: int = 2
    spool_dir: Optional[str] = None
    max_body_bytes: int = 32 * 1024 * 1024
    max_header_bytes: int = 64 * 1024
    max_page_rows: int = 100_000
    drain_timeout: float = 10.0

    @classmethod
    def resolve(cls, **overrides) -> "ServerSettings":
        """Build settings from the environment plus keyword ``overrides``.

        Environment variables are named after the upper-cased field with the
        ``SGB_SERVER_`` prefix (``SGB_SERVER_PORT``, ``SGB_SERVER_TOKEN`` as
        the spelling of ``auth_token``, ...).  Unparsable numeric values fall
        back to the default rather than failing the boot.
        """
        values: dict = {}
        aliases = {"auth_token": "TOKEN", "data_path": "DATA", "spool_dir": "SPOOL"}
        int_fields = {
            "port",
            "request_workers",
            "job_workers",
            "max_body_bytes",
            "max_header_bytes",
            "max_page_rows",
        }
        for field in fields(cls):
            env_name = _ENV_PREFIX + aliases.get(field.name, field.name.upper())
            raw = os.environ.get(env_name)
            if raw is None or raw == "":
                continue
            if field.name in int_fields:
                try:
                    values[field.name] = int(raw)
                except ValueError:
                    continue
            elif field.name == "drain_timeout":
                try:
                    values[field.name] = float(raw)
                except ValueError:
                    continue
            else:
                values[field.name] = raw
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)
