"""A small stdlib client for the service (``http.client`` underneath).

This is what the test suite, the serving benchmark, and the example script
talk to the server with — and a reasonable starting point for real callers.
One :class:`ServerClient` holds one keep-alive connection and is therefore
*not* thread-safe; concurrent callers create one client per thread (cheap —
the connection dials lazily).

Every helper returns the decoded JSON payload and raises
:class:`ServerError` (carrying the status and the server's error body) on
non-2xx responses.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ServerClient", "ServerError"]


class ServerError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload: object) -> None:
        message = status
        if isinstance(payload, dict) and isinstance(payload.get("error"), dict):
            message = f"{status}: {payload['error'].get('message')}"
        super().__init__(str(message))
        self.status = status
        self.payload = payload


class ServerClient:
    """HTTP client bound to one server address (single connection, keep-alive)."""

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Close the underlying connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @staticmethod
    def _target(path: str, params: Optional[Dict[str, object]]) -> str:
        if not params:
            return path
        from urllib.parse import urlencode

        return f"{path}?{urlencode({k: v for k, v in params.items() if v is not None})}"

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _getresponse(
        self, method: str, target: str, body: Optional[bytes]
    ) -> http.client.HTTPResponse:
        headers = self._headers()
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, target, body=body, headers=headers)
            return conn.getresponse()
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            # The keep-alive connection went stale (server restart, timeout);
            # dial a fresh one and retry once.
            self.close()
            conn = self._connection()
            conn.request(method, target, body=body, headers=headers)
            return conn.getresponse()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, object]:
        """One buffered request; returns ``(status, decoded JSON body)``."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        response = self._getresponse(method, self._target(path, params), body)
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else None
        except ValueError:
            decoded = raw.decode("utf-8", "replace")
        return response.status, decoded

    def _checked(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        params: Optional[Dict[str, object]] = None,
        expect: Tuple[int, ...] = (200,),
    ) -> object:
        status, decoded = self.request(method, path, payload, params)
        if status not in expect:
            raise ServerError(status, decoded)
        return decoded

    # -- domain helpers ----------------------------------------------------

    def health(self) -> dict:
        return self._checked("GET", "/v1/health")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def query(
        self,
        sql: str,
        strategy: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> dict:
        """Run one SQL statement; returns the JSON ``QueryResult`` payload."""
        body: Dict[str, object] = {"sql": sql}
        if strategy is not None:
            body["strategy"] = strategy
        return self._checked(
            "POST", "/v1/query", body, params={"limit": limit, "cursor": cursor}
        )

    def query_async(self, sql: str, strategy: Optional[str] = None) -> str:
        """Queue one SQL statement; returns the job id."""
        body: Dict[str, object] = {"sql": sql}
        if strategy is not None:
            body["strategy"] = strategy
        out = self._checked(
            "POST", "/v1/query", body, params={"mode": "async"}, expect=(202,)
        )
        return out["job_id"]

    def query_stream(self, sql: str) -> Iterator[object]:
        """Run one SQL statement streamed as NDJSON; yields decoded lines.

        The first yielded object is the header (columns, plan, the streamed
        key under ``"streaming"``); every following one is a row.
        """
        body = json.dumps({"sql": sql}).encode("utf-8")
        response = self._getresponse(
            "POST", self._target("/v1/query", {"format": "ndjson"}), body
        )
        if response.status != 200:
            raw = response.read()
            try:
                decoded = json.loads(raw)
            except ValueError:
                decoded = raw.decode("utf-8", "replace")
            raise ServerError(response.status, decoded)
        while True:
            line = response.readline()
            if not line:
                break
            line = line.strip()
            if line:
                yield json.loads(line)

    def load(self, table: str, rows: List[List[object]]) -> int:
        """Bulk-insert rows; returns the inserted count."""
        out = self._checked("POST", "/v1/load", {"table": table, "rows": rows})
        return out["inserted"]

    def sgb(self, points, eps: float, kind: str = "any", **options) -> dict:
        """Run SGB over a point batch; returns the grouping payload."""
        body: Dict[str, object] = {"points": points, "eps": eps, "kind": kind}
        body.update(options)
        return self._checked("POST", "/v1/sgb", body)

    def join(self, left, right, eps=None, k=None, **options) -> dict:
        """Similarity-join two point batches; returns the pairs payload."""
        body: Dict[str, object] = {"left": left, "right": right}
        if eps is not None:
            body["eps"] = eps
        if k is not None:
            body["k"] = k
        body.update(options)
        return self._checked("POST", "/v1/join", body)

    def job(self, job_id: str) -> dict:
        """Poll one job's status."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def job_result(
        self,
        job_id: str,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> dict:
        """Fetch a finished job's spooled payload."""
        return self._checked(
            "GET",
            f"/v1/jobs/{job_id}/result",
            params={"limit": limit, "cursor": cursor},
        )

    def wait_job(self, job_id: str, timeout: float = 60.0, poll: float = 0.02) -> dict:
        """Poll until the job leaves ``queued``/``running``; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] not in ("queued", "running"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {record['status']} after {timeout}s")
            time.sleep(poll)

    def delete_job(self, job_id: str) -> bool:
        out = self._checked("DELETE", f"/v1/jobs/{job_id}")
        return out["deleted"]
