"""The app factory: one :class:`App` binds the engine to the HTTP front-end.

``create_app(settings)`` wires together a shared
:class:`~repro.minidb.database.Database` (optionally opened on a storage
directory), a request thread pool that runs engine work off the event loop,
the background job executor with its result spool, per-route metrics, and
the route table.  The app owns the full request lifecycle:

1. parse (``protocol.read_request``) — size-limited, keep-alive aware;
2. authenticate (``auth.authenticate``) — every route but the health probe;
3. dispatch to the matched handler, counting the request as in-flight;
4. map failures to JSON errors (``HttpError`` → its status, every
   :class:`~repro.exceptions.ReproError` → 400, anything else → 500);
5. record latency per route template.

Graceful shutdown (:meth:`App.stop`) drains rather than drops: new requests
are rejected with 503 (health keeps answering, reporting ``draining``),
in-flight requests finish within ``drain_timeout``, the job executor stops
accepting and finishes running jobs, and — when the process is really going
away — the engine's shared worker pools are torn down through
:func:`repro.engine.workers.begin_shutdown` so nothing respawns processes
mid-exit.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

from repro.exceptions import ReproError
from repro.minidb.database import Database
from repro.server.auth import authenticate
from repro.server.jobs import Job, JobExecutor
from repro.server.metrics import RouteMetrics
from repro.server.protocol import (
    HttpError,
    Request,
    Response,
    StreamingResponse,
    error_response,
    read_request,
    write_response,
)
from repro.server.routes import build_router
from repro.server.settings import ServerSettings
from repro.storage.store import LocalFileStore

__all__ = ["App", "create_app"]

_UNAUTHENTICATED_TEMPLATES = {"/v1/health"}


def create_app(
    settings: Optional[ServerSettings] = None,
    database: Optional[Database] = None,
    **overrides,
) -> "App":
    """Build an :class:`App` from settings (or the environment).

    ``database`` injects an already-populated engine — tests and the
    examples load tables in-process and then serve them; without it the app
    opens ``settings.data_path`` (persistent tables load back) or starts an
    empty in-memory database.
    """
    if settings is None:
        settings = ServerSettings.resolve(**overrides)
    return App(settings, database=database)


class App:
    """One configured server instance (see module docstring)."""

    def __init__(
        self, settings: ServerSettings, database: Optional[Database] = None
    ) -> None:
        self.settings = settings
        if database is not None:
            self.db = database
            self._owns_db = False
        elif settings.data_path is not None:
            self.db = Database.open(
                settings.data_path,
                cache=settings.cache,
                sgb_workers=settings.sgb_workers,
            )
            self._owns_db = True
        else:
            self.db = Database(cache=settings.cache, sgb_workers=settings.sgb_workers)
            self._owns_db = True
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, settings.request_workers),
            thread_name_prefix="repro-req",
        )
        if settings.spool_dir is not None:
            spool_dir = settings.spool_dir
            self._owned_spool_dir: Optional[str] = None
        else:
            spool_dir = tempfile.mkdtemp(prefix="repro-server-spool-")
            self._owned_spool_dir = spool_dir
        self.jobs = JobExecutor(LocalFileStore(spool_dir), workers=settings.job_workers)
        self.metrics = RouteMetrics()
        self.router = build_router()
        self.started_at = time.time()
        self.host = settings.host
        self.port = settings.port
        self.draining = False
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: "set[asyncio.StreamWriter]" = set()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    async def run_sync(self, fn: Callable[[], object]) -> object:
        """Run blocking engine work on the request thread pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn)

    def submit_job(self, kind: str, fn: Callable[[], dict]) -> Job:
        """Queue background work; 503 once the executor is draining."""
        try:
            return self.jobs.submit(kind, fn)
        except RuntimeError as exc:
            raise HttpError(503, "server is draining; not accepting new jobs") from exc

    @property
    def result_cache(self):
        """The resolved result cache the engine routes share (or ``None``)."""
        from repro.storage.cache import resolve_cache

        try:
            return resolve_cache(self.settings.cache)
        except TypeError:
            return None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def dispatch(self, request: Request) -> "Response | StreamingResponse":
        """Route one parsed request to its handler and map failures."""
        start = time.perf_counter()
        template = request.path
        status = 500
        try:
            route, params = self.router.match(request.method, request.path)
            template = route.template
            if self.draining and template not in _UNAUTHENTICATED_TEMPLATES:
                response: "Response | StreamingResponse" = error_response(
                    503, "server is draining"
                )
                response.headers["Retry-After"] = "1"
                status = 503
                return response
            if template not in _UNAUTHENTICATED_TEMPLATES:
                authenticate(request, self.settings.auth_token)
            with self._state_lock:
                self._inflight += 1
            try:
                response = await route.handler(self, request, params)
            finally:
                with self._state_lock:
                    self._inflight -= 1
            status = response.status
            return response
        except HttpError as exc:
            status = exc.status
            return error_response(exc.status, exc.message)
        except ReproError as exc:
            status = 400
            return error_response(400, str(exc), error_type=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 - a request must never kill the server
            status = 500
            return error_response(500, f"internal error: {exc}", type(exc).__name__)
        finally:
            self.metrics.record(
                request.method, template, status, time.perf_counter() - start
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.settings.max_header_bytes,
                        max_body_bytes=self.settings.max_body_bytes,
                    )
                except HttpError as exc:
                    # The stream position is unknown after a parse error;
                    # answer and close.
                    await write_response(
                        writer, error_response(exc.status, exc.message), keep_alive=False
                    )
                    return
                if request is None:
                    return
                response = await self.dispatch(request)
                keep_alive = request.keep_alive
                await write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # peer went away; nothing to answer
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-dead transports
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.settings.host,
            port=self.settings.port,
            limit=max(64 * 1024, self.settings.max_header_bytes),
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    def begin_drain(self) -> None:
        """Flip into draining mode: new requests get 503, health reports it."""
        self.draining = True

    async def _wait_drained(self, timeout: float) -> bool:
        """Wait for in-flight requests to finish; True when fully drained."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.inflight == 0:
                return True
            await asyncio.sleep(0.02)
        return self.inflight == 0

    async def stop(self, drain_engine: bool = False) -> None:
        """Graceful shutdown: drain, close, release (idempotent).

        ``drain_engine=True`` additionally tears down the engine's shared
        worker pools through :func:`repro.engine.workers.begin_shutdown` —
        only the standalone ``python -m repro.server`` path does this, since
        the flag is process-wide and in-process test servers must leave the
        pools usable for the rest of the suite.
        """
        self.begin_drain()
        await self._wait_drained(self.settings.drain_timeout)
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-dead transports
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - lingering handler
                pass
            self._server = None
        self.jobs.shutdown(wait=True)
        self.executor.shutdown(wait=True)
        if drain_engine:
            from repro.engine.workers import begin_shutdown

            begin_shutdown()
        if self._owns_db:
            self.db.close()
        if self._owned_spool_dir is not None:
            shutil.rmtree(self._owned_spool_dir, ignore_errors=True)
            self._owned_spool_dir = None

    async def serve_forever(self, stop_event: Optional[asyncio.Event] = None) -> None:
        """Start and serve until ``stop_event`` fires (``__main__`` path)."""
        await self.start()
        if stop_event is None:  # pragma: no cover - interactive use
            stop_event = asyncio.Event()
        await stop_event.wait()

    def client(self):
        """A :class:`~repro.server.client.ServerClient` bound to this app."""
        from repro.server.client import ServerClient

        return ServerClient(self.host, self.port, token=self.settings.auth_token)
