"""DBSCAN density-based clustering with R-tree region queries.

Figure 11 of the paper uses "the state-of-the-art implementation of DBSCAN
with an R-tree"; this module mirrors that: every epsilon-region query is
answered by the same :class:`~repro.spatial.rtree.RTree` the SGB index
variants use, so the comparison isolates the algorithmic difference (multiple
region queries and cluster expansion passes vs. the single streaming pass of
SGB).
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

from repro.clustering.base import NOISE, ClusteringResult, as_points
from repro.core.distance import Metric, resolve_metric
from repro.core.predicates import SimilarityPredicate
from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.spatial.rtree import RTree

__all__ = ["dbscan"]

_UNVISITED = -2


def dbscan(
    points: Sequence[Sequence[float]],
    eps: float,
    min_pts: int = 4,
    metric: "Metric | str" = Metric.L2,
) -> ClusteringResult:
    """Cluster ``points`` with DBSCAN (Ester et al. 1996).

    Parameters
    ----------
    eps:
        Neighbourhood radius (same role as the SGB similarity threshold).
    min_pts:
        Minimum neighbourhood size (including the point itself) for a core point.
    metric:
        ``"L2"`` or ``"LINF"``.
    """
    if min_pts < 1:
        raise InvalidParameterError(f"min_pts must be >= 1, got {min_pts}")
    pts = as_points(points)
    predicate = SimilarityPredicate(resolve_metric(metric), eps)
    n = len(pts)
    labels: List[int] = [_UNVISITED] * n
    if n == 0:
        return ClusteringResult(labels=[], iterations=0)

    index = RTree(max_entries=16)
    for i, p in enumerate(pts):
        index.insert(Rect.from_point(p), i)

    def region_query(i: int) -> List[int]:
        window = Rect.from_point(pts[i], eps)
        hits = index.search(window)
        return [j for j in hits if predicate.similar(pts[i], pts[j])]

    cluster_id = 0
    region_queries = 0
    for i in range(n):
        if labels[i] != _UNVISITED:
            continue
        neighbours = region_query(i)
        region_queries += 1
        if len(neighbours) < min_pts:
            labels[i] = NOISE
            continue
        labels[i] = cluster_id
        queue = deque(j for j in neighbours if j != i)
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border point
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster_id
            j_neighbours = region_query(j)
            region_queries += 1
            if len(j_neighbours) >= min_pts:
                for q in j_neighbours:
                    if labels[q] == _UNVISITED or labels[q] == NOISE:
                        queue.append(q)
        cluster_id += 1

    return ClusteringResult(
        labels=labels,
        iterations=1,
        extra={"region_queries": float(region_queries)},
    )
