"""BIRCH clustering (Zhang, Ramakrishnan, Livny, SIGMOD 1996).

Figure 11 baseline.  The implementation follows the two-phase structure that
makes BIRCH a fair "multiple passes over the data" comparator for SGB:

1. build a CF-tree by inserting every point into its closest leaf cluster
   feature (splitting leaves that exceed the branching factor);
2. globally cluster the leaf CF centroids by agglomerative merging of
   centroids closer than the threshold, then relabel every input point with
   its CF's global cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.clustering.base import ClusteringResult, as_points
from repro.dstruct.union_find import UnionFind
from repro.exceptions import InvalidParameterError

__all__ = ["birch", "BirchParams"]


@dataclass(frozen=True)
class BirchParams:
    """Tuning knobs of the CF-tree construction."""

    threshold: float = 0.05
    branching_factor: int = 50


class _ClusterFeature:
    """A cluster feature: (N, linear sum, squared sum) plus its member indices."""

    __slots__ = ("n", "ls", "ss", "members")

    def __init__(self, point: Sequence[float], index: int) -> None:
        self.n = 1
        self.ls = list(point)
        self.ss = sum(c * c for c in point)
        self.members: List[int] = [index]

    def centroid(self) -> List[float]:
        return [c / self.n for c in self.ls]

    def radius_if_added(self, point: Sequence[float]) -> float:
        """Radius of the CF after hypothetically absorbing ``point``."""
        n = self.n + 1
        ls = [a + b for a, b in zip(self.ls, point)]
        ss = self.ss + sum(c * c for c in point)
        centroid = [c / n for c in ls]
        variance = ss / n - sum(c * c for c in centroid)
        return math.sqrt(max(variance, 0.0))

    def add(self, point: Sequence[float], index: int) -> None:
        self.n += 1
        self.ls = [a + b for a, b in zip(self.ls, point)]
        self.ss += sum(c * c for c in point)
        self.members.append(index)


class _CFNode:
    """CF-tree node; leaves hold cluster features, internal nodes hold children."""

    __slots__ = ("leaf", "features", "children")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.features: List[_ClusterFeature] = []
        self.children: List["_CFNode"] = []

    def centroid_of(self, i: int) -> List[float]:
        if self.leaf:
            return self.features[i].centroid()
        child = self.children[i]
        total_n = 0
        total_ls: Optional[List[float]] = None
        stack = [child]
        while stack:
            node = stack.pop()
            if node.leaf:
                for cf in node.features:
                    total_n += cf.n
                    if total_ls is None:
                        total_ls = list(cf.ls)
                    else:
                        total_ls = [a + b for a, b in zip(total_ls, cf.ls)]
            else:
                stack.extend(node.children)
        assert total_ls is not None
        return [c / total_n for c in total_ls]


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class _CFTree:
    """A simplified CF-tree: one level of internal fan-out above the leaves.

    A full multi-level CF-tree is unnecessary for the benchmark sizes used in
    the reproduction; the important cost characteristics — per-point descent,
    leaf splits bounded by the branching factor, and a second global
    clustering phase — are preserved.
    """

    def __init__(self, params: BirchParams) -> None:
        self.params = params
        self.leaves: List[_CFNode] = [_CFNode(leaf=True)]

    def insert(self, point: Sequence[float], index: int) -> None:
        leaf = self._closest_leaf(point)
        best_cf = None
        best_d = float("inf")
        for cf in leaf.features:
            d = _distance(cf.centroid(), point)
            if d < best_d:
                best_d = d
                best_cf = cf
        if best_cf is not None and best_cf.radius_if_added(point) <= self.params.threshold:
            best_cf.add(point, index)
            return
        leaf.features.append(_ClusterFeature(point, index))
        if len(leaf.features) > self.params.branching_factor:
            self._split_leaf(leaf)

    def _closest_leaf(self, point: Sequence[float]) -> _CFNode:
        best = self.leaves[0]
        best_d = float("inf")
        for leaf in self.leaves:
            if not leaf.features:
                return leaf
            centroid = [
                sum(cf.ls[i] for cf in leaf.features)
                / max(1, sum(cf.n for cf in leaf.features))
                for i in range(len(point))
            ]
            d = _distance(centroid, point)
            if d < best_d:
                best_d = d
                best = leaf
        return best

    def _split_leaf(self, leaf: _CFNode) -> None:
        """Split an overflowing leaf around its two farthest cluster features."""
        features = leaf.features
        best_pair = (0, 1)
        best_d = -1.0
        for i in range(len(features)):
            ci = features[i].centroid()
            for j in range(i + 1, len(features)):
                d = _distance(ci, features[j].centroid())
                if d > best_d:
                    best_d = d
                    best_pair = (i, j)
        seed_a = features[best_pair[0]]
        seed_b = features[best_pair[1]]
        node_a = _CFNode(leaf=True)
        node_b = _CFNode(leaf=True)
        ca, cb = seed_a.centroid(), seed_b.centroid()
        for cf in features:
            if _distance(cf.centroid(), ca) <= _distance(cf.centroid(), cb):
                node_a.features.append(cf)
            else:
                node_b.features.append(cf)
        self.leaves.remove(leaf)
        self.leaves.extend([node_a, node_b])

    def cluster_features(self) -> List[_ClusterFeature]:
        out: List[_ClusterFeature] = []
        for leaf in self.leaves:
            out.extend(leaf.features)
        return out


def birch(
    points: Sequence[Sequence[float]],
    threshold: float = 0.05,
    branching_factor: int = 50,
    merge_threshold: Optional[float] = None,
) -> ClusteringResult:
    """Cluster ``points`` with the BIRCH CF-tree method.

    Parameters
    ----------
    threshold:
        Maximum radius of a leaf cluster feature.
    branching_factor:
        Maximum number of cluster features per leaf node.
    merge_threshold:
        Centroid distance under which CF centroids are merged in the global
        phase (defaults to ``2 * threshold``).
    """
    if threshold <= 0:
        raise InvalidParameterError("threshold must be positive")
    if branching_factor < 2:
        raise InvalidParameterError("branching_factor must be at least 2")
    pts = as_points(points)
    if not pts:
        return ClusteringResult(labels=[], iterations=0)
    params = BirchParams(threshold=threshold, branching_factor=branching_factor)
    tree = _CFTree(params)
    for i, p in enumerate(pts):
        tree.insert(p, i)

    features = tree.cluster_features()
    merge_eps = merge_threshold if merge_threshold is not None else 2.0 * threshold

    # Global phase: agglomerate CF centroids closer than merge_eps.
    uf = UnionFind(range(len(features)))
    centroids = [cf.centroid() for cf in features]
    for i in range(len(features)):
        for j in range(i + 1, len(features)):
            if _distance(centroids[i], centroids[j]) <= merge_eps:
                uf.union(i, j)

    cluster_of_feature = {}
    next_label = 0
    for i in range(len(features)):
        root = uf.find(i)
        if root not in cluster_of_feature:
            cluster_of_feature[root] = next_label
            next_label += 1

    labels = [0] * len(pts)
    for i, cf in enumerate(features):
        label = cluster_of_feature[uf.find(i)]
        for idx in cf.members:
            labels[idx] = label
    return ClusteringResult(labels=labels, iterations=2, extra={"cf_count": float(len(features))})
