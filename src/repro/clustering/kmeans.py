"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

Used as a Figure 11 baseline.  The implementation follows the classic
formulation the paper cites (Kanungo et al.): iterative assignment /
re-centering until the assignment stabilises or ``max_iter`` is reached.
Numpy is used for the distance matrix so the baseline is not unfairly slow,
but the algorithm still performs the multiple full passes over the data that
the paper contrasts with the single-pass SGB operators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.clustering.base import ClusteringResult
from repro.exceptions import EmptyInputError, InvalidParameterError

__all__ = ["kmeans", "KMeansResult"]


@dataclass
class KMeansResult(ClusteringResult):
    """K-means result: labels plus the final centroids and inertia."""

    centroids: List[tuple[float, ...]] = None  # type: ignore[assignment]
    inertia: float = 0.0


def _kmeans_plus_plus(data: np.ndarray, k: int, rng: random.Random) -> np.ndarray:
    """Return ``k`` initial centroids chosen with the k-means++ heuristic."""
    n = data.shape[0]
    centroids = [data[rng.randrange(n)]]
    for _ in range(1, k):
        diff = data[:, None, :] - np.asarray(centroids)[None, :, :]
        d2 = np.min(np.sum(diff * diff, axis=2), axis=1)
        total = float(d2.sum())
        if total <= 0.0:
            centroids.append(data[rng.randrange(n)])
            continue
        threshold = rng.random() * total
        cumulative = np.cumsum(d2)
        idx = int(np.searchsorted(cumulative, threshold))
        centroids.append(data[min(idx, n - 1)])
    return np.asarray(centroids)


def kmeans(
    points: Sequence[Sequence[float]],
    k: int,
    max_iter: int = 50,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Parameters
    ----------
    points:
        Input points (any numeric sequences of equal dimensionality).
    k:
        Number of clusters; the paper's Figure 11 uses 20 and 40.
    max_iter:
        Maximum number of assignment/update rounds.
    tol:
        Convergence threshold on the total centroid movement.
    seed:
        Seed for the k-means++ initialisation.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise EmptyInputError("kmeans requires a non-empty 2-d array of points")
    n = data.shape[0]
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    k = min(k, n)
    rng = random.Random(seed)
    centroids = _kmeans_plus_plus(data, k, rng)

    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        diff = data[:, None, :] - centroids[None, :, :]
        d2 = np.sum(diff * diff, axis=2)
        labels = np.argmin(d2, axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = data[labels == j]
            if len(members) > 0:
                new_centroids[j] = members.mean(axis=0)
        movement = float(np.sqrt(np.sum((new_centroids - centroids) ** 2)))
        centroids = new_centroids
        if movement <= tol:
            break

    diff = data[:, None, :] - centroids[None, :, :]
    d2 = np.sum(diff * diff, axis=2)
    inertia = float(np.min(d2, axis=1).sum())
    return KMeansResult(
        labels=[int(label) for label in labels],
        iterations=iterations,
        centroids=[tuple(map(float, c)) for c in centroids],
        inertia=inertia,
    )
