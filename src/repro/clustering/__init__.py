"""Standalone clustering baselines used by the paper's Figure 11 comparison.

The paper compares the in-pipeline SGB operators with three classic
clustering algorithms run as standalone passes over the data:

* :func:`kmeans` — Lloyd's algorithm with k-means++ seeding.
* :func:`dbscan` — density-based clustering, region queries answered by the
  same R-tree used by the SGB index variants.
* :func:`birch`  — the CF-tree based hierarchical method (build CF-tree, then
  cluster the leaf centroids).

All three return a :class:`~repro.clustering.base.ClusteringResult` with a
per-point label array so tests can compare their outputs with the SGB
groupings on the same data.
"""

from repro.clustering.base import ClusteringResult
from repro.clustering.birch import BirchParams, birch
from repro.clustering.dbscan import dbscan
from repro.clustering.kmeans import KMeansResult, kmeans

__all__ = [
    "ClusteringResult",
    "KMeansResult",
    "kmeans",
    "dbscan",
    "birch",
    "BirchParams",
]
