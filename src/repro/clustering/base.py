"""Shared result container for the clustering baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["ClusteringResult", "NOISE"]

#: Label assigned by DBSCAN to points not belonging to any cluster.
NOISE = -1


@dataclass
class ClusteringResult:
    """Outcome of a standalone clustering run.

    Attributes
    ----------
    labels:
        Per-point cluster label, index-aligned with the input.  ``-1`` marks
        noise (DBSCAN only).
    iterations:
        Number of passes over the data the algorithm needed (K-means rounds,
        DBSCAN expansion sweeps, BIRCH phases); reported because the paper
        attributes the SGB speedup to clustering's multiple passes.
    """

    labels: List[int]
    iterations: int = 1
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cluster_count(self) -> int:
        """Number of distinct clusters (noise excluded)."""
        return len({label for label in self.labels if label != NOISE})

    @property
    def noise_count(self) -> int:
        """Number of points labelled as noise."""
        return sum(1 for label in self.labels if label == NOISE)

    def clusters(self) -> Dict[int, List[int]]:
        """Return ``{cluster label -> member indices}`` (noise excluded)."""
        out: Dict[int, List[int]] = {}
        for idx, label in enumerate(self.labels):
            if label != NOISE:
                out.setdefault(label, []).append(idx)
        return out

    def sizes(self) -> List[int]:
        """Return the cluster sizes in descending order."""
        return sorted((len(v) for v in self.clusters().values()), reverse=True)


def as_points(points: Sequence[Sequence[float]]) -> List[Tuple[float, ...]]:
    """Normalise arbitrary numeric sequences into tuples of floats."""
    return [tuple(float(c) for c in p) for p in points]
