"""TPC-H style similarity analytics (paper Section 8, Table 2).

Loads a synthetic TPC-H database and runs the paper's evaluation queries:
the standard GROUP BY baselines (GB1–GB3) and their similarity counterparts
(SGB1–SGB6), reporting row counts and runtimes.

Run with::

    python examples/tpch_analytics.py [scale_factor]
"""

from __future__ import annotations

import sys
import time

from repro.bench.queries import sgb_queries, standard_queries
from repro.minidb import Database
from repro.workloads.tpch import load_tpch


def main(scale_factor: float = 0.002) -> None:
    db = Database(sgb_strategy="index")
    start = time.perf_counter()
    data = load_tpch(db, scale_factor=scale_factor)
    print(
        f"loaded synthetic TPC-H at SF={scale_factor}: "
        f"{data.total_rows()} rows in {time.perf_counter() - start:.2f}s"
    )
    for table in db.table_names():
        print(f"  {table:<10} {len(db.table(table)):>8} rows")

    queries = dict(standard_queries())
    queries.update(sgb_queries())

    print("\nquery      rows   seconds")
    print("---------  -----  -------")
    for name, sql in queries.items():
        start = time.perf_counter()
        result = db.execute(sql)
        elapsed = time.perf_counter() - start
        print(f"{name:<9}  {len(result.rows):>5}  {elapsed:7.3f}")

    # A closer look at one similarity grouping: customers with similar buying
    # power, under the three overlap policies.
    print("\nSGB1 (customers with similar buying power) by ON-OVERLAP policy:")
    from repro.bench.queries import sgb1

    for policy in ("JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"):
        result = db.execute(sgb1(eps=500.0, overlap=policy))
        print(f"  {policy:<15} -> {len(result.rows)} groups")


if __name__ == "__main__":
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    main(sf)
