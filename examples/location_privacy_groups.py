"""Location-based group recommendation with privacy (paper Section 5, Query 3).

Social applications recommend groups to users who frequent nearby locations.
A user whose frequent location qualifies for several groups could leak
information between them, so the paper's Query 3 forms location-based groups
with SGB-All and controls overlapping members through the ON-OVERLAP clause:

* ``JOIN-ANY``        — the user is recommended exactly one group;
* ``ELIMINATE``       — overlapping users are not recommended any group;
* ``FORM-NEW-GROUP``  — overlapping users get their own dedicated group.

Run with::

    python examples/location_privacy_groups.py
"""

from __future__ import annotations

from repro.minidb import Database
from repro.workloads.checkins import CheckinConfig, generate_checkins

THRESHOLD_DEG = 0.5


def build_user_locations(db: Database) -> int:
    """Aggregate raw check-ins into each user's frequent (mean) location."""
    config = CheckinConfig(n_checkins=4_000, n_users=300, hotspots=12, seed=17)
    records = generate_checkins(config)
    db.execute(
        "CREATE TABLE checkins (user_id INT, lat FLOAT, lon FLOAT, checkin_time INT)"
    )
    db.insert_rows(
        "checkins",
        [(r.user_id, r.latitude, r.longitude, r.checkin_time) for r in records],
    )
    # The users_frequent_location relation of the paper's Query 3.
    result = db.execute(
        "SELECT user_id, avg(lat) AS user_lat, avg(lon) AS user_long "
        "FROM checkins GROUP BY user_id"
    )
    db.execute(
        "CREATE TABLE users_frequent_location (user_id INT, user_lat FLOAT, user_long FLOAT)"
    )
    db.insert_rows("users_frequent_location", result.rows)
    return len(result.rows)


def recommend_groups(db: Database, on_overlap: str) -> None:
    """Paper Query 3 under one ON-OVERLAP policy."""
    result = db.execute(
        f"""
        SELECT list_id(user_id), count(*), st_polygon(user_lat, user_long)
        FROM users_frequent_location
        GROUP BY user_lat, user_long
        DISTANCE-TO-ALL L2 WITHIN {THRESHOLD_DEG}
        ON-OVERLAP {on_overlap}
        """
    )
    sizes = sorted((row[1] for row in result.rows), reverse=True)
    members_recommended = sum(sizes)
    total_users = db.execute("SELECT count(*) FROM users_frequent_location").scalar()
    print(f"== ON-OVERLAP {on_overlap} ==")
    print(f"  {len(result.rows)} groups, sizes (top 8): {sizes[:8]}")
    print(f"  {members_recommended}/{total_users} users receive a recommendation")
    largest = max(result.rows, key=lambda row: row[1])
    polygon = largest[2]
    if polygon is not None:
        print(f"  largest group covers area {polygon.area():.3f} deg^2 "
              f"around {tuple(round(c, 2) for c in polygon.centroid())}")
    print()


def connected_communities(db: Database) -> None:
    """For contrast: SGB-Any forms transitively-connected communities."""
    result = db.execute(
        f"""
        SELECT count(*)
        FROM users_frequent_location
        GROUP BY user_lat, user_long
        DISTANCE-TO-ANY L2 WITHIN {THRESHOLD_DEG}
        """
    )
    sizes = sorted((row[0] for row in result.rows), reverse=True)
    print("== SGB-Any communities (no privacy constraint) ==")
    print(f"  {len(result.rows)} communities, sizes (top 8): {sizes[:8]}")


if __name__ == "__main__":
    database = Database()
    users = build_user_locations(database)
    print(f"derived frequent locations for {users} users "
          f"(similarity threshold {THRESHOLD_DEG} degrees)\n")
    for policy in ("JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"):
        recommend_groups(database, policy)
    connected_communities(database)
