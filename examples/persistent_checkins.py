"""Durable check-in analytics: persistent tables and the tiered result cache.

Run with::

    python examples/persistent_checkins.py

The paper's check-in workloads (Brightkite, Gowalla) are analysed repeatedly
as new data trickles in, so this example walks the persistence story end to
end.  A first "session" ingests synthetic check-ins into a ``CREATE TABLE
... PERSISTENT`` table and runs a hotspot SGB query; closing the database
flushes the rows — bit-identically, one columnar file per column — plus the
planner statistics into a storage directory.  A second session reopens that
directory, proves the SQL answer is unchanged, and shows the tiered result
cache at work: the first (cold) query groups every check-in, the repeat
(warm) query is served from the cache under a content fingerprint that any
insert invalidates.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

# This script demonstrates the cache, so a CI tier running everything under
# SGB_CACHE=off (the bypass smoke) must not hollow it out.
os.environ.pop("SGB_CACHE", None)

from repro.minidb import Database
from repro.storage import ResultCache
from repro.workloads.checkins import CheckinConfig, generate_checkins

EPS = 0.4  # degrees: check-ins closer than this chain into one hotspot

HOTSPOT_SQL = (
    "SELECT count(*) FROM checkins "
    f"GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN {EPS}"
)


def first_session(path: str) -> list:
    print("== Session 1: ingest and persist ==")
    records = generate_checkins(
        CheckinConfig(n_checkins=4000, n_users=400, hotspots=15, seed=42)
    )
    with Database.open(path) as db:
        db.execute(
            "CREATE TABLE checkins (user_id INT, lat FLOAT, lon FLOAT, t INT) "
            "PERSISTENT"
        )
        db.insert_rows(
            "checkins",
            [(r.user_id, r.latitude, r.longitude, r.checkin_time) for r in records],
        )
        hotspots = db.execute(HOTSPOT_SQL)
        print(f"ingested {len(records)} check-ins -> {len(hotspots)} hotspot groups")
        # Leaving the with-block saves the table and releases the catalog.
        return hotspots.rows


def second_session(path: str, expected: list) -> None:
    print("\n== Session 2: reopen, verify, and query through the cache ==")
    cache = ResultCache.memory()
    with Database.open(path, cache=cache) as db:
        table = db.table("checkins")
        print(f"reloaded {len(table)} rows at mutation version {table.version}")

        start = time.perf_counter()
        cold = db.execute(HOTSPOT_SQL)
        cold_s = time.perf_counter() - start
        assert cold.rows == expected, "a reopened database must answer identically"
        print(f"cold query: {len(cold)} groups in {cold_s * 1000:.1f} ms "
              f"(cache: {cache.hits} hits / {cache.misses} misses)")

        start = time.perf_counter()
        warm = db.execute(HOTSPOT_SQL)
        warm_s = time.perf_counter() - start
        assert warm.rows == cold.rows, "a cache hit must be bit-identical"
        print(f"warm query: same answer in {warm_s * 1000:.1f} ms "
              f"(cache: {cache.hits} hits / {cache.misses} misses, "
              f"{cold_s / max(warm_s, 1e-9):.0f}x faster)")

        db.execute("INSERT INTO checkins VALUES (999, 37.7, -122.4, 99999)")
        moved = db.execute(HOTSPOT_SQL)
        print(f"after one insert the version moved to {table.version}: the next "
              f"query recomputed ({cache.puts} cache writes) -> {len(moved)} groups")


def main() -> None:
    path = tempfile.mkdtemp(prefix="repro-checkins-")
    try:
        expected = first_session(path)
        second_session(path, expected)
    finally:
        shutil.rmtree(path, ignore_errors=True)


if __name__ == "__main__":
    main()
