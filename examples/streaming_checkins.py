"""Streaming check-in grouping: sliding windows with delta events.

Run with::

    python examples/streaming_checkins.py

The paper's motivating workloads — check-in streams like Brightkite and
Gowalla — are continuous, so this example replays a synthetic check-in
stream (same generator the Figure 11 experiments use) through the windowed
streaming subsystem.  A sliding count window groups the latest check-ins
with SGB-Any; each flush reports the live groups plus what *changed* since
the previous window: new hotspots forming, hotspots gaining check-ins,
hotspots merging, and stale hotspots expiring once their check-ins slide
out of the window.  The same query also runs through the SQL interface via
the ``WINDOW n SLIDE m`` clause.
"""

from __future__ import annotations

from repro.core.api import sgb_any_stream
from repro.minidb import Database
from repro.stream.deltas import DeltaKind
from repro.workloads.checkins import CheckinConfig, generate_checkins

EPS = 0.4        # degrees: check-ins closer than this chain into one hotspot
WINDOW = 400     # live check-ins per window
SLIDE = 100      # emit a window every 100 arrivals
BATCH = 50       # micro-batch size of the simulated feed


def checkin_stream(records, batch_size):
    """Yield the check-in coordinates in arrival order, in micro-batches."""
    ordered = sorted(records, key=lambda r: r.checkin_time)
    for start in range(0, len(ordered), batch_size):
        yield [
            (r.latitude, r.longitude) for r in ordered[start : start + batch_size]
        ]


def api_level() -> None:
    records = generate_checkins(
        CheckinConfig(n_checkins=1200, n_users=150, hotspots=12, seed=21)
    )
    print(f"== Streaming {len(records)} check-ins "
          f"(window {WINDOW}, slide {SLIDE}, eps {EPS} deg) ==")
    for window in sgb_any_stream(
        checkin_stream(records, BATCH), eps=EPS, window=WINDOW, slide=SLIDE
    ):
        sizes = sorted(window.result.group_sizes(), reverse=True)
        print(f"window {window.window_id:>2} [{window.start:>4}, {window.end:>4}): "
              f"{window.live_count:>3} live check-ins, "
              f"{window.result.group_count:>2} hotspot groups, top sizes {sizes[:4]}")
        expired_singletons = 0
        for event in window.deltas:
            if event.kind is DeltaKind.GROUPS_MERGED:
                print(f"    merged: groups {list(event.sources)} fused into "
                      f"group {event.group} ({len(event.members)} check-ins)")
            elif event.kind is DeltaKind.GROUP_EXPIRED:
                if len(event.members) >= 2:
                    print(f"    expired: group {event.group} "
                          f"({len(event.members)} check-ins) left the window")
                else:
                    expired_singletons += 1
        if expired_singletons:
            print(f"    expired: {expired_singletons} singleton check-ins "
                  "left the window")


def sql_level() -> None:
    print("\n== The same sliding window through SQL ==")
    records = generate_checkins(
        CheckinConfig(n_checkins=600, n_users=80, hotspots=8, seed=22)
    )
    db = Database()
    db.execute("CREATE TABLE checkins (user_id INT, lat FLOAT, lon FLOAT, t INT)")
    ordered = sorted(records, key=lambda r: r.checkin_time)
    values = ", ".join(
        f"({r.user_id}, {r.latitude:.6f}, {r.longitude:.6f}, {r.checkin_time})"
        for r in ordered
    )
    db.execute(f"INSERT INTO checkins VALUES {values}")
    sql = (
        "SELECT window_id, count(*), min(t), max(t) FROM checkins "
        f"GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN {EPS} WINDOW 200 SLIDE 100"
    )
    print(f"   {sql}")
    result = db.execute(sql)
    per_window = {}
    for window_id, n, t_min, t_max in result.rows:
        groups, lo, hi = per_window.get(window_id, (0, t_min, t_max))
        per_window[window_id] = (groups + 1, min(lo, t_min), max(hi, t_max))
    for window_id in sorted(per_window):
        groups, t_min, t_max = per_window[window_id]
        print(f"   window {window_id}: {groups} hotspot groups "
              f"(check-in times {t_min}..{t_max})")


if __name__ == "__main__":
    api_level()
    sql_level()
