"""MANET coverage and gateway discovery (paper Section 5, Example 3).

A Mobile Ad hoc Network (MANET) is a set of mobile devices that communicate
directly when within radio range.  The paper's Query 1 finds the geographic
area covered by each connected network (SGB-Any), and Query 2 finds candidate
*gateway* devices — devices in range of several otherwise-disconnected device
cliques (SGB-All with ON-OVERLAP FORM-NEW-GROUP).

Run with::

    python examples/manet_gateways.py
"""

from __future__ import annotations

import random

from repro.minidb import Database


SIGNAL_RANGE = 1.2


def build_devices(db: Database, seed: int = 4) -> int:
    """Create the MobileDevices table: a few device clusters plus relays."""
    rng = random.Random(seed)
    db.execute("CREATE TABLE mobiledevices (mdid INT, device_lat FLOAT, device_long FLOAT)")
    rows = []
    device_id = 1
    cluster_centers = [(0.0, 0.0), (4.0, 0.5), (8.5, 1.0), (3.5, 6.0)]
    for cx, cy in cluster_centers:
        for _ in range(12):
            rows.append((device_id, cx + rng.uniform(-0.5, 0.5), cy + rng.uniform(-0.5, 0.5)))
            device_id += 1
    # Relay devices bridging the first two clusters: each within signal range
    # of its neighbour, chaining the two device clusters into one MANET.
    for x in (1.2, 2.2, 3.2):
        rows.append((device_id, x, 0.2))
        device_id += 1
    db.insert_rows("mobiledevices", rows)
    return len(rows)


def query1_network_areas(db: Database) -> None:
    """Paper Query 1: polygon of each connected MANET (SGB-Any)."""
    result = db.execute(
        f"""
        SELECT count(*), st_polygon(device_lat, device_long)
        FROM mobiledevices
        GROUP BY device_lat, device_long
        DISTANCE-TO-ANY L2 WITHIN {SIGNAL_RANGE}
        """
    )
    print("== Query 1: connected MANETs and their coverage polygons ==")
    for count, polygon in sorted(result.rows, key=lambda row: row[0], reverse=True):
        area = polygon.area() if polygon is not None else 0.0
        print(f"  network of {count:>2} devices, coverage area {area:6.2f}")


def query2_gateway_candidates(db: Database) -> None:
    """Paper Query 2: candidate gateway devices (SGB-All FORM-NEW-GROUP)."""
    result = db.execute(
        f"""
        SELECT count(*), array_agg(mdid)
        FROM mobiledevices
        GROUP BY device_lat, device_long
        DISTANCE-TO-ALL L2 WITHIN {SIGNAL_RANGE}
        ON-OVERLAP FORM-NEW-GROUP
        """
    )
    # Heuristic used by the paper's discussion: small groups formed out of
    # overlapping devices are the gateway candidates.
    small_groups = [row for row in result.rows if row[0] <= 3]
    print("\n== Query 2: gateway candidates (overlap-formed groups) ==")
    print(f"  {len(result.rows)} cliques formed; "
          f"{len(small_groups)} small overlap groups -> candidate gateways:")
    for count, members in small_groups:
        print(f"    devices {members}")


def query2b_non_gateways(db: Database) -> None:
    """SGB-All ELIMINATE: devices that can never serve as a gateway."""
    eliminate = db.execute(
        f"""
        SELECT count(*) FROM mobiledevices
        GROUP BY device_lat, device_long
        DISTANCE-TO-ALL L2 WITHIN {SIGNAL_RANGE}
        ON-OVERLAP ELIMINATE
        """
    )
    total = db.execute("SELECT count(*) FROM mobiledevices").scalar()
    kept = sum(row[0] for row in eliminate.rows)
    print("\n== ON-OVERLAP ELIMINATE: non-gateway device count ==")
    print(f"  {kept} of {total} devices remain after dropping overlapping devices")


if __name__ == "__main__":
    database = Database()
    n = build_devices(database)
    print(f"generated {n} mobile devices (signal range {SIGNAL_RANGE})\n")
    query1_network_areas(database)
    query2_gateway_candidates(database)
    query2b_non_gateways(database)
