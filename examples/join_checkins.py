"""Similarity-joining check-ins to points of interest, then grouping the matches.

Run with::

    python examples/join_checkins.py

The similarity-aware operator family the paper places SGB in also contains
similarity *joins*.  This example pairs a synthetic check-in stream (the
Figure 11 generator) with a small set of points of interest (POIs):

1. an **eps-join** finds every (check-in, POI) pair within ``EPS`` degrees —
   "which check-ins happened near which POI";
2. a **kNN-join** assigns every check-in to its single nearest POI,
   distance ties broken deterministically;
3. the **fused join→group pipeline** similarity-joins and SGBs the matches
   in one pass — the grouping sweep sees each matched POI once instead of
   once per pair, and returns results bit-identical to the two-step path
   (asserted below);
4. through SQL, the ``SIMILARITY JOIN ... ON DISTANCE(...) WITHIN eps``
   clause feeds the matched pairs straight into a similarity ``GROUP BY`` —
   the executor detects this shape and takes the same fused route.
"""

from __future__ import annotations

from collections import Counter

from repro.core.api import sgb_any, sim_join
from repro.core.pointset import PointSet
from repro.join import fused_join_group
from repro.minidb import Database
from repro.workloads.checkins import CheckinConfig, generate_checkins

EPS = 0.5   # degrees: a check-in this close to a POI counts as a visit
N_POIS = 40


def build_inputs():
    records = generate_checkins(
        CheckinConfig(n_checkins=1500, n_users=200, hotspots=12, seed=33)
    )
    checkins = [(r.latitude, r.longitude) for r in records]
    # POIs: every 38th check-in location stands in for a venue register.
    pois = checkins[:: max(1, len(checkins) // N_POIS)][:N_POIS]
    return records, checkins, pois


def api_level(records, checkins, pois) -> None:
    print(f"== eps-join: {len(checkins)} check-ins x {len(pois)} POIs "
          f"within {EPS} deg ==")
    pairs = sim_join(checkins, pois, eps=EPS)
    visits = Counter(j for _, j in pairs)
    print(f"   {len(pairs)} (check-in, POI) pairs; "
          f"{len(visits)} POIs saw at least one check-in")
    for poi, count in visits.most_common(3):
        lat, lon = pois[poi]
        print(f"   busiest POI {poi} at ({lat:.3f}, {lon:.3f}): "
              f"{count} check-ins nearby")

    print("\n== kNN-join: every check-in to its nearest POI (k=1) ==")
    nearest = sim_join(checkins, pois, k=1)
    per_poi = Counter(j for _, j in nearest)
    print(f"   {len(nearest)} assignments over {len(per_poi)} POIs; "
          f"largest catchment holds {max(per_poi.values())} check-ins")

    print("\n== fused join->group: SGB the matched POIs without "
          "materializing the pairs ==")
    fused = fused_join_group(checkins, pois, 1.0, eps=EPS)
    # The two-step reference: materialize one POI point per matched pair,
    # then group that duplicated relation.  The fused pipeline must be
    # bit-identical — same canonical groups over the same pair positions.
    poi_ps = PointSet.from_any(pois)
    pair_points = [poi_ps.point(j) for _, j in fused.pairs]
    two_step = sgb_any(pair_points, eps=1.0)
    assert fused.grouping.groups == two_step.groups
    assert fused.grouping.points == two_step.points
    print(f"   {len(fused.grouping.groups)} activity clusters over "
          f"{len(fused.pairs)} pairs — identical to the two-step pipeline, "
          f"but the grouping sweep saw only "
          f"{sum(len(g) for g in fused.side_groups)} distinct POIs")


def sql_level(records, pois) -> None:
    print("\n== The same join through SQL, then SGB over the matches ==")
    db = Database()
    db.execute("CREATE TABLE checkins (user_id INT, lat FLOAT, lon FLOAT)")
    db.execute("CREATE TABLE pois (poi_id INT, lat FLOAT, lon FLOAT)")
    db.insert_rows(
        "checkins", [(r.user_id, r.latitude, r.longitude) for r in records]
    )
    db.insert_rows(
        "pois", [(i, lat, lon) for i, (lat, lon) in enumerate(pois)]
    )

    join_sql = (
        "SELECT count(*) FROM checkins c SIMILARITY JOIN pois p "
        f"ON DISTANCE(c.lat, c.lon, p.lat, p.lon) WITHIN {EPS}"
    )
    print(f"   {join_sql}")
    print(f"   -> {db.execute(join_sql).scalar()} matched pairs")

    knn_sql = (
        "SELECT count(*) FROM checkins c SIMILARITY JOIN pois p "
        "ON DISTANCE(c.lat, c.lon, p.lat, p.lon) KNN 1"
    )
    print(f"   {knn_sql}")
    print(f"   -> {db.execute(knn_sql).scalar()} nearest-POI assignments")

    # Join, then similarity-group the matched POI locations: POIs whose
    # visitor neighbourhoods overlap chain into one activity cluster.  The
    # executor recognises this join→SGB shape and runs it through the same
    # fused pipeline as above — the pair-point relation is never built.
    pipeline_sql = (
        "SELECT count(*) AS visits FROM "
        "(SELECT p.lat AS plat, p.lon AS plon FROM checkins c "
        f"SIMILARITY JOIN pois p ON DISTANCE(c.lat, c.lon, p.lat, p.lon) "
        f"WITHIN {EPS}) m "
        "GROUP BY plat, plon DISTANCE-TO-ANY L2 WITHIN 1.0 "
        "ORDER BY visits DESC"
    )
    print(f"   {pipeline_sql}")
    result = db.execute(pipeline_sql)
    sizes = [int(row[0]) for row in result.rows]
    print(f"   -> {len(sizes)} POI activity clusters; "
          f"visit counts {sizes[:5]}{'...' if len(sizes) > 5 else ''}")


if __name__ == "__main__":
    records, checkins, pois = build_inputs()
    api_level(records, checkins, pois)
    sql_level(records, pois)
