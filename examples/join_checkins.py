"""Similarity-joining check-ins to points of interest, then grouping the matches.

Run with::

    python examples/join_checkins.py

The similarity-aware operator family the paper places SGB in also contains
similarity *joins*.  This example pairs a synthetic check-in stream (the
Figure 11 generator) with a small set of points of interest (POIs):

1. an **eps-join** finds every (check-in, POI) pair within ``EPS`` degrees —
   "which check-ins happened near which POI";
2. a **kNN-join** assigns every check-in to its single nearest POI,
   distance ties broken deterministically;
3. through SQL, the ``SIMILARITY JOIN ... ON DISTANCE(...) WITHIN eps``
   clause feeds the matched pairs straight into a similarity ``GROUP BY`` —
   join the check-ins to POIs, then SGB the matched POI locations into
   activity clusters, one relational pipeline end to end.
"""

from __future__ import annotations

from collections import Counter

from repro.core.api import sim_join
from repro.minidb import Database
from repro.workloads.checkins import CheckinConfig, generate_checkins

EPS = 0.5   # degrees: a check-in this close to a POI counts as a visit
N_POIS = 40


def build_inputs():
    records = generate_checkins(
        CheckinConfig(n_checkins=1500, n_users=200, hotspots=12, seed=33)
    )
    checkins = [(r.latitude, r.longitude) for r in records]
    # POIs: every 38th check-in location stands in for a venue register.
    pois = checkins[:: max(1, len(checkins) // N_POIS)][:N_POIS]
    return records, checkins, pois


def api_level(records, checkins, pois) -> None:
    print(f"== eps-join: {len(checkins)} check-ins x {len(pois)} POIs "
          f"within {EPS} deg ==")
    pairs = sim_join(checkins, pois, eps=EPS)
    visits = Counter(j for _, j in pairs)
    print(f"   {len(pairs)} (check-in, POI) pairs; "
          f"{len(visits)} POIs saw at least one check-in")
    for poi, count in visits.most_common(3):
        lat, lon = pois[poi]
        print(f"   busiest POI {poi} at ({lat:.3f}, {lon:.3f}): "
              f"{count} check-ins nearby")

    print("\n== kNN-join: every check-in to its nearest POI (k=1) ==")
    nearest = sim_join(checkins, pois, k=1)
    per_poi = Counter(j for _, j in nearest)
    print(f"   {len(nearest)} assignments over {len(per_poi)} POIs; "
          f"largest catchment holds {max(per_poi.values())} check-ins")


def sql_level(records, pois) -> None:
    print("\n== The same join through SQL, then SGB over the matches ==")
    db = Database()
    db.execute("CREATE TABLE checkins (user_id INT, lat FLOAT, lon FLOAT)")
    db.execute("CREATE TABLE pois (poi_id INT, lat FLOAT, lon FLOAT)")
    db.insert_rows(
        "checkins", [(r.user_id, r.latitude, r.longitude) for r in records]
    )
    db.insert_rows(
        "pois", [(i, lat, lon) for i, (lat, lon) in enumerate(pois)]
    )

    join_sql = (
        "SELECT count(*) FROM checkins c SIMILARITY JOIN pois p "
        f"ON DISTANCE(c.lat, c.lon, p.lat, p.lon) WITHIN {EPS}"
    )
    print(f"   {join_sql}")
    print(f"   -> {db.execute(join_sql).scalar()} matched pairs")

    knn_sql = (
        "SELECT count(*) FROM checkins c SIMILARITY JOIN pois p "
        "ON DISTANCE(c.lat, c.lon, p.lat, p.lon) KNN 1"
    )
    print(f"   {knn_sql}")
    print(f"   -> {db.execute(knn_sql).scalar()} nearest-POI assignments")

    # Join, then similarity-group the matched POI locations: POIs whose
    # visitor neighbourhoods overlap chain into one activity cluster.
    pipeline_sql = (
        "SELECT count(*) AS visits FROM "
        "(SELECT p.lat AS plat, p.lon AS plon FROM checkins c "
        f"SIMILARITY JOIN pois p ON DISTANCE(c.lat, c.lon, p.lat, p.lon) "
        f"WITHIN {EPS}) m "
        "GROUP BY plat, plon DISTANCE-TO-ANY L2 WITHIN 1.0 "
        "ORDER BY visits DESC"
    )
    print(f"   {pipeline_sql}")
    result = db.execute(pipeline_sql)
    sizes = [int(row[0]) for row in result.rows]
    print(f"   -> {len(sizes)} POI activity clusters; "
          f"visit counts {sizes[:5]}{'...' if len(sizes) > 5 else ''}")


if __name__ == "__main__":
    records, checkins, pois = build_inputs()
    api_level(records, checkins, pois)
    sql_level(records, pois)
