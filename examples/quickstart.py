"""Quickstart: group 2-d points with SGB-All and SGB-Any.

Run with::

    python examples/quickstart.py

The example reproduces the paper's Figure 1 / Figure 2 scenarios on a small
point set, then runs the same grouping through the SQL interface.
"""

from __future__ import annotations

from repro import sgb_all, sgb_any
from repro.minidb import Database


def algorithm_level() -> None:
    """Use the algorithm-level API on plain point tuples."""
    # Two natural clusters plus one point that bridges them (paper Figure 2).
    points = [
        (2.0, 8.0),   # a1
        (3.0, 7.0),   # a2
        (7.0, 5.0),   # a3
        (8.0, 4.0),   # a4
        (5.0, 6.5),   # a5 - within eps of both clusters
    ]
    eps = 3.0

    print("== SGB-All (distance-to-all, LINF, eps=3) ==")
    for overlap in ("JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"):
        result = sgb_all(points, eps=eps, metric="LINF", on_overlap=overlap)
        sizes = sorted(result.group_sizes(), reverse=True)
        print(f"  ON-OVERLAP {overlap:<15} -> group sizes {sizes}, "
              f"eliminated {result.eliminated}")

    print("\n== SGB-Any (distance-to-any, L2, eps=3) ==")
    result = sgb_any(points, eps=eps, metric="L2")
    print(f"  group sizes {result.group_sizes()} (the bridge point merges both clusters)")
    for gid in range(result.group_count):
        polygon = result.group_polygon(gid)
        print(f"  group {gid}: members {result.groups[gid]}, hull {polygon.wkt()}")


def sql_level() -> None:
    """Run the same grouping through the extended SQL syntax."""
    db = Database()
    db.execute("CREATE TABLE gpspoints (id INT, lat FLOAT, lon FLOAT)")
    db.execute(
        "INSERT INTO gpspoints VALUES "
        "(1, 2.0, 8.0), (2, 3.0, 7.0), (3, 7.0, 5.0), (4, 8.0, 4.0), (5, 5.0, 6.5)"
    )

    print("\n== SQL: SGB-All with ON-OVERLAP ELIMINATE ==")
    result = db.execute(
        "SELECT count(*), array_agg(id) FROM gpspoints "
        "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE"
    )
    for row in result.rows:
        print(f"  count={row[0]}, members={row[1]}")

    print("\n== SQL: SGB-Any ==")
    result = db.execute(
        "SELECT count(*) FROM gpspoints GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3"
    )
    print(f"  group counts: {[row[0] for row in result.rows]}")

    print("\n== Physical plan ==")
    print(db.explain(
        "SELECT count(*) FROM gpspoints "
        "GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN 3 ON-OVERLAP JOIN-ANY"
    ))


if __name__ == "__main__":
    algorithm_level()
    sql_level()
