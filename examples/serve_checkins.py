"""SGB-as-a-service: serve the check-in workload over HTTP.

Run with::

    python examples/serve_checkins.py

The paper's check-in analytics usually run in-process; this example runs
them through the ``repro.server`` subsystem instead.  It loads synthetic
check-ins and points of interest into a database, boots the stdlib HTTP
server on an ephemeral port *inside this process*, and then acts as a
client: a health probe, a fused join→SGB SQL query (which POI-adjacent
check-ins cluster into hotspots), a direct ``/v1/sgb`` point-batch call, an
async job that is polled to completion, and an NDJSON stream — asserting at
every step that the HTTP answer is identical (after the JSON round trip) to
the same call made in-process.  A standalone deployment is just
``python -m repro.server``; see the README's "Serving" section.
"""

from __future__ import annotations

import json

from repro.core.api import sgb_any
from repro.minidb import Database
from repro.server import running_server
from repro.server.jsonio import grouping_result_payload, query_result_payload
from repro.workloads.checkins import CheckinConfig, generate_checkins

EPS_JOIN = 0.5  # degrees: a check-in "visits" a POI within this distance
EPS_GROUP = 1.0  # degrees: POI-adjacent check-ins chain into hotspots

HOTSPOT_SQL = (
    "SELECT cx, cy, count(*) AS visits FROM "
    "(SELECT c.lat AS cx, c.lon AS cy FROM checkins c "
    f"SIMILARITY JOIN pois p ON DISTANCE(c.lat, c.lon, p.lat, p.lon) "
    f"WITHIN {EPS_JOIN}) m "
    f"GROUP BY cx, cy DISTANCE-TO-ANY L2 WITHIN {EPS_GROUP} ORDER BY cx, cy"
)


def canon(payload: object) -> object:
    """The JSON round trip every HTTP body goes through."""
    return json.loads(json.dumps(payload))


def build_database() -> Database:
    records = generate_checkins(
        CheckinConfig(n_checkins=1500, n_users=200, hotspots=12, seed=20160516)
    )
    db = Database()
    db.execute("CREATE TABLE checkins (user_id INT, lat DOUBLE, lon DOUBLE)")
    db.insert_rows(
        "checkins", [(r.user_id, r.latitude, r.longitude) for r in records]
    )
    db.execute("CREATE TABLE pois (pid INT, lat DOUBLE, lon DOUBLE)")
    # POIs: every 40th check-in location doubles as a point of interest.
    db.insert_rows(
        "pois",
        [
            (i, r.latitude, r.longitude)
            for i, r in enumerate(records[:: 40])
        ],
    )
    return db


def main() -> None:
    db = build_database()
    with running_server(database=db) as server:
        client = server.client()
        print(f"serving on http://{server.host}:{server.port}")

        health = client.health()
        print(f"health: {health['status']} ({health['tables']} tables)")

        # -- fused join->SGB over HTTP vs in-process ------------------------
        expected = canon(query_result_payload(db.execute(HOTSPOT_SQL)))
        over_http = client.query(HOTSPOT_SQL)
        assert over_http == expected, "HTTP result must match in-process"
        print(
            f"join->SGB hotspot query: {over_http['rowcount']} grouped rows "
            "over HTTP, identical to the in-process call"
        )

        # -- direct point-batch route --------------------------------------
        points = [[row[1], row[2]] for row in db.table("checkins").rows[:300]]
        expected_sgb = canon(grouping_result_payload(sgb_any(points, EPS_GROUP)))
        got_sgb = client.sgb(points, EPS_GROUP, kind="any")
        assert got_sgb == expected_sgb
        print(
            f"/v1/sgb over {len(points)} raw check-ins: "
            f"{got_sgb['group_count']} groups, identical to sgb_any()"
        )

        # -- async job -----------------------------------------------------
        job_id = client.query_async(HOTSPOT_SQL)
        record = client.wait_job(job_id)
        assert record["status"] == "done"
        assert client.job_result(job_id) == expected
        print(f"async job {job_id[:8]}... done in {record['runtime_s']:.3f}s, "
              "spooled result identical to the blocking route")

        # -- pagination + streaming ----------------------------------------
        page = client.query(HOTSPOT_SQL, limit=5)
        assert page["rows"] == expected["rows"][:5]
        lines = list(client.query_stream(HOTSPOT_SQL))
        assert lines[1:] == expected["rows"]
        print(
            f"paginated first {len(page['rows'])} of {page['total']} rows; "
            f"NDJSON stream replayed all {len(lines) - 1} rows bit-identically"
        )

        client.close()
    print("server drained cleanly")


if __name__ == "__main__":
    main()
