"""Ablation: value of the convex-hull refinement for the L2 metric.

Section 6.4 refines the epsilon-All rectangle filter with a convex-hull test
when the metric is L2.  The L-infinity runs need no refinement, so comparing
the two metrics on the same data isolates the refinement cost; the second
class compares the L2 indexed run against the exact All-Pairs run to show the
refinement still pays for itself.
"""

import pytest

from repro.core.api import sgb_all

EPS = 0.15


@pytest.mark.parametrize("metric", ["L2", "LINF"])
class TestHullFilterCost:
    def test_metric_cost_with_index(self, benchmark, bench_points, metric):
        benchmark.group = "ablation-hull-metric"
        result = benchmark(
            sgb_all, bench_points, eps=EPS, metric=metric, on_overlap="ELIMINATE",
            strategy="index",
        )
        assert result.is_partition()


@pytest.mark.parametrize("strategy", ["all-pairs", "index"])
class TestHullFilterVsExact:
    def test_l2_index_vs_all_pairs(self, benchmark, bench_points, strategy):
        benchmark.group = "ablation-hull-vs-exact"
        result = benchmark(
            sgb_all, bench_points, eps=EPS, metric="L2", on_overlap="ELIMINATE",
            strategy=strategy,
        )
        assert result.is_partition()
