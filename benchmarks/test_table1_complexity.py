"""Table 1: average-case complexity of the SGB-All strategies.

The paper's Table 1 is analytical: O(n^2) / O(n^3) for All-Pairs,
O(n |G|) for Bounds-Checking, O(n log |G|) for the on-the-fly Index.  This
benchmark measures every strategy at two input sizes per overlap option so the
empirical growth factor (and the absolute ranking) can be read off the
pytest-benchmark table; the companion unit check asserts the fitted scaling
exponent of All-Pairs exceeds the indexed variant's.
"""

import pytest

from repro.bench.experiments import table1_scaling_exponents
from repro.core.api import sgb_all
from repro.workloads.synthetic import clustered_points

SIZES = [500, 1000]
STRATEGIES = ["all-pairs", "bounds-checking", "index"]
OVERLAPS = ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"]


@pytest.fixture(scope="module")
def sized_points(scale):
    return {
        n: clustered_points(n * scale, clusters=20, spread=0.005, low=0.0, high=100.0, seed=9)
        for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("overlap", OVERLAPS)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestTable1Runtime:
    def test_strategy_runtime(self, benchmark, sized_points, n, overlap, strategy):
        benchmark.group = f"table1-{overlap.lower()}-n{n}"
        points = sized_points[n]
        result = benchmark(
            sgb_all, points, eps=0.15, metric="LINF", on_overlap=overlap, strategy=strategy
        )
        assert result.is_partition()


class TestTable1Exponents:
    def test_empirical_scaling_exponents(self, benchmark):
        """All-Pairs must scale with a higher exponent than the indexed variant."""
        benchmark.group = "table1-exponent-fit"
        rows = benchmark.pedantic(
            table1_scaling_exponents,
            kwargs={"sizes": (400, 800, 1600)},
            iterations=1,
            rounds=1,
        )
        exponents = {r["strategy"]: r["empirical_exponent"] for r in rows}
        assert exponents["all-pairs"] > exponents["index"]
