"""Batched columnar pipeline vs the scalar per-tuple reference path.

Unlike the figure benchmarks (which reproduce the paper's per-tuple
algorithms against each other) this compares the two *execution paths* of the
same operator: per-point ``add`` vs ``add_batch`` at 10k points (50k under
``--paper-scale``).  Both paths produce identical groupings — the parity
suite in ``tests/core/test_cross_equivalence.py`` enforces that — so the only
difference measured here is the columnar execution.

Results are emitted through the shared JSON path
(:func:`repro.bench.report.write_json`) into ``.benchmarks/``, the same rows
``scripts/run_all_experiments.py`` adds to ``experiment_results.json``.
"""

from __future__ import annotations

import os

from repro.bench.experiments import batch_vs_scalar
from repro.bench.report import format_table, write_json
from repro.core.pointset import HAVE_NUMPY

#: Floor asserted for the SGB-Any INDEX-strategy batch speedup with the
#: NumPy backend.  Measured ~5x at 10k and ~7x at 50k points; the margin
#: absorbs CI timer noise.
_MIN_SPEEDUP_SMALL = 2.0
_MIN_SPEEDUP_LARGE = 3.0


def test_batch_path_beats_scalar_path(scale):
    sizes = (10_000,) if scale == 1 else (10_000, 50_000)
    rows = batch_vs_scalar(sizes=sizes, eps=0.3, strategy="index")

    os.makedirs(".benchmarks", exist_ok=True)
    write_json(rows, os.path.join(".benchmarks", "batch_vs_scalar.json"))
    print()
    print(format_table(rows))

    # Identical groupings on every (operator, n) pair.
    for n in sizes:
        for operator in ("SGB-Any", "SGB-All"):
            groups = {
                r["path"]: r["groups"]
                for r in rows
                if r["n"] == n and r["operator"] == operator
            }
            assert groups["batch"] == groups["scalar"]

    if not HAVE_NUMPY:
        return  # the pure-Python fallback only promises identical results
    for n in sizes:
        [speedup] = [
            r["speedup"]
            for r in rows
            if r["n"] == n and r["operator"] == "SGB-Any" and r["path"] == "batch"
        ]
        floor = _MIN_SPEEDUP_LARGE if n >= 50_000 else _MIN_SPEEDUP_SMALL
        assert speedup >= floor, (
            f"SGB-Any add_batch speedup at n={n} was {speedup}x, expected >= {floor}x"
        )
