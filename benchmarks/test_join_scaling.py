"""Scaling of the grid eps-join against the all-pairs nested-loop baseline.

Records the wall-clock of the similarity join at 10k/50k/100k total points
(split evenly between the two relations) for the eps-grid join and — at the
sizes where it stays affordable — the blocked all-pairs baseline.  Both
paths return the identical sorted pair list (enforced here at the smallest
size and exhaustively by the randomized equivalence suite); only the
runtime differs.

The ≥5x acceptance check runs at 50k points, where the quadratic baseline
is still cheap enough to measure but the pruning gap is already decisive.
"""

from __future__ import annotations

import time

import pytest

from repro.join import eps_join, eps_join_allpairs
from repro.workloads.synthetic import clustered_points

EPS = 0.3
SIZES = (10_000, 50_000, 100_000)
#: Largest total size at which the quadratic baseline is timed; above this
#: it costs minutes without adding signal (the grid curve alone shows the
#: near-linear scaling).
ALLPAIRS_CEILING = 50_000


def _join_sides(n: int):
    """Two clustered relations of n/2 points each, with distinct layouts."""
    half = n // 2

    def make(seed: int):
        return clustered_points(
            half, clusters=max(20, n // 500), spread=0.005, low=0.0, high=100.0, seed=seed
        )

    return make(11), make(12)


@pytest.fixture(scope="module")
def sides_by_size():
    return {n: _join_sides(n) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
class TestJoinScaling:
    def test_grid_eps_join(self, benchmark, sides_by_size, n):
        benchmark.group = f"join-scaling-{n}"
        left, right = sides_by_size[n]
        pairs = benchmark.pedantic(
            eps_join, args=(left, right, EPS), kwargs={"workers": 1},
            rounds=1, iterations=1,
        )
        assert pairs == sorted(pairs)
        if n == SIZES[0]:
            assert pairs == eps_join_allpairs(left, right, EPS)

    def test_allpairs_baseline(self, benchmark, sides_by_size, n):
        if n > ALLPAIRS_CEILING:
            pytest.skip(f"all-pairs baseline capped at {ALLPAIRS_CEILING} points")
        benchmark.group = f"join-scaling-{n}"
        left, right = sides_by_size[n]
        pairs = benchmark.pedantic(
            eps_join_allpairs, args=(left, right, EPS), rounds=1, iterations=1,
        )
        assert len(pairs) > 0


def test_join_speedup_at_50k(sides_by_size):
    """Acceptance: grid eps-join ≥5x over all-pairs at 50k total points.

    A sub-threshold first attempt gets one fresh re-measurement before the
    test fails (shared CI tenancy makes single timings noisy); measured
    locally the gap is ~50-90x, so 5x leaves ample headroom.
    """
    left, right = sides_by_size[50_000]

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    speedup, detail = 0.0, ""
    for _ in range(2):
        grid_s, grid_pairs = timed(lambda: eps_join(left, right, EPS, workers=1))
        allpairs_s, allpairs_pairs = timed(
            lambda: eps_join_allpairs(left, right, EPS)
        )
        assert grid_pairs == allpairs_pairs
        speedup = max(speedup, allpairs_s / grid_s)
        detail = f"grid {grid_s:.2f}s, all-pairs {allpairs_s:.2f}s"
        if speedup >= 5.0:
            break
    assert speedup >= 5.0, f"join speedup {speedup:.2f}x below 5x ({detail})"
