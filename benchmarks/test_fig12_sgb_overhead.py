"""Figure 12: overhead of SGB queries relative to the standard GROUP BY.

Panel (a): GB2 (profit per part) vs SGB3 (all three ON-OVERLAP variants) and
SGB4.  Panel (b): GB3 (supplier revenue) vs SGB5 and SGB6.  The paper reports
that the indexed SGB variants stay within roughly -10% to +40% of the plain
hash GROUP BY on the same derived relation, ordered
JOIN-ANY <= GROUP BY < ELIMINATE < ANY < FORM-NEW-GROUP.
"""

import pytest

from repro.bench.queries import GB2, GB3, sgb3, sgb4, sgb5, sgb6

EPS_PROFIT = 5000.0

PANEL_A = {
    "gb2": GB2,
    "sgb3_join_any": sgb3(EPS_PROFIT, overlap="JOIN-ANY"),
    "sgb3_eliminate": sgb3(EPS_PROFIT, overlap="ELIMINATE"),
    "sgb3_form_new": sgb3(EPS_PROFIT, overlap="FORM-NEW-GROUP"),
    "sgb4": sgb4(EPS_PROFIT),
}

PANEL_B = {
    "gb3": GB3,
    "sgb5_join_any": sgb5(EPS_PROFIT, overlap="JOIN-ANY"),
    "sgb6": sgb6(EPS_PROFIT),
}


@pytest.mark.parametrize("query_name", list(PANEL_A))
class TestFig12PanelA:
    def test_gb2_vs_sgb3_sgb4(self, benchmark, tpch_bench_db, query_name):
        benchmark.group = "fig12a-gb2-vs-sgb3-sgb4"
        result = benchmark(tpch_bench_db.execute, PANEL_A[query_name])
        assert len(result.rows) > 0


@pytest.mark.parametrize("query_name", list(PANEL_B))
class TestFig12PanelB:
    def test_gb3_vs_sgb5_sgb6(self, benchmark, tpch_bench_db, query_name):
        benchmark.group = "fig12b-gb3-vs-sgb5-sgb6"
        result = benchmark(tpch_bench_db.execute, PANEL_B[query_name])
        assert len(result.rows) > 0
