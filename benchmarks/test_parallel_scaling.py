"""Scaling of the sharded parallel SGB engine against the serial batch path.

Records the wall-clock of SGB-Any at 10k/50k/100k points for the serial
batch pipeline (the pinned baseline — the paper-figure benchmarks stay
per-tuple and are untouched by the engine) and for the worker-pool path at
2 and 4 workers.  The group assignments are identical across every path
(enforced here at the smallest size and exhaustively by the randomized
equivalence suite); only the runtime differs.

The ≥1.8x speedup acceptance check runs only where it is physically
possible — machines with at least 4 CPU cores — and is skipped (not
silently passed) elsewhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.api import sgb_any
from repro.workloads.synthetic import clustered_points

EPS = 0.3
SIZES = (10_000, 50_000, 100_000)
WORKER_COUNTS = (2, 4)
_CPUS = os.cpu_count() or 1


def _scaling_points(n: int):
    return clustered_points(
        n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=17
    )


@pytest.fixture(scope="module")
def points_by_size():
    return {n: _scaling_points(n) for n in SIZES}


@pytest.fixture(scope="module", autouse=True)
def warm_worker_pools(points_by_size):
    """Pay the one-time process spawn outside the timed regions."""
    for w in WORKER_COUNTS:
        sgb_any(points_by_size[SIZES[0]], eps=EPS, workers=w)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("path", ["serial"] + [f"workers={w}" for w in WORKER_COUNTS])
class TestParallelScaling:
    def test_sgb_any_scaling(self, benchmark, points_by_size, n, path):
        benchmark.group = f"parallel-scaling-{n}"
        benchmark.extra_info["cpu_count"] = _CPUS
        workers = 1 if path == "serial" else int(path.split("=")[1])
        points = points_by_size[n]
        # One round per path: the interesting signal is the serial/parallel
        # ratio at each size, not microsecond-stable medians.
        result = benchmark.pedantic(
            sgb_any, args=(points,), kwargs={"eps": EPS, "workers": workers},
            rounds=1, iterations=1,
        )
        assert result.group_count >= 1
        if n == SIZES[0]:
            assert result.groups == sgb_any(points, eps=EPS, workers=1).groups


def test_parallel_speedup_at_100k(points_by_size):
    """Acceptance: ≥1.8x over serial batch at 100k points with 4 workers.

    Runs only where the speedup is physically demonstrable (>= 4 logical
    cores); elsewhere it *skips*, never silently passes.  Shared CI tenancy
    makes single timings noisy, so each path takes the best of two runs and
    a sub-threshold first attempt gets one fresh re-measurement before the
    test fails.
    """
    if _CPUS < 4:
        pytest.skip(f"needs >= 4 CPU cores to demonstrate speedup (have {_CPUS})")
    points = points_by_size[100_000]

    def best_of(fn, repeats=2):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    sgb_any(points[:10_000], eps=EPS, workers=4)  # pool + cache warmup
    speedup, detail = 0.0, ""
    for _ in range(2):
        serial = best_of(lambda: sgb_any(points, eps=EPS, workers=1))
        parallel = best_of(lambda: sgb_any(points, eps=EPS, workers=4))
        speedup = max(speedup, serial / parallel)
        detail = f"serial {serial:.2f}s, 4 workers {parallel:.2f}s, {_CPUS} cores"
        if speedup >= 1.8:
            break
    assert speedup >= 1.8, (
        f"parallel speedup {speedup:.2f}x below 1.8x ({detail})"
    )
