"""Figure 10a-c: effect of the data size on SGB-All runtime (eps fixed at 0.2).

The paper compares Bounds-Checking against the on-the-fly Index as the TPC-H
scale factor grows; All-Pairs is omitted because it grows quadratically.
Expected shape: both curves grow roughly linearly, the Index variant staying
below Bounds-Checking with a widening absolute gap.
"""

import pytest

from repro.core.api import sgb_all
from repro.workloads.synthetic import clustered_points

SIZES = [400, 800, 1600]
STRATEGIES = ["bounds-checking", "index"]
OVERLAPS = ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"]


@pytest.fixture(scope="module")
def sized_points(scale):
    return {
        n: clustered_points(n * scale, clusters=25, spread=0.005, low=0.0, high=100.0, seed=5)
        for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("overlap", OVERLAPS)
class TestFig10SgbAll:
    def test_sgb_all_scale(self, benchmark, sized_points, n, strategy, overlap):
        benchmark.group = f"fig10-{overlap.lower()}-n{n}"
        points = sized_points[n]
        result = benchmark(
            sgb_all, points, eps=0.2, on_overlap=overlap, strategy=strategy
        )
        assert result.is_partition()
