"""Ablation: which spatial access method should back the on-the-fly index?

The paper uses an in-memory R-tree for both ``Groups_IX`` (SGB-All) and
``Points_IX`` (SGB-Any).  This ablation swaps in a uniform grid (cell size =
epsilon) and, for SGB-Any, a kd-tree, keeping everything else fixed.
"""

import pytest

from repro.core.api import sgb_all, sgb_any
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

EPS = 0.15

SGB_ALL_INDEXES = {
    "rtree": lambda: RTree(max_entries=8),
    "grid": lambda: GridIndex(cell_size=EPS),
}

SGB_ANY_INDEXES = {
    "rtree": lambda: RTree(max_entries=8),
    "grid": lambda: GridIndex(cell_size=EPS),
    "kdtree": lambda: KDTree(dims=2),
}


@pytest.mark.parametrize("index_name", list(SGB_ALL_INDEXES))
class TestSgbAllIndexChoice:
    def test_sgb_all_with_index(self, benchmark, bench_points, index_name):
        benchmark.group = "ablation-index-sgb-all"
        factory = SGB_ALL_INDEXES[index_name]
        result = benchmark(
            sgb_all,
            bench_points,
            eps=EPS,
            on_overlap="ELIMINATE",
            strategy="index",
            index_factory=factory,
        )
        assert result.is_partition()


@pytest.mark.parametrize("index_name", list(SGB_ANY_INDEXES))
class TestSgbAnyIndexChoice:
    def test_sgb_any_with_index(self, benchmark, bench_points, index_name):
        benchmark.group = "ablation-index-sgb-any"
        factory = SGB_ANY_INDEXES[index_name]
        # batch=False: a single whole-input batch never probes Points_IX, so
        # the scalar path is the one that exercises the index under test.
        result = benchmark(
            sgb_any,
            bench_points,
            eps=EPS,
            strategy="index",
            index_factory=factory,
            batch=False,
        )
        assert result.group_count >= 1
