"""Ablation: which spatial access method should back the on-the-fly index?

The paper uses an in-memory R-tree for both ``Groups_IX`` (SGB-All) and
``Points_IX`` (SGB-Any).  This ablation swaps in a uniform grid (cell size =
epsilon) and, for SGB-Any, a kd-tree, keeping everything else fixed.

The batch-scale classes rerun the SGB-Any comparison through ``add_batch``,
where an explicit ``index_factory`` routes batch-internal candidate discovery
through a bulk-loaded instance of the chosen index (``search_many`` windows +
exact verification); ``eps-grid`` is the default columnar grid sweep those
indexes are measured against.
"""

import pytest

from repro.core.api import sgb_all, sgb_any
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree
from repro.workloads.synthetic import clustered_points

EPS = 0.15

SGB_ALL_INDEXES = {
    "rtree": lambda: RTree(max_entries=8),
    "grid": lambda: GridIndex(cell_size=EPS),
}

SGB_ANY_INDEXES = {
    "rtree": lambda: RTree(max_entries=8),
    "grid": lambda: GridIndex(cell_size=EPS),
    "kdtree": lambda: KDTree(dims=2),
}

# The default batch pipeline (no explicit index): the eps-grid pair sweep.
SGB_ANY_BATCH_INDEXES = {"eps-grid": None, **SGB_ANY_INDEXES}


@pytest.mark.parametrize("index_name", list(SGB_ALL_INDEXES))
class TestSgbAllIndexChoice:
    def test_sgb_all_with_index(self, benchmark, bench_points, index_name):
        benchmark.group = "ablation-index-sgb-all"
        factory = SGB_ALL_INDEXES[index_name]
        result = benchmark(
            sgb_all,
            bench_points,
            eps=EPS,
            on_overlap="ELIMINATE",
            strategy="index",
            index_factory=factory,
        )
        assert result.is_partition()


@pytest.mark.parametrize("index_name", list(SGB_ANY_INDEXES))
class TestSgbAnyIndexChoice:
    def test_sgb_any_with_index(self, benchmark, bench_points, index_name):
        benchmark.group = "ablation-index-sgb-any"
        factory = SGB_ANY_INDEXES[index_name]
        # batch=False: a single whole-input batch never probes Points_IX, so
        # the scalar path is the one that exercises the index under test.
        result = benchmark(
            sgb_any,
            bench_points,
            eps=EPS,
            strategy="index",
            index_factory=factory,
            batch=False,
        )
        assert result.group_count >= 1


@pytest.fixture(scope="module")
def batch_bench_points(scale):
    """A larger point cloud for the batch-scale index ablation."""
    return clustered_points(
        5_000 * scale, clusters=40, spread=0.005, low=0.0, high=100.0, seed=3
    )


@pytest.mark.parametrize("index_name", list(SGB_ANY_BATCH_INDEXES))
class TestSgbAnyIndexChoiceBatch:
    """SGB-Any index ablation at batch scale (add_batch honours the index)."""

    def test_sgb_any_batch_with_index(self, benchmark, batch_bench_points, index_name):
        benchmark.group = "ablation-index-sgb-any-batch"
        factory = SGB_ANY_BATCH_INDEXES[index_name]
        # workers=1 pins the in-process batch pipeline so the eps-grid
        # baseline is not rerouted through the sharded engine when
        # SGB_WORKERS is set (the access methods are what is compared here).
        result = benchmark(
            sgb_any,
            batch_bench_points,
            eps=EPS,
            strategy="index",
            index_factory=factory,
            batch=True,
            workers=1,
        )
        assert result.group_count >= 1
