"""Ablation: sensitivity of the streaming SGB operators to the input order.

The SGB-All semantics are insertion-order dependent (the paper processes
tuples in arrival order).  This ablation feeds the same point cloud in
cluster-sorted order versus shuffled order and measures both the runtime and
(in the companion assertions) how much the group count moves.
"""

import pytest

from repro.core.api import sgb_all, sgb_any
from repro.workloads.synthetic import shuffled

EPS = 0.15


@pytest.fixture(scope="module")
def orderings(bench_points):
    by_cluster = sorted(bench_points)
    return {
        "arrival": list(bench_points),
        "sorted": by_cluster,
        "shuffled": shuffled(bench_points, seed=99),
    }


@pytest.mark.parametrize("order", ["arrival", "sorted", "shuffled"])
class TestInputOrderSgbAll:
    def test_sgb_all_runtime_by_order(self, benchmark, orderings, order):
        benchmark.group = "ablation-order-sgb-all"
        points = orderings[order]
        result = benchmark(
            sgb_all, points, eps=EPS, on_overlap="JOIN-ANY", strategy="index"
        )
        assert result.is_partition()


@pytest.mark.parametrize("order", ["arrival", "sorted", "shuffled"])
class TestInputOrderSgbAny:
    def test_sgb_any_groups_are_order_independent(self, benchmark, orderings, order):
        """SGB-Any output is order independent (connected components)."""
        benchmark.group = "ablation-order-sgb-any"
        points = orderings[order]
        # workers=1: the input-ordering effect under measurement would be
        # diluted by the sharded engine's spatial re-bucketing if an
        # SGB_WORKERS environment default rerouted this call.
        result = benchmark(sgb_any, points, eps=EPS, strategy="index", workers=1)
        reference = sgb_any(orderings["arrival"], eps=EPS, workers=1)
        assert result.group_count == reference.group_count
