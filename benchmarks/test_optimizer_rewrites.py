"""Acceptance: the logical rewrite layer pays for itself on its target shapes.

Two workloads from the cost-driven optimizer: a selective filter over a
derived similarity join (the push-down rule sinks the predicate into the
eps-join's left input) and a three-relation join chain written worst-first
(the reorder rule moves the small relation forward using histogram-overlap
selectivities).  The optimized plans must run at least 2x faster than
``optimizer=False`` on the same data AND return bit-identical rows — the
equivalence contract is asserted on every benchmarked query, not sampled.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import _optimizer_queries, _optimizer_tables
from repro.minidb import Database

EPS = 3.0
MIN_SPEEDUP = 2.0
SEED = 47


def _timed(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def optimizer_dbs(scale):
    n = 5_000 * scale
    # cache=False: a warm result cache would flatten the repeat timings and
    # hide the plan-shape difference this benchmark exists to measure.
    optimized = Database(optimizer=True, cache=False)
    reference = Database(optimizer=False, cache=False)
    for db in (optimized, reference):
        _optimizer_tables(db, n, SEED)
    return optimized, reference


@pytest.mark.parametrize("workload", sorted(_optimizer_queries(EPS)))
def test_rewrite_speedup_and_bit_identity(optimizer_dbs, workload):
    optimized, reference = optimizer_dbs
    sql = _optimizer_queries(EPS)[workload]
    opt_seconds, opt_result = _timed(lambda: optimized.execute(sql))
    ref_seconds, ref_result = _timed(lambda: reference.execute(sql))
    assert opt_result.rows == ref_result.rows, (
        f"optimizer changed the output of {workload!r}"
    )
    assert opt_result.columns == ref_result.columns
    assert opt_result.rewrites, f"no rewrite fired on {workload!r}"
    assert not ref_result.rewrites
    speedup = ref_seconds / opt_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: optimized {opt_seconds:.4f}s vs reference "
        f"{ref_seconds:.4f}s — only {speedup:.2f}x"
    )


def test_rewrite_trace_names_the_rules(optimizer_dbs):
    optimized, _ = optimizer_dbs
    queries = _optimizer_queries(EPS)
    sim = optimized.execute(queries["filtered-sim-join"])
    assert any(entry.startswith("filter-pushdown:") for entry in sim.rewrites)
    chain = optimized.execute(queries["join-reorder"])
    assert any(entry.startswith("join-reorder:") for entry in chain.rewrites)
