"""Figure 11: SGB operators vs standalone clustering (DBSCAN, BIRCH, K-means).

The paper clusters Brightkite / Gowalla check-ins by (latitude, longitude) and
reports that the in-pipeline SGB operators beat the standalone clustering
algorithms by one to three orders of magnitude.  Here the check-ins are the
synthetic stand-in from :mod:`repro.workloads.checkins`, normalised to the
unit square so the same epsilon applies to every method.
"""

import pytest

from repro.clustering import birch, dbscan, kmeans
from repro.core.api import sgb_all, sgb_any
from repro.workloads.checkins import CheckinConfig, checkin_points, generate_checkins

EPS = 0.2


@pytest.fixture(scope="module", params=["brightkite", "gowalla"])
def checkin_cloud(request, scale):
    dataset = request.param
    config = CheckinConfig(
        n_checkins=1500 * scale,
        n_users=200 * scale,
        hotspots=25 if dataset == "brightkite" else 40,
        seed=11 if dataset == "brightkite" else 23,
    )
    # Raw latitude/longitude degrees (the paper clusters check-ins directly on
    # the coordinate attributes; eps is an absolute distance in degrees).
    points = checkin_points(generate_checkins(config))
    return dataset, points


ALGORITHMS = {
    "dbscan": lambda pts: dbscan(pts, eps=EPS, min_pts=4),
    "birch": lambda pts: birch(pts, threshold=EPS / 2),
    "kmeans20": lambda pts: kmeans(pts, k=20),
    "kmeans40": lambda pts: kmeans(pts, k=40),
    "sgb_all_join_any": lambda pts: sgb_all(pts, eps=EPS, on_overlap="JOIN-ANY"),
    "sgb_all_eliminate": lambda pts: sgb_all(pts, eps=EPS, on_overlap="ELIMINATE"),
    "sgb_all_form_new": lambda pts: sgb_all(pts, eps=EPS, on_overlap="FORM-NEW-GROUP"),
    # batch=False: the figure reproduces the paper's per-tuple operator (see
    # test_batch_vs_scalar.py for the batched pipeline's own comparison).
    "sgb_any": lambda pts: sgb_any(pts, eps=EPS, batch=False),
}


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
class TestFig11:
    def test_grouping_runtime(self, benchmark, checkin_cloud, algorithm):
        dataset, points = checkin_cloud
        benchmark.group = f"fig11-{dataset}"
        result = benchmark(ALGORITHMS[algorithm], points)
        assert result is not None
