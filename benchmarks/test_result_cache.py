"""Result-cache acceptance: warm repeats are ≥5x faster and bit-identical.

The ISSUE acceptance bar for the tiered cache — a warm (cached) repeat of
``sgb_any`` and of the eps-``sim_join`` must be at least 5x faster than the
cold run on a 25k-point workload, with results that compare bit-identical.
Measured locally the warm path is 2-3 orders of magnitude faster (a cache
hit deserialises one pickle instead of grouping 25k points), so 5x leaves
wide headroom for slow CI machines while still catching a cache that quietly
recomputes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.api import sgb_any, sim_join
from repro.core.pointset import PointSet
from repro.storage.cache import ResultCache, reset_default_cache
from repro.workloads.synthetic import clustered_points

N = 25_000
EPS = 0.3
JOIN_EPS = 0.02
SPEEDUP_FLOOR = 5.0


@pytest.fixture(autouse=True)
def isolated_cache_env(monkeypatch):
    """A set SGB_CACHE (e.g. the CI off-smoke tier) must not skew the timing."""
    monkeypatch.delenv("SGB_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_warm_sgb_any_beats_cold_by_5x():
    points = clustered_points(N, clusters=40, spread=0.02, seed=31)
    cache = ResultCache.memory()
    cold_s, cold = _timed(lambda: sgb_any(points, eps=EPS, cache=cache, workers=1))
    warm_s, warm = _timed(lambda: sgb_any(points, eps=EPS, cache=cache, workers=1))
    assert cache.hits == 1 and cache.puts == 1
    assert warm.groups == cold.groups
    assert warm.eliminated == cold.eliminated
    assert warm.points == cold.points
    assert cold_s >= SPEEDUP_FLOOR * warm_s, (
        f"warm SGB-Any {warm_s:.4f}s vs cold {cold_s:.4f}s: "
        f"{cold_s / warm_s:.1f}x < {SPEEDUP_FLOOR}x"
    )


def test_warm_eps_join_beats_cold_by_5x():
    # PointSets built once, as a repeated-query workload would hold them; the
    # join eps is far below the grouping EPS so the pair list stays a small
    # multiple of n and the cold grid sweep dominates both runs.
    left = PointSet.from_any(clustered_points(N // 2, clusters=40, spread=0.02, seed=32))
    right = PointSet.from_any(clustered_points(N // 2, clusters=40, spread=0.02, seed=33))
    cache = ResultCache.memory()
    cold_s, cold = _timed(lambda: sim_join(left, right, eps=JOIN_EPS, cache=cache, workers=1))
    warm_s, warm = _timed(lambda: sim_join(left, right, eps=JOIN_EPS, cache=cache, workers=1))
    assert cache.hits == 1 and cache.puts == 1
    assert list(warm) == list(cold)
    assert cold_s >= SPEEDUP_FLOOR * warm_s, (
        f"warm eps-join {warm_s:.4f}s vs cold {cold_s:.4f}s: "
        f"{cold_s / warm_s:.1f}x < {SPEEDUP_FLOOR}x"
    )


def test_tiered_cache_warm_across_processes_shape(tmp_path):
    """The spill tier serves a cold process: a fresh ResultCache over the same
    directory hits without recomputing (the cross-process warm-start shape)."""
    points = clustered_points(5_000, clusters=20, spread=0.02, seed=34)
    first = ResultCache.tiered(str(tmp_path))
    cold = sgb_any(points, eps=EPS, cache=first, workers=1)
    fresh = ResultCache.tiered(str(tmp_path))  # simulates a new process
    warm_s, warm = _timed(lambda: sgb_any(points, eps=EPS, cache=fresh, workers=1))
    assert fresh.hits == 1 and fresh.puts == 0
    assert warm.groups == cold.groups
    assert warm.points == cold.points
