"""Figure 9d: effect of the similarity threshold on SGB-Any runtime.

All-Pairs vs the on-the-fly Index (R-tree + Union-Find).  Expected shape:
the indexed method is roughly flat across epsilon; All-Pairs is one to two
orders of magnitude slower at this scale.
"""

import pytest

from repro.core.api import sgb_any

EPS_VALUES = [0.1, 0.5, 0.9]
STRATEGIES = ["all-pairs", "index"]


@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig9SgbAny:
    def test_sgb_any_epsilon(self, benchmark, bench_points, eps, strategy):
        benchmark.group = f"fig9d-sgb-any-eps{eps}"
        # batch=False: the figure compares the paper's per-tuple algorithms;
        # the batched pipeline sidesteps both (see test_batch_vs_scalar.py).
        result = benchmark(
            sgb_any, bench_points, eps=eps, strategy=strategy, batch=False
        )
        assert result.group_count >= 1
