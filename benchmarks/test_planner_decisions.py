"""Acceptance: the planner-chosen mode is never far behind the best forced mode.

At 10k and 50k points the delegated "auto" path must stay within 1.3x of
the fastest forced mode (serial batch, or the sharded engine at 2/4
workers).  The strict ratio check needs real parallel hardware, so — like
the parallel-scaling acceptance — it runs only on machines with at least 4
CPU cores and is skipped (not silently passed) elsewhere; the
decision-shape assertions run everywhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.api import sgb_any
from repro.engine.planner import ENV_WORKERS
from repro.workloads.synthetic import clustered_points

EPS = 0.3
SIZES = (10_000, 50_000)
FORCED_WORKERS = (1, 2, 4)
_CPUS = os.cpu_count() or 1
SLACK = 1.3


@pytest.fixture(autouse=True)
def _delegated_environment(monkeypatch):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    monkeypatch.setenv("SGB_COST_PROFILE", "off")
    from repro.engine.calibrate import reset_profile_cache

    reset_profile_cache()
    yield
    reset_profile_cache()


def _points(n: int):
    return clustered_points(
        n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=23
    )


def _timed(fn, repeats=2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("n", SIZES)
class TestPlannerDecisionQuality:
    def test_auto_result_matches_every_forced_mode(self, n):
        points = _points(n)
        auto = sgb_any(points, eps=EPS)
        assert auto.plan is not None
        for workers in FORCED_WORKERS:
            if workers > 1 and _CPUS < 2:
                continue
            forced = sgb_any(points, eps=EPS, workers=workers)
            assert forced.groups == auto.groups

    @pytest.mark.skipif(
        _CPUS < 4, reason="ratio acceptance needs >=4 cores to be meaningful"
    )
    def test_auto_within_slack_of_best_forced(self, n):
        points = _points(n)
        # Warm the pools outside the timed region.
        for workers in FORCED_WORKERS[1:]:
            sgb_any(points[:2048], eps=EPS, workers=workers)
        sgb_any(points[:2048], eps=EPS)

        forced_times = {}
        for workers in FORCED_WORKERS:
            forced_times[workers], _ = _timed(
                lambda w=workers: sgb_any(points, eps=EPS, workers=w)
            )
        auto_time, auto = _timed(lambda: sgb_any(points, eps=EPS))
        best = min(forced_times.values())
        assert auto_time <= best * SLACK, (
            f"auto={auto_time:.3f}s (plan {auto.plan.describe()}) vs "
            f"best forced {best:.3f}s {forced_times}"
        )
