"""Figure 9a-c: effect of the similarity threshold on SGB-All runtime.

The paper sweeps epsilon from 0.1 to 0.9 over normalised attributes and
compares All-Pairs, Bounds-Checking, and the on-the-fly Index for the three
ON-OVERLAP semantics.  Expected shape: Index < Bounds-Checking < All-Pairs,
with the gap largest at small epsilon (many groups).
"""

import pytest

from repro.core.api import sgb_all

EPS_VALUES = [0.1, 0.5, 0.9]
STRATEGIES = ["all-pairs", "bounds-checking", "index"]


def _run(points, eps, strategy, overlap):
    return sgb_all(points, eps=eps, on_overlap=overlap, strategy=strategy)


@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig9JoinAny:
    def test_sgb_all_join_any(self, benchmark, bench_points, eps, strategy):
        benchmark.group = f"fig9a-join-any-eps{eps}"
        result = benchmark(_run, bench_points, eps, strategy, "JOIN-ANY")
        assert result.is_partition()


@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig9Eliminate:
    def test_sgb_all_eliminate(self, benchmark, bench_points, eps, strategy):
        benchmark.group = f"fig9b-eliminate-eps{eps}"
        result = benchmark(_run, bench_points, eps, strategy, "ELIMINATE")
        assert result.is_partition()


@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig9FormNewGroup:
    def test_sgb_all_form_new_group(self, benchmark, bench_points, eps, strategy):
        benchmark.group = f"fig9c-form-new-eps{eps}"
        result = benchmark(_run, bench_points, eps, strategy, "FORM-NEW-GROUP")
        assert result.is_partition()
