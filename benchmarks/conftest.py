"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale.
The sizes are chosen so the full ``pytest benchmarks/ --benchmark-only`` run
finishes in minutes; pass ``--paper-scale`` to use larger inputs closer to the
paper's setup (slower, sharper separation between the methods).
"""

from __future__ import annotations

import pytest

from repro.minidb import Database
from repro.workloads.synthetic import clustered_points
from repro.workloads.tpch import load_tpch


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at larger, paper-like scales",
    )


def pytest_configure(config):
    # Keep the default benchmark run short: the interesting signal is the
    # relative ordering of the methods, which two rounds already show.  Power
    # users can override these on the command line.
    if hasattr(config.option, "benchmark_min_rounds"):
        config.option.benchmark_min_rounds = min(int(config.option.benchmark_min_rounds), 3)
    if hasattr(config.option, "benchmark_max_time"):
        config.option.benchmark_max_time = str(
            min(float(config.option.benchmark_max_time), 0.5)
        )
    if hasattr(config.option, "benchmark_warmup"):
        config.option.benchmark_warmup = "off"


@pytest.fixture(scope="session")
def scale(request):
    """Global scale multiplier for benchmark workload sizes."""
    return 4 if request.config.getoption("--paper-scale") else 1


@pytest.fixture(scope="session")
def bench_points(scale):
    """The clustered 2-d point cloud used by the Figure 9/10 benchmarks."""
    return clustered_points(
        800 * scale, clusters=20, spread=0.005, low=0.0, high=100.0, seed=3
    )


@pytest.fixture(scope="session")
def tpch_bench_db(scale):
    """A TPC-H database for the SQL-level benchmarks (Table 2, Figure 12).

    ``sgb_workers=1`` pins the paper-figure SQL plans to the serial operator
    even when ``SGB_WORKERS`` is set (the CI parallel job runs tier-1 with
    it exported).
    """
    db = Database(sgb_strategy="index", sgb_workers=1)
    load_tpch(db, scale_factor=0.001 * scale, seed=7)
    return db
