"""Fused join→SGB pipeline and sharded kNN-join: acceptance speedups.

Two checks ride here:

* the fused eps-join→SGB-Any pipeline must beat the materialize-then-group
  two-step by ≥1.5x on a 50k-pair workload (measured locally the gap is
  ~40-60x: the materialized sweep pays m² edge work per point matched m
  times, the fused sweep sees every matched point once);
* the sharded kNN-join must beat the serial expanding-probe join by ≥1.8x
  at 100k total points on machines with ≥4 cores.  On smaller boxes the
  pool cannot win — the check degrades to bit-identity plus a lenient
  floor that still catches pathological regressions.

Both paths are asserted bit-identical to their reference before any timing
is trusted.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.api import sgb_any
from repro.core.pointset import PointSet
from repro.join import eps_join, fused_join_group, knn_join, knn_join_sharded
from repro.workloads.synthetic import clustered_points

JOIN_EPS = 0.5
GROUP_EPS = 0.8
KNN_TOTAL = 100_000
KNN_K = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@pytest.fixture(scope="module")
def fanout_sides():
    """~50k join pairs from 200 tight clusters: every right point is matched
    by every left point of its cluster (~25x fan-out), the regime the fused
    pipeline exists for."""
    rng = random.Random(7)
    centers = [(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(200)]
    left, right = [], []
    for cx, cy in centers:
        left += [(cx + rng.gauss(0, 0.05), cy + rng.gauss(0, 0.05)) for _ in range(25)]
        right += [(cx + rng.gauss(0, 0.05), cy + rng.gauss(0, 0.05)) for _ in range(10)]
    return left, right


@pytest.fixture(scope="module")
def knn_sides():
    half = KNN_TOTAL // 2

    def make(seed: int):
        return clustered_points(
            half, clusters=max(20, KNN_TOTAL // 500), spread=0.005,
            low=0.0, high=100.0, seed=seed,
        )

    return make(11), make(12)


def _materialized(left, right):
    """The two-step reference: join, build the pair-point relation, group it."""
    pairs = eps_join(left, right, JOIN_EPS, workers=1)
    right_ps = PointSet.from_any(right)
    pair_points = [right_ps.point(j) for _, j in pairs]
    return pairs, sgb_any(pair_points, eps=GROUP_EPS, workers=1)


class TestFusedPipeline:
    def test_materialized_baseline(self, benchmark, fanout_sides):
        benchmark.group = "fused-pipeline-50k-pairs"
        left, right = fanout_sides
        pairs, _ = benchmark.pedantic(
            _materialized, args=(left, right), rounds=1, iterations=1
        )
        assert len(pairs) >= 50_000

    def test_fused_path(self, benchmark, fanout_sides):
        benchmark.group = "fused-pipeline-50k-pairs"
        left, right = fanout_sides
        fused = benchmark.pedantic(
            fused_join_group, args=(left, right, GROUP_EPS),
            kwargs={"eps": JOIN_EPS, "workers": 1}, rounds=1, iterations=1,
        )
        assert len(fused.pairs) >= 50_000


def test_fused_speedup_at_50k_pairs(fanout_sides):
    """Acceptance: fused join→SGB ≥1.5x over materialize-then-group.

    A sub-threshold first attempt gets one fresh re-measurement (shared CI
    tenancy makes single timings noisy); measured locally the gap is ~50x,
    so 1.5x leaves enormous headroom.
    """
    left, right = fanout_sides
    speedup, detail = 0.0, ""
    for _ in range(2):
        mat_s, (pairs, reference) = _timed(lambda: _materialized(left, right))
        fused_s, fused = _timed(
            lambda: fused_join_group(
                left, right, GROUP_EPS, eps=JOIN_EPS, workers=1
            )
        )
        assert fused.pairs == pairs
        assert fused.grouping.groups == reference.groups
        assert fused.grouping.points == reference.points
        speedup = max(speedup, mat_s / fused_s)
        detail = f"materialized {mat_s:.2f}s, fused {fused_s:.2f}s"
        if speedup >= 1.5:
            break
    assert speedup >= 1.5, f"fused speedup {speedup:.2f}x below 1.5x ({detail})"


def test_sharded_knn_speedup_at_100k(knn_sides):
    """Acceptance: sharded kNN-join ≥1.8x over serial at 100k points.

    The 1.8x bar only binds on machines with ≥4 cores; below that the
    worker pool is time-slicing one or two CPUs and roughly break-even is
    the best possible, so the check relaxes to a lenient regression floor.
    Bit-identity with the serial join is asserted unconditionally.
    """
    left, right = knn_sides
    cores = os.cpu_count() or 1
    floor = 1.8 if cores >= 4 else 0.4
    speedup, detail = 0.0, ""
    for _ in range(2):
        serial_s, serial = _timed(lambda: knn_join(left, right, KNN_K, workers=1))
        sharded_s, sharded = _timed(
            lambda: knn_join_sharded(left, right, KNN_K, workers=4)
        )
        assert sharded == serial
        speedup = max(speedup, serial_s / sharded_s)
        detail = f"serial {serial_s:.2f}s, sharded {sharded_s:.2f}s, {cores} cores"
        if speedup >= floor:
            break
    assert speedup >= floor, (
        f"sharded kNN speedup {speedup:.2f}x below {floor}x ({detail})"
    )
