"""Figure 10d: effect of the data size on SGB-Any runtime (eps fixed at 0.2).

All-Pairs vs the on-the-fly Index.  Expected shape: All-Pairs grows
quadratically with the input size while the indexed variant grows
near-linearly — the paper reports roughly three orders of magnitude separation
at its largest scale factors.
"""

import pytest

from repro.core.api import sgb_any
from repro.workloads.synthetic import clustered_points

SIZES = [400, 800, 1600]
STRATEGIES = ["all-pairs", "index"]


@pytest.fixture(scope="module")
def sized_points(scale):
    return {
        n: clustered_points(n * scale, clusters=25, spread=0.005, low=0.0, high=100.0, seed=5)
        for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFig10SgbAny:
    def test_sgb_any_scale(self, benchmark, sized_points, n, strategy):
        benchmark.group = f"fig10d-sgb-any-n{n}"
        points = sized_points[n]
        # batch=False: the figure compares the paper's per-tuple algorithms;
        # the batched pipeline sidesteps both (see test_batch_vs_scalar.py).
        result = benchmark(sgb_any, points, eps=0.2, strategy=strategy, batch=False)
        assert result.group_count >= 1
