"""Table 2: the TPC-H evaluation queries (GB1-GB3, SGB1-SGB6).

Each benchmark runs one of the paper's evaluation queries end-to-end through
the SQL engine (parse -> plan -> execute) against the synthetic TPC-H data,
mirroring the workload Table 2 defines.
"""

import pytest

from repro.bench.queries import sgb_queries, standard_queries

ALL_QUERIES = dict(standard_queries())
ALL_QUERIES.update(sgb_queries(eps_power=500.0, eps_profit=5000.0))


@pytest.mark.parametrize("query_name", list(ALL_QUERIES))
class TestTable2Queries:
    def test_query_runtime(self, benchmark, tpch_bench_db, query_name):
        benchmark.group = "table2-tpch-queries"
        result = benchmark(tpch_bench_db.execute, ALL_QUERIES[query_name])
        assert len(result.rows) > 0


@pytest.mark.parametrize("strategy", ["all-pairs", "bounds-checking", "index"])
class TestTable2StrategyComparison:
    """The same SGB query under each physical strategy (the paper's headline claim)."""

    def test_sgb3_by_strategy(self, benchmark, tpch_bench_db, strategy):
        benchmark.group = "table2-sgb3-by-strategy"
        sql = ALL_QUERIES["SGB3"]
        result = benchmark(tpch_bench_db.execute, sql, sgb_strategy=strategy)
        assert len(result.rows) > 0
