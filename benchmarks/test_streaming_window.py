"""Streaming incremental window flushes vs full re-grouping per window.

Records the wall-clock of grouping a 10k–100k point stream through sliding
count windows two ways: the ``repro.stream`` incremental session (each
eps-edge discovered once, evictions repaired from the retained epoch
forests) and the naive baseline that re-runs the batch ``sgb_any`` over the
window's live points at every slide.  Both paths emit bit-identical window
groupings (asserted here at the smallest size and exhaustively by
``tests/stream``); the incremental advantage grows with the window/slide
ratio because the baseline re-processes every point ``window / slide``
times.
"""

from __future__ import annotations

import pytest

from repro.core.api import sgb_any
from repro.stream.session import StreamingSGB
from repro.workloads.synthetic import clustered_points

EPS = 0.3
#: (stream size, window, slide) — window/slide ratio 8 throughout.
SHAPES = [
    (10_000, 5_000, 625),
    (50_000, 10_000, 1_250),
    (100_000, 10_000, 1_250),
]


def _stream_points(n: int):
    return clustered_points(
        n, clusters=max(20, n // 250), spread=0.005, low=0.0, high=100.0, seed=31
    )


@pytest.fixture(scope="module")
def points_by_size():
    return {n: _stream_points(n) for n, _, _ in SHAPES}


def _run_incremental(points, window, slide):
    session = StreamingSGB(EPS, window=window, slide=slide, workers=1)
    flushes = session.ingest(points)
    flushes.extend(session.close())
    return flushes


def _run_full_regroup(points, window, slide):
    # Same flush boundaries as the session: every full epoch plus the
    # trailing partial one the incremental path flushes on close().
    ends = list(range(slide, len(points) + 1, slide))
    if len(points) % slide:
        ends.append(len(points))
    return [
        sgb_any(points[max(0, end - window) : end], eps=EPS, workers=1)
        for end in ends
    ]


@pytest.mark.parametrize("path", ["full-regroup", "incremental"])
@pytest.mark.parametrize("n,window,slide", SHAPES)
class TestStreamingWindowScaling:
    def test_windowed_grouping(self, benchmark, points_by_size, n, window, slide, path):
        benchmark.group = f"streaming-window-{n}"
        benchmark.extra_info["window"] = window
        benchmark.extra_info["slide"] = slide
        points = points_by_size[n]
        run = _run_incremental if path == "incremental" else _run_full_regroup
        # One round per path: the signal is the incremental/full ratio at each
        # size, not microsecond-stable medians.
        flushes = benchmark.pedantic(
            run, args=(points, window, slide), rounds=1, iterations=1
        )
        assert len(flushes) == n // slide


def test_incremental_matches_full_regroup_at_10k(points_by_size):
    """Every window's grouping is identical across the two paths."""
    n, window, slide = SHAPES[0]
    points = points_by_size[n]
    incremental = _run_incremental(points, window, slide)
    full = _run_full_regroup(points, window, slide)
    assert len(incremental) == len(full)
    for window_result, reference in zip(incremental, full):
        assert window_result.result.groups == reference.groups
