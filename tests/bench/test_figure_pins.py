"""Guard: figure/table runners stay pinned to the paper's per-tuple operators.

The batch frontier pipeline (SGB-All) and the sharded engine (SGB-Any)
bypass the per-tuple candidate-discovery strategies the figure experiments
ablate — an unpinned figure runner would silently measure the bypass
instead of the strategies and flatten the curves (the Table 1 exponent
ordering is the canary).  These tests wrap the operator entry points inside
``repro.bench.experiments`` and assert every figure/table call goes through
``batch=False``; ``batch_vs_scalar``'s batch arm must likewise pin
``workers=1`` so an ``SGB_WORKERS`` environment default cannot reroute the
in-process batch measurement through the worker pool.
"""

import pytest

from repro.bench import experiments as E


@pytest.fixture()
def recorded(monkeypatch):
    """Record (name, kwargs) of every SGB call a runner makes."""
    calls = []
    real_all, real_any = E.sgb_all, E.sgb_any

    def spy_all(*args, **kwargs):
        calls.append(("sgb_all", kwargs))
        return real_all(*args, **kwargs)

    def spy_any(*args, **kwargs):
        calls.append(("sgb_any", kwargs))
        return real_any(*args, **kwargs)

    monkeypatch.setattr(E, "sgb_all", spy_all)
    monkeypatch.setattr(E, "sgb_any", spy_any)
    return calls


def _assert_all_scalar(calls):
    assert calls, "runner never reached an SGB operator"
    for name, kwargs in calls:
        assert kwargs.get("batch") is False, f"{name} call not pinned: {kwargs}"


class TestFigurePins:
    def test_fig9_sgb_all_pinned_to_scalar_path(self, recorded):
        E.fig9_sgb_all_epsilon(n=120, eps_values=(0.3,), strategies=("index",))
        _assert_all_scalar(recorded)

    def test_fig9_sgb_any_pinned_to_scalar_path(self, recorded):
        E.fig9_sgb_any_epsilon(n=120, eps_values=(0.3,), strategies=("index",))
        _assert_all_scalar(recorded)

    def test_fig10_sgb_all_pinned_to_scalar_path(self, recorded):
        E.fig10_sgb_all_scale(sizes=(120,), strategies=("index",))
        _assert_all_scalar(recorded)

    def test_fig10_sgb_any_pinned_to_scalar_path(self, recorded):
        E.fig10_sgb_any_scale(sizes=(120,), strategies=("index",))
        _assert_all_scalar(recorded)

    def test_fig11_pins_every_sgb_line(self, recorded):
        E.fig11_vs_clustering(sizes=(150,), eps=0.2)
        sgb_calls = [c for c in recorded if c[0].startswith("sgb")]
        assert len(sgb_calls) >= 4  # three SGB-All overlap modes + SGB-Any
        _assert_all_scalar(sgb_calls)

    def test_table1_pinned_to_scalar_path(self, recorded):
        E.table1_scaling_exponents(sizes=(100, 200, 400))
        _assert_all_scalar(recorded)

    def test_batch_vs_scalar_pins_workers(self, recorded):
        E.batch_vs_scalar(sizes=(150,))
        any_calls = [kwargs for name, kwargs in recorded if name == "sgb_any"]
        assert any_calls
        # Both arms pin workers=1: the experiment owns batch-vs-scalar, the
        # engine comparison (parallel_vs_serial) owns the worker sweep.
        assert all(kwargs.get("workers") == 1 for kwargs in any_calls)


class TestPlannerBypass:
    """The figure/table runners must never consult the cost planner.

    The paper figures pin ``batch=False`` / ``workers=1``, which keeps
    :func:`repro.engine.cost.plan_sgb_any` (and friends) out of the loop —
    a runner that delegated would measure whatever mode this machine's
    planner happens to pick instead of the pinned configuration.
    """

    @pytest.fixture()
    def planner_spy(self, monkeypatch):
        import repro.engine.cost as cost_mod

        calls = []
        for name in ("plan_sgb_any", "plan_sgb_all", "plan_eps_join", "plan_knn_join"):
            real = getattr(cost_mod, name)

            def spy(*args, _real=real, _name=name, **kwargs):
                calls.append(_name)
                return _real(*args, **kwargs)

            monkeypatch.setattr(cost_mod, name, spy)
        return calls

    def test_figure_runners_bypass_planner(self, planner_spy, monkeypatch):
        monkeypatch.setenv("SGB_COST_PROFILE", "off")
        E.fig9_sgb_any_epsilon(n=120, eps_values=(0.3,), strategies=("index",))
        E.fig9_sgb_all_epsilon(n=120, eps_values=(0.3,), strategies=("index",))
        E.fig10_sgb_any_scale(sizes=(120,), strategies=("index",))
        E.table1_scaling_exponents(sizes=(100, 200))
        E.batch_vs_scalar(sizes=(150,))
        assert planner_spy == [], f"planner engaged by a pinned runner: {planner_spy}"


class TestOptimizerBypass:
    """The SQL figure/table runners must never enter the rewrite layer.

    ``_tpch_database`` builds its databases with ``optimizer=False``, and the
    gate in :meth:`Database._maybe_optimize` checks the setting *before*
    calling :func:`repro.minidb.plan.rewrite.optimize_plan` — so a spy on
    ``optimize_plan`` proves Table 2 / Figure 12 measure the un-rewritten
    reference plans.
    """

    @pytest.fixture()
    def optimizer_spy(self, monkeypatch):
        import repro.minidb.plan.rewrite as rewrite_mod

        calls = []
        real = rewrite_mod.optimize_plan

        def spy(plan):
            calls.append(type(plan).__name__)
            return real(plan)

        monkeypatch.setattr(rewrite_mod, "optimize_plan", spy)
        return calls

    def test_table2_never_enters_rewrite_layer(self, optimizer_spy):
        E.table2_tpch_queries(scale_factor=0.001)
        assert optimizer_spy == [], f"rewrite layer engaged: {optimizer_spy}"

    def test_fig12_never_enters_rewrite_layer(self, optimizer_spy):
        E.fig12_overhead(scale_factors=(0.001,))
        assert optimizer_spy == [], f"rewrite layer engaged: {optimizer_spy}"

    def test_spy_wiring_sees_an_optimized_query(self, optimizer_spy):
        """Counter-test: the spy does fire for an optimizer-on database, so
        the empty call lists above are meaningful."""
        from repro.minidb.database import Database

        db = Database(optimizer=True)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("SELECT x FROM t WHERE x > 1")
        assert optimizer_spy, "spy never fired — the bypass tests prove nothing"
