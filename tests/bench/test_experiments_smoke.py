"""Smoke tests for the experiment runners (tiny sizes, checks structure + shape)."""

import pytest

from repro.bench.experiments import (
    planner_adaptive,
    fig9_sgb_all_epsilon,
    fig9_sgb_any_epsilon,
    fig10_sgb_all_scale,
    fig10_sgb_any_scale,
    fig11_vs_clustering,
    fig12_overhead,
    fused_vs_materialized,
    join_vs_allpairs,
    knn_parallel,
    streaming_window,
    table1_scaling_exponents,
    table2_tpch_queries,
)
from repro.bench.harness import measure, sweep
from repro.bench.report import format_series, format_table, speedup


class TestHarness:
    def test_measure_returns_positive_time_and_value(self):
        m = measure(lambda: sum(range(1000)), label="sum")
        assert m.seconds > 0
        assert m.value == 499500

    def test_measure_repeat_takes_minimum(self):
        m = measure(lambda: 1, repeat=3)
        assert m.seconds >= 0

    def test_sweep_runs_per_value(self):
        results = sweep(lambda n: list(range(n)), "n", [10, 20])
        assert len(results) == 2
        assert results[0].params == {"n": 10}

    def test_format_table_and_series(self):
        rows = [
            {"eps": 0.1, "strategy": "index", "seconds": 0.5},
            {"eps": 0.1, "strategy": "all-pairs", "seconds": 1.5},
        ]
        table = format_table(rows)
        assert "strategy" in table and "index" in table
        series = format_series(rows, x="eps", y="seconds", series="strategy")
        assert "all-pairs" in series.splitlines()[0]
        assert format_table([]) == "(no rows)"

    def test_speedup_relative_to_baseline(self):
        rows = [
            {"eps": 0.1, "strategy": "all-pairs", "seconds": 2.0},
            {"eps": 0.1, "strategy": "index", "seconds": 0.5},
        ]
        enriched = speedup(rows, baseline_label="all-pairs")
        index_row = [r for r in enriched if r["strategy"] == "index"][0]
        assert index_row["speedup"] == pytest.approx(4.0)


class TestFigureRunners:
    def test_fig9_all_returns_rows_per_eps_and_strategy(self):
        rows = fig9_sgb_all_epsilon(
            on_overlap="JOIN-ANY", n=150, eps_values=(0.2, 0.5), strategies=("all-pairs", "index")
        )
        assert len(rows) == 4
        assert {r["strategy"] for r in rows} == {"all-pairs", "index"}
        assert all(r["seconds"] > 0 and r["groups"] > 0 for r in rows)

    def test_fig9_any_runs(self):
        rows = fig9_sgb_any_epsilon(n=150, eps_values=(0.2, 0.5))
        assert len(rows) == 4
        assert all(r["operator"] == "SGB-Any" for r in rows)

    def test_fig10_all_larger_input_costs_more(self):
        rows = fig10_sgb_all_scale(
            sizes=(100, 400), strategies=("index",), on_overlap="JOIN-ANY"
        )
        by_n = {r["n"]: r["seconds"] for r in rows}
        assert by_n[400] > by_n[100] * 0.5  # monotone-ish growth at tiny sizes

    def test_fig10_any_all_pairs_grows_faster_than_index(self):
        rows = fig10_sgb_any_scale(sizes=(200, 800))
        naive = {r["n"]: r["seconds"] for r in rows if r["strategy"] == "all-pairs"}
        indexed = {r["n"]: r["seconds"] for r in rows if r["strategy"] == "index"}
        naive_growth = naive[800] / naive[200]
        indexed_growth = indexed[800] / indexed[200]
        assert naive_growth > indexed_growth

    def test_fig11_includes_all_algorithms(self):
        rows = fig11_vs_clustering(sizes=(300,), eps=0.2)
        algorithms = {r["algorithm"] for r in rows}
        assert {"DBSCAN", "BIRCH", "K-means(20)", "K-means(40)", "SGB-Any"} <= algorithms
        assert all(r["seconds"] > 0 for r in rows)

    def test_table1_exponents_order(self):
        rows = table1_scaling_exponents(sizes=(200, 400, 800))
        exponents = {r["strategy"]: r["empirical_exponent"] for r in rows}
        # All-Pairs must grow at least as fast as the indexed variant.
        assert exponents["all-pairs"] >= exponents["index"] - 0.3

    def test_table2_runs_all_nine_queries(self):
        rows = table2_tpch_queries(scale_factor=0.0005)
        assert len(rows) == 9
        assert {r["query"] for r in rows} == {
            "GB1", "GB2", "GB3", "SGB1", "SGB2", "SGB3", "SGB4", "SGB5", "SGB6",
        }

    def test_streaming_window_compares_both_paths(self):
        rows = streaming_window(sizes=(600,), window=200, slide=50)
        assert len(rows) == 2
        by_path = {r["path"]: r for r in rows}
        assert set(by_path) == {"full-regroup", "incremental"}
        assert all(r["flushes"] == 600 // 50 for r in rows)
        assert all(r["seconds"] > 0 for r in rows)
        assert by_path["incremental"]["speedup"] is not None

    def test_streaming_window_counts_the_trailing_partial_flush(self):
        # 630 points, slide 50: 12 full epochs plus one 30-point partial on
        # close() — both paths must time the same 13 windows.
        rows = streaming_window(sizes=(630,), window=200, slide=50)
        assert all(r["flushes"] == 13 for r in rows)

    def test_streaming_window_clamps_oversized_windows(self):
        rows = streaming_window(sizes=(80,), window=200, slide=50)
        # Clamped to the stream size and rounded to a whole number of epochs.
        assert all(r["window"] == 50 and r["slide"] == 50 for r in rows)

    def test_join_vs_allpairs_compares_both_paths(self):
        rows = join_vs_allpairs(sizes=(600,))
        assert len(rows) == 2
        by_path = {r["path"]: r for r in rows}
        assert set(by_path) == {"all-pairs", "grid"}
        # Identical pair sets: the comparison is apples to apples.
        assert by_path["grid"]["pairs"] == by_path["all-pairs"]["pairs"]
        assert all(r["n_left"] == r["n_right"] == 300 for r in rows)
        assert by_path["grid"]["speedup"] is not None

    def test_fused_vs_materialized_compares_both_paths(self):
        rows = fused_vs_materialized(sizes=(600,))
        assert len(rows) == 2
        by_path = {r["path"]: r for r in rows}
        assert set(by_path) == {"materialized", "fused"}
        # Identical groupings: the comparison is apples to apples.
        assert by_path["fused"]["groups"] == by_path["materialized"]["groups"]
        assert by_path["fused"]["speedup"] is not None

    def test_knn_parallel_compares_serial_and_sharded_modes(self):
        rows = knn_parallel(sizes=(600,), k=2, worker_counts=(2,))
        by_path = {r["path"]: r for r in rows}
        assert set(by_path) == {"serial", "workers=2/rebuild", "workers=2/ship-index"}
        # All three modes return the identical pair list.
        pair_counts = {r["pairs"] for r in rows}
        assert len(pair_counts) == 1 and pair_counts.pop() == 600 // 2 * 2
        assert all(r["cpu_count"] >= 1 for r in rows)

    def test_planner_adaptive_compares_three_arms_per_workload(self, monkeypatch):
        monkeypatch.setenv("SGB_COST_PROFILE", "off")
        rows = planner_adaptive(sizes=(400,), workers=2)
        by_workload = {}
        for r in rows:
            by_workload.setdefault(r["workload"], []).append(r)
        assert set(by_workload) == {"uniform", "skewed"}
        for workload, arm_rows in by_workload.items():
            paths = {r["path"] for r in arm_rows}
            assert paths == {"serial", "one-slab-per-worker (2w)", "auto (planner)"}
            # All three arms return the identical grouping.
            assert len({r["groups"] for r in arm_rows}) == 1
            auto = [r for r in arm_rows if r["path"] == "auto (planner)"][0]
            assert auto["plan"] and auto["plan"].startswith("sgb_any:")
            assert all(r["speedup"] is not None for r in arm_rows)

    def test_fig12_reports_overhead_per_panel(self):
        rows = fig12_overhead(scale_factors=(0.0005,))
        panels = {r["panel"] for r in rows}
        assert panels == {"a", "b"}
        gb_rows = [r for r in rows if r["query"].startswith("GB")]
        assert all(r["overhead_pct"] == 0.0 for r in gb_rows)


class TestCompare:
    def test_compare_attaches_speedup_relative_to_baseline(self):
        from repro.bench.harness import compare

        results = compare({"slow": lambda: sum(range(20000)), "fast": lambda: 1},
                          baseline="slow")
        by_label = {m.label: m for m in results}
        assert by_label["slow"].params["speedup"] == 1.0
        assert by_label["fast"].params["speedup"] >= 1.0

    def test_compare_rejects_unknown_baseline(self):
        from repro.bench.harness import compare

        with pytest.raises(ValueError, match="unknown baseline"):
            compare({"only": lambda: 1}, baseline="missing")
