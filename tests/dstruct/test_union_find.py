"""Tests for the disjoint-set forest."""

import pytest

from repro.dstruct.union_find import UnionFind
from repro.exceptions import UnionFindError


class TestBasicOperations:
    def test_new_elements_are_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.component_count == 3
        assert uf.find("a") == "a"
        assert not uf.connected("a", "b")

    def test_add_is_idempotent(self):
        uf = UnionFind()
        assert uf.add("x") is True
        assert uf.add("x") is False
        assert len(uf) == 1

    def test_union_merges_components(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)
        assert uf.component_count == 2

    def test_union_is_idempotent(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        uf.union(1, 2)
        assert uf.component_count == 1

    def test_transitive_connectivity(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)

    def test_find_unknown_element_raises(self):
        uf = UnionFind([1])
        with pytest.raises(UnionFindError):
            uf.find(99)

    def test_contains_and_len(self):
        uf = UnionFind(["a"])
        assert "a" in uf
        assert "b" not in uf
        assert len(uf) == 1


class TestComponents:
    def test_component_size(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(0) == 3
        assert uf.component_size(5) == 1

    def test_components_mapping(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        components = uf.components()
        sizes = sorted(len(v) for v in components.values())
        assert sizes == [1, 1, 2]
        all_members = sorted(m for members in components.values() for m in members)
        assert all_members == [0, 1, 2, 3]

    def test_union_many(self):
        uf = UnionFind(range(5))
        root = uf.union_many([0, 1, 2, 3])
        assert uf.component_count == 2
        assert root == uf.find(0) == uf.find(3)

    def test_union_many_empty_returns_none(self):
        uf = UnionFind()
        assert uf.union_many([]) is None

    def test_large_random_merge_sequence_matches_reference(self):
        import random

        rng = random.Random(17)
        n = 300
        uf = UnionFind(range(n))
        # Reference adjacency via sets.
        reference = {i: {i} for i in range(n)}

        def ref_union(a, b):
            sa, sb = reference[a], reference[b]
            if sa is sb:
                return
            merged = sa | sb
            for member in merged:
                reference[member] = merged

        for _ in range(400):
            a, b = rng.randrange(n), rng.randrange(n)
            uf.union(a, b)
            ref_union(a, b)
        for _ in range(200):
            a, b = rng.randrange(n), rng.randrange(n)
            assert uf.connected(a, b) == (reference[a] is reference[b] or b in reference[a])

    def test_component_count_tracks_merges(self):
        uf = UnionFind(range(10))
        count = 10
        for i in range(9):
            uf.union(i, i + 1)
            count -= 1
            assert uf.component_count == count


class TestForestExchange:
    """export_forest / relabel / merge_from — the sharded-engine wire format."""

    def _sample(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        return uf

    def test_export_forest_is_flat(self):
        uf = self._sample()
        forest = uf.export_forest()
        assert set(forest) == set(range(6))
        for element, root in forest.items():
            assert forest[root] == root  # roots point at themselves
            assert uf.connected(element, root)
        roots = {forest[0], forest[3], forest[4]}
        assert len(roots) == 3

    def test_relabel_with_mapping_and_callable(self):
        uf = self._sample()
        shifted = uf.relabel({i: i + 100 for i in range(6)})
        assert shifted.connected(100, 102)
        assert shifted.connected(104, 105)
        assert not shifted.connected(100, 103)
        assert shifted.component_count == uf.component_count
        named = uf.relabel(lambda i: f"row-{i}")
        assert named.connected("row-0", "row-2")

    def test_relabel_rejects_non_injective_mapping(self):
        uf = self._sample()
        with pytest.raises(UnionFindError):
            uf.relabel(lambda i: i // 2)

    def test_merge_from_preserves_both_groupings(self):
        left = UnionFind(range(4))
        left.union(0, 1)
        right = UnionFind([2, 3, 4])
        right.union(2, 3)
        merges = left.merge_from(right)
        assert merges == 1
        assert left.connected(0, 1)
        assert left.connected(2, 3)
        assert 4 in left and left.component_size(4) == 1
        assert len(left) == 5

    def test_merge_from_exported_mapping_with_translate(self):
        # A shard-local forest over positions 0..3 lifted into global rows.
        local = UnionFind(range(4))
        local.union(0, 1)
        local.union(2, 3)
        global_rows = [10, 11, 12, 13]
        merged = UnionFind(range(10, 14))
        merged.merge_from(local.export_forest(), translate=global_rows.__getitem__)
        assert merged.connected(10, 11)
        assert merged.connected(12, 13)
        assert not merged.connected(10, 12)

    def test_merge_from_is_monotone(self):
        uf = UnionFind(range(4))
        uf.union(0, 3)
        other = UnionFind(range(4))
        other.union(1, 2)
        uf.merge_from(other)
        assert uf.connected(0, 3) and uf.connected(1, 2)
        assert uf.component_count == 2

    def test_round_trip_relabel_then_merge(self):
        local = UnionFind(range(3))
        local.union(0, 2)
        lifted = local.relabel({0: 7, 1: 8, 2: 9})
        target = UnionFind()
        target.merge_from(lifted)
        assert target.connected(7, 9)
        assert not target.connected(7, 8)


class TestSplitForest:
    def test_partitions_by_touched_components(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        touched, untouched = uf.split_forest([0, 4])
        assert set(touched) == {0, 1, 4}
        assert set(untouched) == {2, 3, 5}
        # Each side maps members to one root per component.
        assert touched[0] == touched[1]
        assert untouched[2] == untouched[3]

    def test_any_member_marks_the_whole_component(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(1, 2)
        touched, untouched = uf.split_forest([2])
        assert set(touched) == {0, 1, 2}
        assert set(untouched) == {3}

    def test_untouched_side_replays_into_a_rebuilt_forest(self):
        # The eviction pattern: copy untouched components verbatim.
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(3, 4)
        _, untouched = uf.split_forest([0])
        rebuilt = UnionFind(e for e in range(6) if e not in (0, 1))
        for element, root in untouched.items():
            if element != root:
                rebuilt.union(element, root)
        assert rebuilt.connected(3, 4)
        assert not rebuilt.connected(2, 5)
        assert rebuilt.component_count == 3

    def test_empty_touch_set_leaves_everything_untouched(self):
        uf = UnionFind(range(3))
        uf.union(0, 2)
        touched, untouched = uf.split_forest([])
        assert touched == {}
        assert set(untouched) == {0, 1, 2}
