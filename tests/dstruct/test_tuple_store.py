"""Tests for the per-group tuple store."""

from repro.dstruct.tuple_store import TupleStore


class TestTupleStore:
    def test_append_returns_stable_handles(self):
        store = TupleStore()
        assert store.append("a") == 0
        assert store.append("b") == 1
        assert store.get(0) == "a"
        assert store.get(1) == "b"

    def test_len_counts_live_rows(self):
        store = TupleStore()
        store.append("a")
        store.append("b")
        assert len(store) == 2
        store.delete(0)
        assert len(store) == 1

    def test_delete_is_idempotent(self):
        store = TupleStore()
        store.append("a")
        store.delete(0)
        store.delete(0)
        assert len(store) == 0

    def test_iteration_skips_deleted_preserves_order(self):
        store = TupleStore()
        for value in ["a", "b", "c", "d"]:
            store.append(value)
        store.delete(1)
        assert list(store) == ["a", "c", "d"]
        assert store.to_list() == ["a", "c", "d"]

    def test_get_still_returns_deleted_rows(self):
        store = TupleStore()
        store.append("x")
        store.delete(0)
        assert store.get(0) == "x"

    def test_extend_copies_live_rows_only(self):
        a = TupleStore()
        b = TupleStore()
        for value in ["1", "2", "3"]:
            a.append(value)
        a.delete(2)
        b.append("0")
        b.extend(a)
        assert b.to_list() == ["0", "1", "2"]

    def test_clear(self):
        store = TupleStore()
        store.append("a")
        store.clear()
        assert len(store) == 0
        assert list(store) == []
        assert store.append("b") == 0
