"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.minidb import Database
from repro.workloads.synthetic import clustered_points, uniform_points
from repro.workloads.tpch import load_tpch


@pytest.fixture
def fig2_points():
    """The Figure 2 scenario: two 2-point clusters plus one bridging point.

    With LINF / eps = 3 the expected outcomes are: JOIN-ANY -> {3, 2},
    ELIMINATE -> {2, 2}, FORM-NEW-GROUP -> {2, 2, 1}, SGB-Any -> {5}.
    """
    return [
        (2.0, 8.0),  # a1
        (3.0, 7.0),  # a2
        (7.0, 5.0),  # a3
        (8.0, 4.0),  # a4
        (5.0, 6.5),  # a5 - within eps of every other point
    ]


@pytest.fixture
def small_clustered():
    """A small clustered point cloud for cross-strategy consistency tests."""
    return clustered_points(300, clusters=8, spread=0.03, seed=13)


@pytest.fixture
def small_uniform():
    """A small uniform point cloud."""
    return uniform_points(200, seed=7)


@pytest.fixture(scope="session")
def tpch_db():
    """A tiny TPC-H database shared by the SQL integration tests."""
    db = Database(sgb_strategy="index")
    load_tpch(db, scale_factor=0.0005, seed=1)
    return db


@pytest.fixture
def simple_db():
    """A small hand-built database with a points table and a tags table."""
    db = Database()
    db.execute("CREATE TABLE points (id INT, x FLOAT, y FLOAT, label TEXT)")
    db.execute(
        "INSERT INTO points VALUES "
        "(1, 0.0, 0.0, 'a'), (2, 0.5, 0.5, 'a'), (3, 0.6, 0.4, 'b'), "
        "(4, 5.0, 5.0, 'b'), (5, 5.2, 5.1, 'c'), (6, 9.0, 9.0, 'c')"
    )
    db.execute("CREATE TABLE tags (pid INT, tag TEXT, weight FLOAT)")
    db.execute(
        "INSERT INTO tags VALUES "
        "(1, 'red', 1.0), (2, 'blue', 2.0), (4, 'red', 0.5), (6, 'green', 3.0)"
    )
    return db
