"""Tests for the BIRCH baseline."""

import pytest

from repro.clustering.birch import birch
from repro.exceptions import InvalidParameterError
from repro.workloads.synthetic import clustered_points


class TestValidation:
    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            birch([(0, 0)], threshold=0.0)

    def test_invalid_branching_factor(self):
        with pytest.raises(InvalidParameterError):
            birch([(0, 0)], branching_factor=1)

    def test_empty_input(self):
        result = birch([])
        assert result.labels == []


class TestClustering:
    def test_two_well_separated_blobs(self):
        blob_a = [(0 + i * 0.01, 0.0) for i in range(30)]
        blob_b = [(10 + i * 0.01, 10.0) for i in range(30)]
        result = birch(blob_a + blob_b, threshold=0.5)
        assert result.cluster_count == 2
        labels_a = {result.labels[i] for i in range(30)}
        labels_b = {result.labels[i] for i in range(30, 60)}
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_single_tight_blob(self):
        points = [(0.001 * i, 0.0) for i in range(100)]
        result = birch(points, threshold=0.5)
        assert result.cluster_count == 1

    def test_every_point_gets_a_label(self):
        points = clustered_points(400, clusters=6, seed=21)
        result = birch(points, threshold=0.05)
        assert len(result.labels) == 400
        assert all(label >= 0 for label in result.labels)

    def test_cf_count_reported_and_bounded(self):
        points = clustered_points(300, clusters=5, seed=22)
        result = birch(points, threshold=0.05)
        assert 1 <= result.extra["cf_count"] <= 300

    def test_smaller_threshold_gives_more_clusters(self):
        points = clustered_points(300, clusters=8, spread=0.02, seed=23)
        coarse = birch(points, threshold=0.2)
        fine = birch(points, threshold=0.01)
        assert fine.cluster_count >= coarse.cluster_count

    def test_two_phases_reported(self):
        result = birch([(0, 0), (1, 1)], threshold=0.1)
        assert result.iterations == 2
