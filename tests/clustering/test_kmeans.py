"""Tests for the K-means baseline."""

import pytest

from repro.clustering.kmeans import kmeans
from repro.exceptions import EmptyInputError, InvalidParameterError
from repro.workloads.synthetic import clustered_points


class TestValidation:
    def test_empty_input_raises(self):
        with pytest.raises(EmptyInputError):
            kmeans([], k=2)

    def test_non_positive_k_raises(self):
        with pytest.raises(InvalidParameterError):
            kmeans([(0, 0)], k=0)

    def test_k_larger_than_n_is_clamped(self):
        result = kmeans([(0, 0), (1, 1)], k=10)
        assert result.cluster_count <= 2
        assert len(result.centroids) == 2


class TestClustering:
    def test_two_well_separated_blobs(self):
        points = [(0, 0), (0.1, 0.1), (0.2, 0.0), (10, 10), (10.1, 10.2), (9.9, 10.0)]
        result = kmeans(points, k=2, seed=3)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_labels_are_index_aligned(self):
        points = clustered_points(200, clusters=4, seed=2)
        result = kmeans(points, k=4, seed=2)
        assert len(result.labels) == len(points)
        assert all(0 <= label < 4 for label in result.labels)

    def test_deterministic_for_fixed_seed(self):
        points = clustered_points(150, clusters=5, seed=6)
        a = kmeans(points, k=5, seed=1)
        b = kmeans(points, k=5, seed=1)
        assert a.labels == b.labels

    def test_inertia_decreases_with_more_clusters(self):
        points = clustered_points(300, clusters=6, seed=8)
        few = kmeans(points, k=2, seed=0)
        many = kmeans(points, k=10, seed=0)
        assert many.inertia <= few.inertia

    def test_centroids_are_within_data_bounding_box(self):
        points = clustered_points(200, clusters=3, seed=4)
        result = kmeans(points, k=3, seed=4)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        for cx, cy in result.centroids:
            assert min(xs) - 1e-9 <= cx <= max(xs) + 1e-9
            assert min(ys) - 1e-9 <= cy <= max(ys) + 1e-9

    def test_iterations_reported(self):
        points = clustered_points(100, clusters=2, seed=5)
        result = kmeans(points, k=2, seed=5, max_iter=30)
        assert 1 <= result.iterations <= 30

    def test_sizes_sum_to_n(self):
        points = clustered_points(123, clusters=4, seed=9)
        result = kmeans(points, k=4, seed=9)
        assert sum(result.sizes()) == 123
