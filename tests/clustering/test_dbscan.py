"""Tests for the DBSCAN baseline."""

import pytest

from repro.clustering.base import NOISE
from repro.clustering.dbscan import dbscan
from repro.exceptions import InvalidParameterError
from repro.workloads.synthetic import clustered_points, uniform_points


class TestValidation:
    def test_invalid_min_pts(self):
        with pytest.raises(InvalidParameterError):
            dbscan([(0, 0)], eps=1.0, min_pts=0)

    def test_empty_input(self):
        result = dbscan([], eps=1.0)
        assert result.labels == []
        assert result.cluster_count == 0


class TestClustering:
    def test_two_dense_blobs_and_noise(self):
        blob_a = [(0 + i * 0.01, 0) for i in range(20)]
        blob_b = [(5 + i * 0.01, 5) for i in range(20)]
        outlier = [(20.0, 20.0)]
        result = dbscan(blob_a + blob_b + outlier, eps=0.3, min_pts=4)
        assert result.cluster_count == 2
        assert result.labels[-1] == NOISE
        assert result.noise_count == 1

    def test_all_points_in_one_dense_cluster(self):
        points = [(i * 0.05, 0.0) for i in range(50)]
        result = dbscan(points, eps=0.2, min_pts=3)
        assert result.cluster_count == 1
        assert result.noise_count == 0

    def test_sparse_points_all_noise(self):
        points = [(i * 10.0, 0.0) for i in range(10)]
        result = dbscan(points, eps=0.5, min_pts=3)
        assert result.cluster_count == 0
        assert result.noise_count == 10

    def test_border_points_attach_to_cluster(self):
        core = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.1, 0.1)]
        border = [(0.35, 0.0)]  # within eps of a core point but not core itself
        result = dbscan(core + border, eps=0.3, min_pts=4)
        assert result.labels[-1] == result.labels[0]

    def test_linf_metric_supported(self):
        points = [(0, 0), (0.9, 0.9), (1.8, 1.8), (10, 10)]
        result = dbscan(points, eps=1.0, min_pts=2, metric="LINF")
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == NOISE

    def test_region_query_count_reported(self):
        points = uniform_points(100, seed=3)
        result = dbscan(points, eps=0.1, min_pts=4)
        assert result.extra["region_queries"] >= 100

    def test_labels_cover_all_points(self):
        points = clustered_points(300, clusters=5, seed=12)
        result = dbscan(points, eps=0.05, min_pts=4)
        assert len(result.labels) == 300
        assert sum(len(v) for v in result.clusters().values()) + result.noise_count == 300

    def test_clusters_respect_connectivity(self):
        """Points in the same DBSCAN cluster are connected through eps-neighbours."""
        points = [(0, 0), (0.2, 0), (0.4, 0), (5, 5), (5.2, 5), (5.4, 5)]
        result = dbscan(points, eps=0.3, min_pts=2)
        assert result.labels[0] == result.labels[2]
        assert result.labels[3] == result.labels[5]
        assert result.labels[0] != result.labels[3]
